#include "seg/parallel.h"

#include <gtest/gtest.h>

#include "seg/algorithms.h"

namespace mcopt::seg {
namespace {

LayoutSpec spec512() {
  LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  return spec;
}

TEST(ParFill, FillsEverything) {
  auto a = seg_array<double>::even(10001, 16, spec512());
  par_fill(a, 3.5);
  for (double v : a) ASSERT_DOUBLE_EQ(v, 3.5);
}

TEST(ParForEach, AppliesToEveryElement) {
  auto a = seg_array<double>::even(999, 7, spec512());
  par_fill(a, 1.0);
  par_for_each(a, [](double& v) { v *= 2.0; });
  EXPECT_DOUBLE_EQ(par_sum(a), 2.0 * 999);
}

TEST(ParTransform, MatchesSerial) {
  auto in = seg_array<double>::even(5000, 8, spec512());
  auto out = seg_array<double>::even(5000, 8, spec512());
  double v = 0.0;
  for (auto it = in.begin(); it != in.end(); ++it) *it = v++;
  par_transform(in, out, [](double x) { return x * x; },
                sched::Schedule::static_chunk(1));
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_DOUBLE_EQ(out[i], in[i] * in[i]);
}

TEST(ParTransform, RejectsMismatchedSegmentation) {
  auto in = seg_array<double>::even(100, 4, spec512());
  auto out = seg_array<double>::even(100, 5, spec512());
  EXPECT_THROW(par_transform(in, out, [](double x) { return x; }),
               std::invalid_argument);
}

TEST(ParSum, MatchesSerialAccumulate) {
  auto a = seg_array<double>::even(12345, 64, spec512());
  double v = 1.0;
  for (auto it = a.begin(); it != a.end(); ++it) *it = v++;
  EXPECT_DOUBLE_EQ(par_sum(a), accumulate(a.begin(), a.end(), 0.0));
}

class ParScheduleTest : public ::testing::TestWithParam<sched::Schedule> {};

TEST_P(ParScheduleTest, SumIndependentOfSchedule) {
  auto a = seg_array<double>::even(4096, 16, spec512());
  par_fill(a, 0.5);
  EXPECT_DOUBLE_EQ(par_sum(a, GetParam()), 2048.0);
}

INSTANTIATE_TEST_SUITE_P(Schedules, ParScheduleTest,
                         ::testing::Values(sched::Schedule::static_block(),
                                           sched::Schedule::static_chunk(1),
                                           sched::Schedule::static_chunk(3),
                                           sched::Schedule{sched::ScheduleKind::kDynamic, 2}));

}  // namespace
}  // namespace mcopt::seg
