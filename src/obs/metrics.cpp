#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mcopt::obs {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void add_atomic_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]))
      throw std::invalid_argument("Histogram: bounds must be finite");
    if (i != 0 && bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double x) noexcept {
  // Prometheus le semantics: bucket i counts x <= bounds_[i]; the last
  // bucket is +Inf. NaN lands in the overflow bucket (it is still counted).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_atomic_double(sum_, x);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = i == 0 ? std::min(0.0, bounds_.front()) : bounds_[i - 1];
    // The overflow bucket has no finite upper edge: clamp to the largest
    // configured bound (the estimate stays within the known range).
    const double upper = i < bounds_.size() ? bounds_[i] : bounds_.back();
    if (upper <= lower) return upper;
    const double frac =
        std::clamp((rank - below) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lower + (upper - lower) * frac;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() noexcept {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) help_.emplace(name, help);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) help_.emplace(name, help);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) help_.emplace(name, help);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

std::string MetricsRegistry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const auto help_line = [&](const std::string& name) {
    const auto it = help_.find(name);
    if (it != help_.end())
      out += "# HELP " + name + " " + it->second + "\n";
  };
  for (const auto& [name, c] : counters_) {
    help_line(name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    help_line(name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + fmt_double(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    help_line(name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += h.bucket_count(i);
      out += name + "_bucket{le=\"" + fmt_double(h.bounds()[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.bucket_count(h.bounds().size());
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += name + "_sum " + fmt_double(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + fmt_double(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + fmt_double(h.sum()) +
           ",\"p50\":" + fmt_double(h.quantile(0.50)) +
           ",\"p95\":" + fmt_double(h.quantile(0.95)) +
           ",\"p99\":" + fmt_double(h.quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset_values() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second.reset();
  for (auto& kv : gauges_) kv.second.reset();
  for (auto& kv : histograms_) kv.second.reset();
}

}  // namespace mcopt::obs
