#include "runtime/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/trace.h"
#include "util/crc.h"

namespace mcopt::runtime {
namespace {

constexpr std::size_t kHeaderBytes = 4 * 4 + 8 + 4 * 8 + 4;  // 60
constexpr std::size_t kSectionEntryBytes = 8 + 4 + 4;        // 16
constexpr std::size_t kFileCrcBytes = 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::vector<std::uint8_t> serialize(const Checkpoint& ckpt) {
  std::vector<std::uint8_t> out;
  std::size_t payload = 0;
  for (const auto& s : ckpt.sections) payload += s.size();
  out.reserve(kHeaderBytes + kSectionEntryBytes * ckpt.sections.size() +
              payload + kFileCrcBytes);

  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, ckpt.kind);
  put_u32(out, static_cast<std::uint32_t>(ckpt.sections.size()));
  put_u64(out, ckpt.iteration);
  for (std::uint64_t word : ckpt.user) put_u64(out, word);
  put_u32(out, util::crc32c(out.data(), out.size()));

  for (const auto& s : ckpt.sections) {
    put_u64(out, s.size());
    put_u32(out, util::crc32c(s.data(), s.size()));
    put_u32(out, 0);  // reserved
  }
  for (const auto& s : ckpt.sections) out.insert(out.end(), s.begin(), s.end());
  put_u32(out, util::crc32c(out.data(), out.size()));
  return out;
}

util::Status errno_failure(const std::string& what, const std::string& path) {
  return util::Status::failure("checkpoint: " + what + " '" + path +
                               "': " + std::strerror(errno));
}

}  // namespace

util::Status save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  const obs::TraceSpan span("ckpt.save", "ckpt", ckpt.sections.size(), 0);
  if (ckpt.sections.size() > 0xFFFFu)
    return util::Status::failure("checkpoint: too many sections");
  const std::vector<std::uint8_t> bytes = serialize(ckpt);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return errno_failure("cannot create", tmp);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return errno_failure("short write to", tmp);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return errno_failure("cannot flush", tmp);
  }
#ifndef _WIN32
  // The durability point: data reaches the device before the rename can
  // publish the file, so a crash leaves either the old checkpoint or the
  // complete new one.
  if (fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return errno_failure("cannot fsync", tmp);
  }
#endif
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return errno_failure("cannot close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return errno_failure("cannot rename into", path);
  }
  return util::Status{};
}

util::Expected<Checkpoint> load_checkpoint(const std::string& path) {
  const obs::TraceSpan span("ckpt.load", "ckpt");
  using Result = util::Expected<Checkpoint>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Result::failure("checkpoint: cannot open '" + path +
                           "': " + std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    return Result::failure("checkpoint: read error on '" + path + "'");

  if (bytes.size() < kHeaderBytes + kFileCrcBytes)
    return Result::failure("checkpoint: '" + path + "' is truncated (" +
                           std::to_string(bytes.size()) +
                           " bytes; a valid file has at least " +
                           std::to_string(kHeaderBytes + kFileCrcBytes) + ")");

  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kCheckpointMagic)
    return Result::failure("checkpoint: '" + path +
                           "' is not a checkpoint (bad magic)");
  const std::uint32_t version = get_u32(p + 4);
  if (version != kCheckpointVersion)
    return Result::failure("checkpoint: '" + path + "' has version " +
                           std::to_string(version) + "; this build reads " +
                           std::to_string(kCheckpointVersion));
  const std::uint32_t stored_header_crc = get_u32(p + kHeaderBytes - 4);
  const std::uint32_t header_crc = util::crc32c(p, kHeaderBytes - 4);
  if (stored_header_crc != header_crc)
    return Result::failure("checkpoint: '" + path +
                           "' header CRC mismatch (stored " +
                           std::to_string(stored_header_crc) + ", computed " +
                           std::to_string(header_crc) + ")");

  Checkpoint ckpt;
  ckpt.kind = get_u32(p + 8);
  const std::uint32_t section_count = get_u32(p + 12);
  ckpt.iteration = get_u64(p + 16);
  for (std::size_t i = 0; i < ckpt.user.size(); ++i)
    ckpt.user[i] = get_u64(p + 24 + 8 * i);

  const std::size_t table_at = kHeaderBytes;
  const std::size_t table_bytes =
      kSectionEntryBytes * static_cast<std::size_t>(section_count);
  if (bytes.size() < table_at + table_bytes + kFileCrcBytes)
    return Result::failure("checkpoint: '" + path +
                           "' is truncated inside the section table");

  // Whole-file CRC next: with it verified, any remaining length
  // inconsistency is a writer bug, not damage — but check anyway.
  const std::uint32_t stored_file_crc =
      get_u32(p + bytes.size() - kFileCrcBytes);
  const std::uint32_t file_crc =
      util::crc32c(p, bytes.size() - kFileCrcBytes);
  if (stored_file_crc != file_crc)
    return Result::failure("checkpoint: '" + path +
                           "' file CRC mismatch (stored " +
                           std::to_string(stored_file_crc) + ", computed " +
                           std::to_string(file_crc) + ")");

  std::size_t at = table_at + table_bytes;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const std::uint8_t* entry = p + table_at + kSectionEntryBytes * s;
    const std::uint64_t len = get_u64(entry);
    const std::uint32_t stored_crc = get_u32(entry + 8);
    if (len > bytes.size() - kFileCrcBytes ||
        at + len > bytes.size() - kFileCrcBytes)
      return Result::failure("checkpoint: '" + path + "' section " +
                             std::to_string(s) +
                             " extends past the end of the file");
    const std::uint32_t crc = util::crc32c(p + at, static_cast<std::size_t>(len));
    if (crc != stored_crc)
      return Result::failure("checkpoint: '" + path + "' section " +
                             std::to_string(s) + " CRC mismatch (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(crc) + ")");
    ckpt.sections.emplace_back(p + at, p + at + len);
    at += static_cast<std::size_t>(len);
  }
  if (at + kFileCrcBytes != bytes.size())
    return Result::failure("checkpoint: '" + path +
                           "' has trailing bytes after the last section");
  return ckpt;
}

// --- Jacobi ----------------------------------------------------------------

util::Status save_jacobi_checkpoint(const std::string& path,
                                    const seg::seg_array<double>& field,
                                    std::uint64_t sweeps) {
  const std::size_t n = field.num_segments();
  Checkpoint ckpt;
  ckpt.kind = kJacobiCheckpoint;
  ckpt.iteration = sweeps;
  ckpt.user[0] = n;
  std::vector<std::uint8_t> payload(n * n * sizeof(double));
  for (std::size_t i = 0; i < n; ++i)
    std::memcpy(payload.data() + i * n * sizeof(double),
                field.segment(i).begin(), n * sizeof(double));
  ckpt.sections.push_back(std::move(payload));
  return save_checkpoint(path, ckpt);
}

util::Expected<JacobiState> load_jacobi_checkpoint(const std::string& path) {
  using Result = util::Expected<JacobiState>;
  auto loaded = load_checkpoint(path);
  if (!loaded) return Result::failure(loaded.error().message);
  const Checkpoint& ckpt = loaded.value();
  if (ckpt.kind != kJacobiCheckpoint)
    return Result::failure("checkpoint: '" + path +
                           "' is not a Jacobi checkpoint (kind " +
                           std::to_string(ckpt.kind) + ")");
  if (ckpt.sections.size() != 1)
    return Result::failure("checkpoint: Jacobi checkpoint '" + path +
                           "' must have exactly one section");
  JacobiState state;
  state.n = static_cast<std::size_t>(ckpt.user[0]);
  state.sweeps = ckpt.iteration;
  const auto& payload = ckpt.sections[0];
  if (state.n < 3 || payload.size() != state.n * state.n * sizeof(double))
    return Result::failure("checkpoint: '" + path + "' claims an n=" +
                           std::to_string(state.n) + " grid but carries " +
                           std::to_string(payload.size()) + " payload bytes");
  state.field.resize(state.n * state.n);
  std::memcpy(state.field.data(), payload.data(), payload.size());
  return state;
}

util::Status apply_jacobi_state(const JacobiState& state,
                                seg::seg_array<double>& field) {
  const std::size_t n = field.num_segments();
  if (n != state.n)
    return util::Status::failure(
        "checkpoint: grid is n=" + std::to_string(n) +
        " but the checkpoint holds n=" + std::to_string(state.n));
  for (std::size_t i = 0; i < n; ++i)
    std::memcpy(field.segment(i).begin(), state.field.data() + i * n,
                n * sizeof(double));
  return util::Status{};
}

// --- LBM -------------------------------------------------------------------

namespace {

std::uint64_t lbm_shape_word(const kernels::lbm::Geometry& g) {
  return static_cast<std::uint64_t>(g.pad_x) * 4 +
         static_cast<std::uint64_t>(g.layout) * 2 + 1;
}

}  // namespace

util::Status save_lbm_checkpoint(const std::string& path,
                                 const kernels::lbm::Solver& solver) {
  const kernels::lbm::Geometry& g = solver.geometry();
  Checkpoint ckpt;
  ckpt.kind = kLbmCheckpoint;
  ckpt.iteration = solver.steps_taken();
  ckpt.user = {g.nx, g.ny, g.nz, lbm_shape_word(g)};
  const std::vector<double>& f = solver.distributions();
  std::vector<std::uint8_t> payload(f.size() * sizeof(double));
  std::memcpy(payload.data(), f.data(), payload.size());
  ckpt.sections.push_back(std::move(payload));
  return save_checkpoint(path, ckpt);
}

util::Status load_lbm_checkpoint(const std::string& path,
                                 kernels::lbm::Solver& solver) {
  auto loaded = load_checkpoint(path);
  if (!loaded) return util::Status::failure(loaded.error().message);
  const Checkpoint& ckpt = loaded.value();
  if (ckpt.kind != kLbmCheckpoint)
    return util::Status::failure("checkpoint: '" + path +
                                 "' is not an LBM checkpoint (kind " +
                                 std::to_string(ckpt.kind) + ")");
  const kernels::lbm::Geometry& g = solver.geometry();
  const std::array<std::uint64_t, 4> want{g.nx, g.ny, g.nz, lbm_shape_word(g)};
  if (ckpt.user != want)
    return util::Status::failure(
        "checkpoint: '" + path + "' was written for a " +
        std::to_string(ckpt.user[0]) + "x" + std::to_string(ckpt.user[1]) +
        "x" + std::to_string(ckpt.user[2]) + " domain (shape word " +
        std::to_string(ckpt.user[3]) + "), solver has " +
        std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
        std::to_string(g.nz) + " (shape word " +
        std::to_string(lbm_shape_word(g)) + ")");
  if (ckpt.sections.size() != 1)
    return util::Status::failure("checkpoint: LBM checkpoint '" + path +
                                 "' must have exactly one section");
  const auto& payload = ckpt.sections[0];
  if (payload.size() != g.f_elems() * sizeof(double))
    return util::Status::failure(
        "checkpoint: '" + path + "' distribution payload is " +
        std::to_string(payload.size()) + " bytes, geometry needs " +
        std::to_string(g.f_elems() * sizeof(double)));
  std::vector<double> f(g.f_elems());
  std::memcpy(f.data(), payload.data(), payload.size());
  solver.restore(std::move(f), static_cast<unsigned>(ckpt.iteration));
  return util::Status{};
}

}  // namespace mcopt::runtime
