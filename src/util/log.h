#pragma once
// Minimal leveled logging to stderr. Benches use it for progress lines that
// must not pollute the stdout result tables.

#include <string>

namespace mcopt::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace mcopt::util
