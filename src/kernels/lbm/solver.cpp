#include "kernels/lbm/solver.h"

#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/timer.h"

namespace mcopt::kernels::lbm {

Solver::Solver(Params params) : p_(std::move(params)) {
  p_.geometry.validate();
  if (p_.tau <= 0.5) throw std::invalid_argument("Solver: tau must exceed 0.5");
  f_.assign(p_.geometry.f_elems(), 0.0);
  solid_.assign(p_.geometry.cells(), 0);
  fluid_cells_ = p_.geometry.interior_cells();
}

void Solver::set_solid(std::size_t x, std::size_t y, std::size_t z) {
  const Geometry& g = p_.geometry;
  if (x < 1 || x > g.nx || y < 1 || y > g.ny || z < 1 || z > g.nz)
    throw std::out_of_range("Solver::set_solid: not an interior cell");
  std::uint8_t& cell = solid_[g.cell_index(x, y, z)];
  if (cell == 0) {
    cell = 1;
    --fluid_cells_;
  }
}

void Solver::make_channel_walls_z() {
  const Geometry& g = p_.geometry;
  for (std::size_t y = 1; y <= g.ny; ++y)
    for (std::size_t x = 1; x <= g.nx; ++x) {
      set_solid(x, y, 1);
      set_solid(x, y, g.nz);
    }
}

void Solver::initialize(double rho, std::array<double, 3> u) {
  const Geometry& g = p_.geometry;
  steps_ = 0;
  for (std::size_t z = 1; z <= g.nz; ++z)
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x)
        for (std::size_t v = 0; v < kQ; ++v) {
          const double feq =
              is_solid(x, y, z) ? 0.0 : equilibrium(v, rho, u[0], u[1], u[2]);
          f_[g.f_index(x, y, z, v, 0)] = feq;
          f_[g.f_index(x, y, z, v, 1)] = 0.0;
        }
}

std::size_t Solver::wrap(long coord, std::size_t n, bool periodic) const {
  if (!periodic) return static_cast<std::size_t>(coord);  // ghost write
  if (coord < 1) return n;
  if (coord > static_cast<long>(n)) return 1;
  return static_cast<std::size_t>(coord);
}

void Solver::update_cell(std::size_t x, std::size_t y, std::size_t z,
                         std::size_t read_toggle, std::size_t write_toggle) {
  const Geometry& g = p_.geometry;
  double fv[kQ];
  double rho = 0.0;
  double mx = 0.0, my = 0.0, mz = 0.0;
  for (std::size_t v = 0; v < kQ; ++v) {
    fv[v] = f_[g.f_index(x, y, z, v, read_toggle)];
    rho += fv[v];
    mx += fv[v] * kVelocity[v][0];
    my += fv[v] * kVelocity[v][1];
    mz += fv[v] * kVelocity[v][2];
  }
  // Shan-Chen force incorporation: equilibrium velocity shifted by tau*F/rho
  // (exactly mass-conserving; adds F per step to the cell's momentum).
  const double inv_rho = 1.0 / rho;
  const double ux = (mx + p_.tau * p_.force[0]) * inv_rho;
  const double uy = (my + p_.tau * p_.force[1]) * inv_rho;
  const double uz = (mz + p_.tau * p_.force[2]) * inv_rho;

  const double omega = 1.0 / p_.tau;
  for (std::size_t v = 0; v < kQ; ++v) {
    const double post = fv[v] + omega * (equilibrium(v, rho, ux, uy, uz) - fv[v]);
    const std::size_t tx =
        wrap(static_cast<long>(x) + kVelocity[v][0], g.nx, p_.periodic_x);
    const std::size_t ty =
        wrap(static_cast<long>(y) + kVelocity[v][1], g.ny, p_.periodic_y);
    const std::size_t tz =
        wrap(static_cast<long>(z) + kVelocity[v][2], g.nz, p_.periodic_z);
    if (solid_[g.cell_index(tx, ty, tz)] != 0) {
      // Half-way bounce-back: the population returns to the source cell in
      // the opposite direction.
      f_[g.f_index(x, y, z, kOpposite[v], write_toggle)] = post;
    } else {
      f_[g.f_index(tx, ty, tz, v, write_toggle)] = post;
    }
  }
}

double Solver::step() {
  const Geometry& g = p_.geometry;
  const std::size_t read_toggle = steps_ % 2;
  const std::size_t write_toggle = 1 - read_toggle;

#ifdef _OPENMP
  switch (p_.schedule.kind) {
    case sched::ScheduleKind::kStatic:
      omp_set_schedule(omp_sched_static, 0);
      break;
    case sched::ScheduleKind::kStaticChunk:
      omp_set_schedule(omp_sched_static, static_cast<int>(p_.schedule.chunk));
      break;
    case sched::ScheduleKind::kDynamic:
      omp_set_schedule(omp_sched_dynamic, static_cast<int>(p_.schedule.chunk));
      break;
  }
#endif

  util::Timer timer;
  if (p_.fused_zy) {
    const auto zy = static_cast<std::ptrdiff_t>(g.nz * g.ny);
#pragma omp parallel for schedule(runtime)
    for (std::ptrdiff_t i = 0; i < zy; ++i) {
      const std::size_t z = static_cast<std::size_t>(i) / g.ny + 1;
      const std::size_t y = static_cast<std::size_t>(i) % g.ny + 1;
      for (std::size_t x = 1; x <= g.nx; ++x)
        if (solid_[g.cell_index(x, y, z)] == 0)
          update_cell(x, y, z, read_toggle, write_toggle);
    }
  } else {
    const auto nz = static_cast<std::ptrdiff_t>(g.nz);
#pragma omp parallel for schedule(runtime)
    for (std::ptrdiff_t zi = 1; zi <= nz; ++zi) {
      const auto z = static_cast<std::size_t>(zi);
      for (std::size_t y = 1; y <= g.ny; ++y)
        for (std::size_t x = 1; x <= g.nx; ++x)
          if (solid_[g.cell_index(x, y, z)] == 0)
            update_cell(x, y, z, read_toggle, write_toggle);
    }
  }
  ++steps_;
  return timer.seconds();
}

double Solver::total_mass() const {
  const Geometry& g = p_.geometry;
  const std::size_t toggle = steps_ % 2;
  double mass = 0.0;
  for (std::size_t z = 1; z <= g.nz; ++z)
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x) {
        if (is_solid(x, y, z)) continue;
        for (std::size_t v = 0; v < kQ; ++v)
          mass += f_[g.f_index(x, y, z, v, toggle)];
      }
  return mass;
}

std::array<double, 3> Solver::total_momentum() const {
  const Geometry& g = p_.geometry;
  const std::size_t toggle = steps_ % 2;
  std::array<double, 3> mom{};
  for (std::size_t z = 1; z <= g.nz; ++z)
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x) {
        if (is_solid(x, y, z)) continue;
        for (std::size_t v = 0; v < kQ; ++v) {
          const double fval = f_[g.f_index(x, y, z, v, toggle)];
          mom[0] += fval * kVelocity[v][0];
          mom[1] += fval * kVelocity[v][1];
          mom[2] += fval * kVelocity[v][2];
        }
      }
  return mom;
}

double Solver::density(std::size_t x, std::size_t y, std::size_t z) const {
  const Geometry& g = p_.geometry;
  const std::size_t toggle = steps_ % 2;
  double rho = 0.0;
  for (std::size_t v = 0; v < kQ; ++v) rho += f_[g.f_index(x, y, z, v, toggle)];
  return rho;
}

std::array<double, 3> Solver::velocity(std::size_t x, std::size_t y,
                                       std::size_t z) const {
  const Geometry& g = p_.geometry;
  const std::size_t toggle = steps_ % 2;
  double rho = 0.0;
  std::array<double, 3> m{};
  for (std::size_t v = 0; v < kQ; ++v) {
    const double fval = f_[g.f_index(x, y, z, v, toggle)];
    rho += fval;
    m[0] += fval * kVelocity[v][0];
    m[1] += fval * kVelocity[v][1];
    m[2] += fval * kVelocity[v][2];
  }
  if (rho != 0.0)
    for (double& c : m) c /= rho;
  return m;
}

bool Solver::is_solid(std::size_t x, std::size_t y, std::size_t z) const {
  return solid_[p_.geometry.cell_index(x, y, z)] != 0;
}

double Solver::f_at(std::size_t x, std::size_t y, std::size_t z,
                    std::size_t v) const {
  return f_[p_.geometry.f_index(x, y, z, v, steps_ % 2)];
}

void Solver::restore(std::vector<double> f, unsigned steps) {
  if (f.size() != p_.geometry.f_elems())
    throw std::invalid_argument(
        "Solver::restore: state holds " + std::to_string(f.size()) +
        " values, geometry needs " + std::to_string(p_.geometry.f_elems()));
  f_ = std::move(f);
  steps_ = steps;
}

void Solver::restream_slab(std::size_t z) {
  const Geometry& g = p_.geometry;
  if (steps_ == 0)
    throw std::logic_error(
        "Solver::restream_slab: no prior field before the first step");
  if (z < 1 || z > g.nz)
    throw std::out_of_range("Solver::restream_slab: slab out of range");
  // The step that produced the current field read toggle steps_-1 and wrote
  // toggle steps_. A push-style update writes only to z±1 neighbors, so
  // re-running every source slab that can reach `z` regenerates the whole
  // slab; the spill into adjacent slabs rewrites identical values (same
  // inputs, same arithmetic).
  const std::size_t read_toggle = (steps_ - 1) % 2;
  const std::size_t write_toggle = 1 - read_toggle;
  for (long dz = -1; dz <= 1; ++dz) {
    const long raw = static_cast<long>(z) + dz;
    std::size_t src_z;
    if (raw < 1 || raw > static_cast<long>(g.nz)) {
      if (!p_.periodic_z) continue;
      src_z = wrap(raw, g.nz, true);
    } else {
      src_z = static_cast<std::size_t>(raw);
    }
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x)
        if (solid_[g.cell_index(x, y, src_z)] == 0)
          update_cell(x, y, src_z, read_toggle, write_toggle);
  }
}

}  // namespace mcopt::kernels::lbm
