#include "runtime/executor/mpmc_queue.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mcopt::runtime::exec {
namespace {

struct Item {
  int id = 0;
  std::uint64_t tag = 0;
};

constexpr auto kNoReserve = [](Item&) {};

TEST(MpmcQueue, PopsHighestLaneFirstThenFifoWithinLane) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kLow, {1}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {2}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {3}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {4}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {5}));
  q.close();
  std::vector<int> order;
  while (auto item = q.pop(kNoReserve)) order.push_back(item->id);
  EXPECT_EQ(order, (std::vector<int>{3, 4, 2, 5, 1}));
}

TEST(MpmcQueue, FullLaneIsTypedBackpressureNotBlocking) {
  LaneQueue<Item> q({1, 2, 1});
  EXPECT_TRUE(q.try_push(Priority::kNormal, {1}));
  EXPECT_TRUE(q.try_push(Priority::kNormal, {2}));
  EXPECT_FALSE(q.try_push(Priority::kNormal, {3}));  // lane full
  // Other lanes are bounded independently.
  EXPECT_TRUE(q.try_push(Priority::kHigh, {4}));
  EXPECT_FALSE(q.try_push(Priority::kHigh, {5}));
  EXPECT_EQ(q.lane_size(Priority::kNormal), 2u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(MpmcQueue, RejectsZeroCapacityLanes) {
  EXPECT_THROW(LaneQueue<Item>({0, 1, 1}), std::invalid_argument);
}

TEST(MpmcQueue, CloseDrainsRemainingItemsThenReturnsNullopt) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {2}));
  q.close();
  EXPECT_FALSE(q.try_push(Priority::kNormal, {3}));  // closed: no new work
  EXPECT_TRUE(q.pop(kNoReserve).has_value());
  EXPECT_TRUE(q.pop(kNoReserve).has_value());
  EXPECT_FALSE(q.pop(kNoReserve).has_value());  // drained
}

TEST(MpmcQueue, ShedAllRemovesEverythingHighestLaneFirst) {
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kLow, {1}));
  ASSERT_TRUE(q.try_push(Priority::kHigh, {2}));
  ASSERT_TRUE(q.try_push(Priority::kNormal, {3}));
  const auto shed = q.shed_all();
  ASSERT_EQ(shed.size(), 3u);
  EXPECT_EQ(shed[0].id, 2);
  EXPECT_EQ(shed[1].id, 3);
  EXPECT_EQ(shed[2].id, 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, ForEachMutatesQueuedItemsInPlace) {
  // The executor's repricing path: visit every queued item under the lock.
  LaneQueue<Item> q({4, 4, 4});
  ASSERT_TRUE(q.try_push(Priority::kNormal, {1, 10}));
  ASSERT_TRUE(q.try_push(Priority::kLow, {2, 20}));
  q.for_each([](Item& item) { item.tag *= 7; });
  q.close();
  std::vector<std::uint64_t> tags;
  while (auto item = q.pop(kNoReserve)) tags.push_back(item->tag);
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{70, 140}));
}

TEST(MpmcQueue, ReserveHookSerializesInExactPopOrder) {
  // The hook runs inside the dequeue critical section, so appending to a
  // plain vector from four racing consumers is safe and must observe the
  // exact FIFO order — this is the property the executor's virtual-time
  // reservation depends on (and what TSan checks here).
  constexpr int kItems = 200;
  LaneQueue<Item> q({8, static_cast<std::size_t>(kItems), 8});
  std::vector<int> reserved_order;  // guarded by the queue lock only
  std::vector<std::thread> consumers;
  std::atomic<int> popped{0};
  for (int t = 0; t < 4; ++t)
    consumers.emplace_back([&] {
      while (q.pop([&reserved_order](Item& item) {
        reserved_order.push_back(item.id);
      }))
        popped.fetch_add(1, std::memory_order_relaxed);
    });
  for (int i = 0; i < kItems; ++i)
    while (!q.try_push(Priority::kNormal, {i})) std::this_thread::yield();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  std::vector<int> expected(kItems);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(reserved_order, expected);
}

TEST(MpmcQueue, ConcurrentProducersAndConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  LaneQueue<Item> q({8, 8, 8});  // small bounds: backpressure exercised
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> consumers;
  for (int t = 0; t < 3; ++t)
    consumers.emplace_back([&] {
      while (auto item = q.pop([](Item&) {})) {
        popped_sum.fetch_add(item->tag, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const Item item{t * kPerProducer + i,
                        static_cast<std::uint64_t>(t * kPerProducer + i)};
        const auto lane = static_cast<Priority>(i % 3);
        while (!q.try_push(lane, item)) std::this_thread::yield();
        pushed_sum.fetch_add(item.tag, std::memory_order_relaxed);
      }
    });

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

}  // namespace
}  // namespace mcopt::runtime::exec
