#include "seg/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

namespace mcopt::seg {
namespace {

constexpr bool is_pow2(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

AlignedBuffer::AlignedBuffer(std::size_t bytes, std::size_t alignment)
    : bytes_(bytes), alignment_(alignment) {
  if (!is_pow2(alignment))
    throw std::invalid_argument("AlignedBuffer: alignment must be a power of two");
  if (alignment_ < sizeof(void*)) alignment_ = sizeof(void*);
  if (bytes == 0) return;
  void* p = nullptr;
  if (posix_memalign(&p, alignment_, bytes) != 0) throw std::bad_alloc();
  std::memset(p, 0, bytes);
  data_ = static_cast<std::byte*>(p);
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

}  // namespace mcopt::seg
