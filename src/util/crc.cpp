#include "util/crc.h"

#include <array>

namespace mcopt::util {
namespace {

// ---------------------------------------------------------------------------
// Software path: slice-by-8 over the reflected Castagnoli polynomial.
// Tables are built once at static-init time (256 * 8 u32 = 8 KiB).

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

struct Tables {
  std::uint32_t t[8][256];
  constexpr Tables() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? kPoly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

constexpr Tables kTables{};

// ---------------------------------------------------------------------------
// Zero-byte shift operators. Appending n zero bytes to a message maps the
// raw remainder through a GF(2)-linear operator; representing it as a 32x32
// bit matrix (column k = operator applied to the unit vector 1<<k) lets the
// hardware path run three independent crc32 dependency chains over adjacent
// lanes and stitch the lane remainders together afterwards:
//   raw(s, A||B||C) = shift_2L(raw(s, A)) ^ shift_L(raw(0, B)) ^ raw(0, C).
// The matrices for the fixed lane length are folded at compile time by
// repeated squaring (zlib's crc32_combine construction).

// The lane is small (3 lanes = 1.5 KiB per block) so the interleaved loop
// also engages for segment-sized buffers — a Jacobi row at N=1024 is 8 KiB.
constexpr std::size_t kLaneBytes = 512;

struct ShiftOp {
  std::uint32_t col[32];
};

constexpr std::uint32_t shift_apply(const ShiftOp& op, std::uint32_t v) {
  std::uint32_t out = 0;
  for (int k = 0; v != 0; ++k, v >>= 1)
    if (v & 1u) out ^= op.col[k];
  return out;
}

// Byte-sliced form of a shift operator: 4 table loads per application
// instead of a 32-iteration bit loop, cheap enough to run once per block.
struct ShiftTab {
  std::uint32_t t[4][256];
};

constexpr std::uint32_t shift_apply(const ShiftTab& tab, std::uint32_t v) {
  return tab.t[0][v & 0xFFu] ^ tab.t[1][(v >> 8) & 0xFFu] ^
         tab.t[2][(v >> 16) & 0xFFu] ^ tab.t[3][v >> 24];
}

struct ShiftOps {
  ShiftTab lane;    // shift by kLaneBytes zero bytes
  ShiftTab lane2;   // shift by 2 * kLaneBytes
  constexpr ShiftOps() : lane{}, lane2{} {
    // One-zero-byte operator: the table step with data byte 0.
    ShiftOp byte{};
    for (int k = 0; k < 32; ++k) {
      const std::uint32_t s = 1u << k;
      byte.col[k] = kTables.t[0][s & 0xFFu] ^ (s >> 8);
    }
    // Square log2(kLaneBytes) times: byte -> kLaneBytes bytes.
    ShiftOp acc = byte;
    for (std::size_t n = 1; n < kLaneBytes; n *= 2) {
      ShiftOp sq{};
      for (int k = 0; k < 32; ++k) sq.col[k] = shift_apply(acc, acc.col[k]);
      acc = sq;
    }
    ShiftOp acc2{};
    for (int k = 0; k < 32; ++k) acc2.col[k] = shift_apply(acc, acc.col[k]);
    slice(lane, acc);
    slice(lane2, acc2);
  }

 private:
  static constexpr void slice(ShiftTab& tab, const ShiftOp& op) {
    for (int byte = 0; byte < 4; ++byte)
      for (std::uint32_t v = 0; v < 256; ++v)
        tab.t[byte][v] = shift_apply(op, v << (8 * byte));
  }
};

constexpr ShiftOps kShift{};

// Core over the raw (non-inverted) remainder; callers handle the
// 0xFFFFFFFF init / final-XOR convention.
std::uint32_t sw_raw(std::uint32_t crc, const unsigned char* p,
                     std::size_t n) noexcept {
  // Byte-align until slice-by-8 can take over.
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return crc;
}

// ---------------------------------------------------------------------------
// Hardware path: SSE4.2 crc32 instruction. The container's default flags do
// not include -msse4.2, so the function carries a target attribute and is
// only ever called after a cpuid probe.

#if defined(__x86_64__) || defined(__i386__)
#define MCOPT_CRC_HW 1

__attribute__((target("sse4.2"))) std::uint32_t hw_raw(
    std::uint32_t crc, const unsigned char* p, std::size_t n) noexcept {
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  // The crc32 instruction has 3-cycle latency on one result chain; running
  // three chains over adjacent lanes hides it and roughly triples
  // throughput. Lane remainders recombine through the precomputed
  // zero-byte shift operators.
  while (n >= 3 * kLaneBytes) {
    std::uint64_t c0 = crc64;
    std::uint64_t c1 = 0;
    std::uint64_t c2 = 0;
    const unsigned char* q1 = p + kLaneBytes;
    const unsigned char* q2 = p + 2 * kLaneBytes;
    for (std::size_t i = 0; i < kLaneBytes; i += 8) {
      std::uint64_t v0;
      std::uint64_t v1;
      std::uint64_t v2;
      __builtin_memcpy(&v0, p + i, 8);
      __builtin_memcpy(&v1, q1 + i, 8);
      __builtin_memcpy(&v2, q2 + i, 8);
      c0 = __builtin_ia32_crc32di(c0, v0);
      c1 = __builtin_ia32_crc32di(c1, v1);
      c2 = __builtin_ia32_crc32di(c2, v2);
    }
    crc64 = shift_apply(kShift.lane2, static_cast<std::uint32_t>(c0)) ^
            shift_apply(kShift.lane, static_cast<std::uint32_t>(c1)) ^
            static_cast<std::uint32_t>(c2);
    p += 3 * kLaneBytes;
    n -= 3 * kLaneBytes;
  }
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#else
  while (n >= 4) {
    std::uint32_t v;
    __builtin_memcpy(&v, p, 4);
    crc = __builtin_ia32_crc32si(crc, v);
    p += 4;
    n -= 4;
  }
#endif
  while (n != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}

bool probe_hw() noexcept { return __builtin_cpu_supports("sse4.2") != 0; }
#else
#define MCOPT_CRC_HW 0
bool probe_hw() noexcept { return false; }
#endif

const bool kUseHw = probe_hw();

std::uint32_t dispatch_raw(std::uint32_t crc, const unsigned char* p,
                           std::size_t n) noexcept {
#if MCOPT_CRC_HW
  if (kUseHw) return hw_raw(crc, p, n);
#endif
  return sw_raw(crc, p, n);
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  return ~dispatch_raw(~seed, p, bytes);
}

std::uint32_t crc32c_sw(const void* data, std::size_t bytes,
                        std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  return ~sw_raw(~seed, p, bytes);
}

bool crc32c_hw_available() noexcept { return kUseHw; }

void Crc32c::update(const void* data, std::size_t bytes) noexcept {
  state_ = dispatch_raw(state_, static_cast<const unsigned char*>(data), bytes);
}

}  // namespace mcopt::util
