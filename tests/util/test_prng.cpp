#include "util/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace mcopt::util {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 g(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 g(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro, BelowRespectsBound) {
  Xoshiro256 g(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = g.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Splitmix, KnownProgression) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  // Reference value for seed 0 (splitmix64 test vector).
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace mcopt::util
