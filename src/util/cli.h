#pragma once
// Tiny declarative command-line parser for the bench/example executables.
//
// Supports `--name value`, `--name=value` and boolean `--flag`. Unknown
// options are an error (typos should not silently run the default sweep).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcopt::util {

/// Declarative option set; register options, then parse(argc, argv).
class Cli {
 public:
  explicit Cli(std::string program_description);

  Cli& flag(const std::string& name, const std::string& help);
  Cli& option_int(const std::string& name, std::int64_t def, const std::string& help);
  Cli& option_double(const std::string& name, double def, const std::string& help);
  Cli& option_str(const std::string& name, std::string def, const std::string& help);

  /// Parses argv. Returns false (after printing usage) iff --help was given.
  /// Throws std::invalid_argument on unknown options or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_str(const std::string& name) const;

  void print_usage(const std::string& argv0) const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Opt {
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string str_value;
  };

  Opt& require(const std::string& name, Kind kind) const;

  std::string description_;
  mutable std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace mcopt::util
