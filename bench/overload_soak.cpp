// Overload soak: seeded open-loop load against the executor's admission
// control, sweeping offered load from well below to 4x the analytic
// capacity of the generated job mix, healthy and under fault schedules.
//
// Every sweep point asserts the overload invariants (see overload_common.h):
// the shed-lag bound on accepted jobs, byte-exact conservation across typed
// shed reasons, goodput monotone-capped at the mix's analytic roofline, and
// nothing lost silently across drain-on-shutdown. Failures print the seed
// and are replayable with --seed N.
//
// --reference runs the canonical sweep and writes BENCH_overload.json
// (goodput, shed breakdown and sojourn percentiles per offered ratio); the
// exit code enforces the acceptance gate: goodput >= 0.9x of the smaller of
// offered load and capacity at every healthy point, and a <1% deadline-miss
// rate among accepted jobs even at 2x overload.
//
// --schedule injects a ground-truth fault timeline (percent stamps resolve
// against the generated mix's horizon): goodput degrades, the invariants
// must hold anyway. EXPERIMENTS.md tabulates healthy vs degraded.
//
// --service switches to the multi-tenant service soak (service_common.h):
// thousands of tenants with weights, quotas and SLO classes, a seeded share
// of them adversarial, run twice (full mix + attacker-muted solo baseline)
// and checked against the isolation invariants S1-S4. --service-chaos N
// instead runs N seeded chaos pairs, each with a random controller-fault
// schedule on top of the adversarial mix. Reference mode writes
// BENCH_service.json with per-behavior aggregates and Jain's index.

#include <array>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "overload_common.h"
#include "service_common.h"

namespace {

using namespace mcopt;

struct SweepRow {
  double ratio = 0.0;
  bench::OverloadResult res;
  std::vector<std::string> failures;
};

SweepRow run_point(double ratio, const bench::OverloadParams& base,
                   const std::string& schedule_text) {
  SweepRow row;
  row.ratio = ratio;
  bench::OverloadParams params = base;
  params.offered_ratio = ratio;
  const bool healthy = schedule_text.empty();
  if (!healthy) {
    const sim::SimConfig sim_cfg{};
    params.truth = bench::parse_schedule_knob(schedule_text, sim_cfg,
                                              bench::overload_horizon(params));
  }
  row.res = bench::run_overload(params);
  row.failures = bench::check_overload_invariants(params, row.res, healthy);
  return row;
}

std::string shed_breakdown(const runtime::exec::ExecutorStats& stats) {
  using runtime::exec::ShedReason;
  std::string out;
  for (unsigned r = 1; r < stats.shed.size(); ++r) {
    if (stats.shed[r] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(to_string(static_cast<ShedReason>(r))) + "=" +
           std::to_string(stats.shed[r]);
  }
  return out.empty() ? "-" : out;
}

int run_sweep(const std::vector<double>& ratios,
              const bench::OverloadParams& base,
              const std::string& schedule_text, const std::string& csv_path,
              const std::string& json_path, bool reference,
              const std::string& fail_log_path) {
  std::vector<SweepRow> rows;
  for (const double ratio : ratios)
    rows.push_back(run_point(ratio, base, schedule_text));

  std::vector<std::vector<std::string>> table_rows;
  char buf[64];
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    auto cell = [&](const char* fmt, auto value) {
      std::snprintf(buf, sizeof buf, fmt, value);
      cells.emplace_back(buf);
    };
    cell("%.2f", row.ratio);
    cell("%.3f", bench::checked_rate(row.res.offered_gbs, "offered GB/s"));
    cell("%.3f", bench::checked_rate(row.res.capacity_gbs, "capacity GB/s"));
    cell("%.3f", bench::checked_rate(row.res.goodput_gbs, "goodput GB/s"));
    cell("%" PRIu64, row.res.stats.completed);
    cells.push_back(shed_breakdown(row.res.stats));
    cell("%.2f", row.res.miss_rate * 100.0);
    cell("%.3f", row.res.p50_ms);
    cell("%.3f", row.res.p99_ms);
    cells.push_back(row.failures.empty() ? "PASS" : "FAIL");
    table_rows.push_back(std::move(cells));
  }
  bench::emit({"offered_x", "offered_gbs", "capacity_gbs", "goodput_gbs",
               "completed", "shed", "miss_pct", "p50_ms", "p99_ms", "check"},
              table_rows, csv_path);

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const auto& row : rows) {
    if (row.failures.empty()) continue;
    ++failures;
    std::printf("offered %.2fx seed %" PRIu64 " FAILED:\n", row.ratio,
                base.seed);
    if (fail_log == nullptr && !fail_log_path.empty())
      fail_log = std::fopen(fail_log_path.c_str(), "a");
    if (fail_log != nullptr)
      std::fprintf(fail_log, "seed %" PRIu64 " offered %.2fx\n", base.seed,
                   row.ratio);
    for (const auto& f : row.failures) {
      std::printf("  %s\n", f.c_str());
      if (fail_log != nullptr) std::fprintf(fail_log, "  %s\n", f.c_str());
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);
  if (failures != 0) bench::attach_failure_artifacts(fail_log_path);

  if (reference && !json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("overload_soak: cannot write " + json_path);
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"executor_overload_soak\",\n"
                 "  \"schedule\": \"%s\",\n"
                 "  \"jobs\": %u,\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"workers\": %u,\n"
                 "  \"points\": [\n",
                 schedule_text.empty() ? "healthy" : schedule_text.c_str(),
                 base.jobs, base.seed, base.num_workers);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    {\"offered_x\": %.2f, \"offered_gbs\": %.4f, "
          "\"capacity_gbs\": %.4f, \"goodput_gbs\": %.4f, "
          "\"completed\": %" PRIu64 ", \"miss_rate\": %.6f, "
          "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"shed\": \"%s\", \"pass\": %s}%s\n",
          row.ratio, row.res.offered_gbs, row.res.capacity_gbs,
          row.res.goodput_gbs, row.res.stats.completed, row.res.miss_rate,
          row.res.p50_ms, row.res.p95_ms, row.res.p99_ms,
          shed_breakdown(row.res.stats).c_str(),
          row.failures.empty() ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
                 obs::MetricsRegistry::instance().json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

/// Per-behavior aggregate of one service run, for the table and the JSON.
struct BehaviorAgg {
  unsigned tenants = 0;
  std::uint64_t submitted = 0;
  std::uint64_t door_shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t goodput_bytes = 0;
  double worst_goodput_ratio = 1.0;  ///< min goodput/offered across tenants
};

std::array<BehaviorAgg, bench::kNumTenantBehaviors> aggregate_behaviors(
    const bench::ServiceSoakResult& res) {
  std::array<BehaviorAgg, bench::kNumTenantBehaviors> agg{};
  for (std::size_t i = 0; i < res.tenants.size(); ++i) {
    const auto& t = res.tenants[i];
    BehaviorAgg& a = agg[static_cast<unsigned>(res.behaviors[i])];
    ++a.tenants;
    a.submitted += t.counters.submitted;
    a.door_shed += t.counters.throttled + t.counters.breaker_rejected;
    a.completed += t.completed;
    a.offered_bytes += t.counters.offered_bytes;
    a.goodput_bytes += t.goodput_bytes;
    if (t.counters.offered_bytes > 0)
      a.worst_goodput_ratio =
          std::min(a.worst_goodput_ratio,
                   static_cast<double>(t.goodput_bytes) /
                       static_cast<double>(t.counters.offered_bytes));
  }
  return agg;
}

/// Largest mixed/solo p99 ratio among well-behaved tenants with enough
/// completions for a stable quantile — the same >= 1000-sample floor the
/// S3 gate uses (below it a per-tenant p99 is a single sparse order
/// statistic). When no tenant qualifies (small smoke runs), falls back to
/// the pooled victim-population ratio.
double worst_p99_ratio(const bench::ServiceSoakResult& mixed,
                       const bench::ServiceSoakResult& baseline) {
  double worst = 0.0;
  for (std::size_t i = 0; i < mixed.tenants.size(); ++i) {
    if (mixed.behaviors[i] != bench::TenantBehavior::kWellBehaved) continue;
    const auto& t = mixed.tenants[i];
    const auto& b = baseline.tenants[i];
    if (t.completed < 1000 || b.completed < 1000 || b.p99_ms <= 0.0) continue;
    worst = std::max(worst, t.p99_ms / b.p99_ms);
  }
  if (worst == 0.0 && baseline.victim_pool_p99_ms > 0.0)
    worst = mixed.victim_pool_p99_ms / baseline.victim_pool_p99_ms;
  return worst;
}

/// One mixed + solo-baseline service pair; prints the per-behavior table
/// and returns the invariant failures.
std::vector<std::string> run_service_pair(
    const bench::ServiceSoakParams& params, bench::ServiceSoakResult& mixed,
    bench::ServiceSoakResult& baseline) {
  mixed = bench::run_service_soak(params);
  bench::ServiceSoakParams solo = params;
  solo.mute_attackers = true;
  baseline = bench::run_service_soak(solo);
  const bool degraded = !params.truth.intervals.empty();
  const auto failures =
      bench::check_service_invariants(params, mixed, baseline, degraded);

  const auto agg = aggregate_behaviors(mixed);
  std::printf(
      "service seed %" PRIu64 ": %u tenants, %" PRIu64
      " jobs at the door, horizon %.2f vs, capacity %.2f GB/s%s\n",
      params.seed, params.tenants, mixed.submissions,
      static_cast<double>(mixed.horizon) / mixed.clock_hz, mixed.capacity_gbs,
      degraded ? " (degraded: fault schedule injected)" : "");
  std::printf("  %-16s %7s %10s %10s %10s %9s %9s\n", "behavior", "tenants",
              "submitted", "door-shed", "completed", "goodput%", "worst%");
  for (unsigned b = 0; b < bench::kNumTenantBehaviors; ++b) {
    const BehaviorAgg& a = agg[b];
    if (a.tenants == 0) continue;
    const double pct =
        a.offered_bytes == 0 ? 0.0
                             : 100.0 * static_cast<double>(a.goodput_bytes) /
                                   static_cast<double>(a.offered_bytes);
    std::printf("  %-16s %7u %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %8.2f%% %8.2f%%\n",
                to_string(static_cast<bench::TenantBehavior>(b)), a.tenants,
                a.submitted, a.door_shed, a.completed, pct,
                a.worst_goodput_ratio * 100.0);
  }
  std::printf("  goodput %.2f GB/s, jain(goodput/weight) %.4f, breaker "
              "opens %" PRIu64 ", cancelled %" PRIu64
              ", worst victim p99 ratio %.3f\n",
              mixed.goodput_gbs, mixed.jain_weighted, mixed.breaker_opens,
              mixed.cancelled_requests, worst_p99_ratio(mixed, baseline));
  std::printf("  offered %.2f GB/s over the window, drained at %.2f vs, "
              "executor sheds: %s\n",
              static_cast<double>(mixed.offered_bytes) /
                  (static_cast<double>(mixed.horizon) / mixed.clock_hz) / 1e9,
              static_cast<double>(mixed.drained_at) / mixed.clock_hz,
              shed_breakdown(mixed.exec_stats).c_str());
  std::printf("  victim pool p50/p99: %.3f/%.3f ms mixed vs %.3f/%.3f ms "
              "solo\n",
              mixed.victim_pool_p50_ms, mixed.victim_pool_p99_ms,
              baseline.victim_pool_p50_ms, baseline.victim_pool_p99_ms);
  return failures;
}

int run_service(const bench::ServiceSoakParams& base, unsigned chaos_runs,
                bool reference, const std::string& json_path,
                const std::string& fail_log_path) {
  unsigned failed_runs = 0;
  std::FILE* fail_log = nullptr;
  bench::ServiceSoakResult mixed, baseline;

  const auto report = [&](std::uint64_t seed,
                          const std::vector<std::string>& failures) {
    if (failures.empty()) return;
    ++failed_runs;
    std::printf("service seed %" PRIu64 " FAILED:\n", seed);
    if (fail_log == nullptr && !fail_log_path.empty())
      fail_log = std::fopen(fail_log_path.c_str(), "a");
    if (fail_log != nullptr)
      std::fprintf(fail_log, "service seed %" PRIu64 "\n", seed);
    for (const auto& f : failures) {
      std::printf("  %s\n", f.c_str());
      if (fail_log != nullptr) std::fprintf(fail_log, "  %s\n", f.c_str());
    }
  };

  if (chaos_runs > 0) {
    for (unsigned i = 0; i < chaos_runs; ++i) {
      const std::uint64_t seed = base.seed + i;
      const auto params = bench::service_chaos_params(
          seed, base.tenants, base.target_jobs, base.num_workers);
      report(seed, run_service_pair(params, mixed, baseline));
    }
  } else {
    report(base.seed, run_service_pair(base, mixed, baseline));
  }
  if (fail_log != nullptr) std::fclose(fail_log);
  if (failed_runs != 0) bench::attach_failure_artifacts(fail_log_path);

  if (reference && !json_path.empty() && chaos_runs == 0) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("overload_soak: cannot write " + json_path);
    const auto agg = aggregate_behaviors(mixed);
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"service_soak\",\n"
                 "  \"tenants\": %u,\n"
                 "  \"target_jobs\": %u,\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"workers\": %u,\n"
                 "  \"attacker_fraction\": %.4f,\n"
                 "  \"attacker_overdrive\": %.2f,\n"
                 "  \"quota_headroom\": %.2f,\n"
                 "  \"submissions\": %" PRIu64 ",\n"
                 "  \"horizon_vs\": %.4f,\n"
                 "  \"capacity_gbs\": %.4f,\n"
                 "  \"goodput_gbs\": %.4f,\n"
                 "  \"door_shed\": %" PRIu64 ",\n"
                 "  \"breaker_opens\": %" PRIu64 ",\n"
                 "  \"cancelled\": %" PRIu64 ",\n"
                 "  \"jain_weighted\": %.6f,\n"
                 "  \"worst_victim_p99_ratio\": %.4f,\n"
                 "  \"behaviors\": [\n",
                 base.tenants, base.target_jobs, base.seed, base.num_workers,
                 base.attacker_fraction, base.attacker_overdrive,
                 base.quota_headroom, mixed.submissions,
                 static_cast<double>(mixed.horizon) / mixed.clock_hz,
                 mixed.capacity_gbs, mixed.goodput_gbs, mixed.door_shed,
                 mixed.breaker_opens, mixed.cancelled_requests,
                 mixed.jain_weighted, worst_p99_ratio(mixed, baseline));
    bool first = true;
    for (unsigned b = 0; b < bench::kNumTenantBehaviors; ++b) {
      const BehaviorAgg& a = agg[b];
      if (a.tenants == 0) continue;
      std::fprintf(
          f,
          "%s    {\"behavior\": \"%s\", \"tenants\": %u, "
          "\"submitted\": %" PRIu64 ", \"door_shed\": %" PRIu64
          ", \"completed\": %" PRIu64 ", \"offered_bytes\": %" PRIu64
          ", \"goodput_bytes\": %" PRIu64 ", \"worst_goodput_ratio\": %.4f}",
          first ? "" : ",\n", to_string(static_cast<bench::TenantBehavior>(b)),
          a.tenants, a.submitted, a.door_shed, a.completed, a.offered_bytes,
          a.goodput_bytes, a.worst_goodput_ratio);
      first = false;
    }
    std::fprintf(f, "\n  ],\n  \"pass\": %s,\n  \"metrics\": %s\n}\n",
                 failed_runs == 0 ? "true" : "false",
                 obs::MetricsRegistry::instance().json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failed_runs == 0 ? 0 : 1;
}

std::vector<double> parse_ratios(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    out.push_back(std::stod(text.substr(pos, next - pos)));
    pos = next + 1;
  }
  if (out.empty()) throw std::invalid_argument("overload_soak: empty --ratios");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Overload soak: open-loop load vs the executor's bandwidth-priced "
      "admission control, 0.5x-4x analytic capacity (replay with --seed)");
  cli.option_str("ratios", "0.5,0.75,1.0,1.5,2.0,3.0,4.0",
                 "comma-separated offered-load multiples of capacity")
      .option_int("jobs", 240, "jobs per sweep point")
      .option_int("seed", 1, "load-generator seed")
      .option_int("workers", 4, "executor worker threads")
      .option_double("slack", 12.0, "mean deadline slack (x own service)")
      .option_double("pace", 0.0,
                     "real ns per virtual cycle for open-loop submission "
                     "(0 = default: 0.5, or 20.0 under TSan)")
      .option_str("schedule", "",
                  "ground-truth fault timeline (e.g. mc1:off@25%..75%); "
                  "degraded mode: goodput floor and miss-rate gate waived")
      .flag("lbm", "include LBM jobs in the mix (OpenMP body; not TSan-safe)")
      .flag("no-kernels", "skip job bodies: pure admission/accounting sweep")
      .flag("reference", "canonical sweep; write JSON and gate acceptance")
      .flag("service",
            "multi-tenant service soak: adversarial mix + solo baseline, "
            "isolation invariants S1-S4 (see service_common.h)")
      .option_int("tenants", 1000, "service mode: tenant count")
      .option_int("service-jobs", 1000000,
                  "service mode: target submissions of the full mix")
      .option_double("attackers", 0.02,
                     "service mode: adversarial tenant fraction")
      .option_double("overdrive", 4.0,
                     "service mode: attacker offered load (x own quota)")
      .option_int("service-chaos", 0,
                  "service mode: run N seeded chaos pairs (random fault "
                  "schedules, seeds seed..seed+N-1) instead of one reference "
                  "pair")
      .option_str("csv", "", "mirror the table to this CSV path")
      .option_str("json", "", "reference-mode output path (default "
                              "BENCH_overload.json / BENCH_service.json)")
      .option_str("fail-log", "", "append failing seeds + invariants here");
  mcopt::bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  mcopt::bench::ObsGuard obs(cli);

  mcopt::bench::OverloadParams base;
  base.jobs = static_cast<unsigned>(cli.get_int("jobs"));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  base.num_workers = static_cast<unsigned>(cli.get_int("workers"));
  base.deadline_slack = cli.get_double("slack");
  base.include_lbm = cli.get_flag("lbm");
  base.run_kernels = !cli.get_flag("no-kernels");
#ifdef MCOPT_TSAN
  // libgomp is not TSan-instrumented; the LBM body would report races that
  // are not the executor's. Zero suppressions means zero OpenMP bodies.
  base.include_lbm = false;
  // Instrumentation slows real execution 10-20x; the open-loop replay clock
  // must slow with it or workers fall behind the arrival schedule and the
  // sweep measures the sanitizer, not the scheduler.
  base.pace_ns_per_cycle = 20.0;
#endif
  if (cli.get_double("pace") > 0.0)
    base.pace_ns_per_cycle = cli.get_double("pace");

  if (cli.get_flag("service")) {
    mcopt::bench::ServiceSoakParams sp;
    sp.tenants = static_cast<unsigned>(cli.get_int("tenants"));
    sp.target_jobs = static_cast<unsigned>(cli.get_int("service-jobs"));
    sp.seed = base.seed;
    sp.num_workers = base.num_workers;
    sp.attacker_fraction = cli.get_double("attackers");
    sp.attacker_overdrive = cli.get_double("overdrive");
    sp.run_kernels = false;  // accounting mode: invariants are virtual-time
    sp.pace_ns_per_cycle = cli.get_double("pace");
    if (!cli.get_str("schedule").empty()) {
      const sim::SimConfig sim_cfg{};
      const arch::Cycles horizon = mcopt::bench::service_soak_horizon(sp);
      sp.truth = mcopt::bench::parse_schedule_knob(
          cli.get_str("schedule"), sim_cfg, horizon + horizon / 4);
    }
    const std::string json = cli.get_str("json").empty()
                                 ? std::string("BENCH_service.json")
                                 : cli.get_str("json");
    return run_service(sp,
                       static_cast<unsigned>(cli.get_int("service-chaos")),
                       cli.get_flag("reference"), json,
                       cli.get_str("fail-log"));
  }

  const auto ratios = parse_ratios(cli.get_str("ratios"));
  const std::string json = cli.get_str("json").empty()
                               ? std::string("BENCH_overload.json")
                               : cli.get_str("json");
  return run_sweep(ratios, base, cli.get_str("schedule"), cli.get_str("csv"),
                   json, cli.get_flag("reference"), cli.get_str("fail-log"));
}
