#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mcopt::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Four lines: header, rule, one row.
  EXPECT_NE(out.find("a          long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell  1"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(1.0, 0), "1");
  EXPECT_EQ(fmt_fixed(-2.5, 1), "-2.5");
}

TEST(Format, Group) {
  EXPECT_EQ(fmt_group(0), "0");
  EXPECT_EQ(fmt_group(999), "999");
  EXPECT_EQ(fmt_group(1000), "1,000");
  EXPECT_EQ(fmt_group(33554432), "33,554,432");
  EXPECT_EQ(fmt_group(-1234567), "-1,234,567");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(4ull * 1024 * 1024), "4.0 MiB");
  EXPECT_EQ(fmt_bytes(1536), "1.5 KiB");
}

TEST(Format, Bandwidth) {
  EXPECT_EQ(fmt_bandwidth(16.38e9), "16.38 GB/s");
  EXPECT_EQ(fmt_bandwidth(0.0), "0.00 GB/s");
}

}  // namespace
}  // namespace mcopt::util
