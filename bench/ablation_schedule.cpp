// Scheduling/placement ablation: the paper's claims that depend on HOW the
// loop is scheduled rather than on the data layout.
//
//  * Jacobi needs "static,1" with the optimal layout (Sect. 2.3): a blocked
//    static schedule spaces concurrent rows a chunk apart, which defeats the
//    shift-based controller spreading AND exceeds what the L2 can hold;
//  * the LBM modulo effect (Sect. 2.4): nz mod threads != 0 starves threads
//    under outer-z parallelization; coalescing z,y fixes it;
//  * packed vs equidistant thread placement.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  util::Cli cli("Schedule & placement ablations (Jacobi and LBM)");
  cli.flag("full", "larger sizes")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;
  const std::size_t jn = cli.get_flag("full") ? 1024 : 512;

  const arch::AddressMap map;
  const auto optimal = kernels::jacobi_optimal_spec(map);
  const auto plain = kernels::jacobi_plain_spec();

  std::printf("# Jacobi at N=%zu, 64 threads, MLUPs/s\n\n", jn);
  std::vector<std::vector<std::string>> rows;
  for (const auto& [layout_name, spec] :
       {std::pair<const char*, seg::LayoutSpec>{"optimal", optimal},
        std::pair<const char*, seg::LayoutSpec>{"plain", plain}}) {
    rows.push_back(
        {layout_name,
         util::fmt_fixed(
             bench::jacobi_mlups(jn, spec, sched::Schedule::static_block(), 64), 1),
         util::fmt_fixed(
             bench::jacobi_mlups(jn, spec, sched::Schedule::static_chunk(1), 64), 1),
         util::fmt_fixed(
             bench::jacobi_mlups(jn, spec, sched::Schedule::static_chunk(4), 64), 1)});
  }
  bench::emit({"layout", "static", "static,1", "static,4"}, rows,
              cli.get_str("csv").empty() ? "" : cli.get_str("csv") + ".jacobi.csv");

  std::printf("\n# LBM modulo effect: IvJK, nz chosen hostile to the thread count\n\n");
  std::vector<std::vector<std::string>> rows2;
  for (std::size_t n : {32ul, 33ul, 48ul, 65ul}) {
    rows2.push_back(
        {std::to_string(n),
         util::fmt_fixed(bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 32), 2),
         util::fmt_fixed(
             bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32), 2),
         util::fmt_fixed(bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 64), 2),
         util::fmt_fixed(
             bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 64), 2)});
  }
  bench::emit({"N", "32T outer-z", "32T fused", "64T outer-z", "64T fused"}, rows2,
              cli.get_str("csv").empty() ? "" : cli.get_str("csv") + ".lbm.csv");

  // Placement: packed vs equidistant for a balanced triad at 32 threads.
  std::printf("\n# Thread placement at 32 threads (vector triad, planner offsets)\n\n");
  trace::VirtualArena arena;
  const auto bases = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, 1 << 18, map);
  auto run_placement = [&](const arch::Placement& p) {
    auto wl = kernels::make_triad_workload(bases, 1 << 18, 32,
                                           sched::Schedule::static_block());
    sim::SimConfig cfg;
    sim::Chip chip(cfg, p);
    const auto res = chip.run(wl);
    return static_cast<double>(kernels::triad_actual_bytes(1 << 18)) /
           res.seconds() / 1e9;
  };
  sim::SimConfig cfg;
  std::vector<std::vector<std::string>> rows3;
  rows3.push_back(
      {"equidistant (paper)",
       util::fmt_fixed(run_placement(arch::equidistant_placement(32, cfg.topology)), 2)});
  rows3.push_back(
      {"packed",
       util::fmt_fixed(run_placement(arch::packed_placement(32, cfg.topology)), 2)});
  bench::emit({"placement", "GB/s"}, rows3, "");
  return 0;
}
