#pragma once
// Column-aligned plain-text table printer used by the benchmark harnesses to
// emit paper-style result tables on stdout.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcopt::util {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Numeric cells should be pre-formatted by the caller (see fmt_* helpers);
/// the table only handles layout. Example:
///
///   Table t({"offset", "8T", "16T"});
///   t.add_row({"0", "3.71", "3.80"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision floating point formatting ("12.34").
[[nodiscard]] std::string fmt_fixed(double v, int precision = 2);

/// Integer with thousands separators ("33,554,432").
[[nodiscard]] std::string fmt_group(long long v);

/// Bytes with binary unit suffix ("4.0 MiB").
[[nodiscard]] std::string fmt_bytes(unsigned long long bytes);

/// Bandwidth in GB/s (decimal) with two digits ("16.38 GB/s").
[[nodiscard]] std::string fmt_bandwidth(double bytes_per_second);

}  // namespace mcopt::util
