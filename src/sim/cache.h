#pragma once
// Set-associative cache model with true-LRU replacement, line granularity.
//
// Used for both the per-core write-through L1D and the shared write-back L2.
// The model tracks contents and dirtiness only; timing lives in the chip
// model. Power-of-two geometry is enforced so set indexing is mask-based,
// which is also what produces the paper's cache-thrashing effects for
// power-of-two array strides (Sect. 2.4).

#include <cstdint>
#include <vector>

#include "arch/address_map.h"
#include "arch/topology.h"

namespace mcopt::sim {

/// Result of a cache access.
struct CacheOutcome {
  bool hit = false;
  /// Line-granular address of a dirty line this access evicted (write-back
  /// caches only); kNoEviction if none.
  arch::Addr writeback_line = kNoEviction;

  static constexpr arch::Addr kNoEviction = ~arch::Addr{0};
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits + misses; }
  [[nodiscard]] double miss_ratio() const noexcept {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) / static_cast<double>(accesses());
  }
};

/// Content/LRU model of one cache. Thread-compatible, not thread-safe: the
/// simulator serializes accesses through its event loop.
class Cache {
 public:
  enum class WritePolicy {
    kWriteBack,     ///< allocate on store miss, track dirty, evict with WB
    kWriteThrough,  ///< no allocate on store miss, never dirty (T2 L1D)
  };

  /// `index_hash` enables T2-style L2 index hashing: higher address bits are
  /// XOR-folded into the set index, which defuses the catastrophic set
  /// conflicts otherwise caused by power-of-two array strides (the real T2
  /// ships with L2 index hashing enabled; see the OpenSPARC T2 spec).
  Cache(const arch::CacheGeometry& geometry, WritePolicy policy,
        bool index_hash = false);

  /// Performs a load of the line containing `addr`. On miss the line is
  /// allocated (fill) and the LRU victim evicted.
  CacheOutcome load(arch::Addr addr);

  /// Performs a store to the line containing `addr`.
  /// Write-back: allocates on miss (the RFO read is the caller's job via the
  /// returned miss), marks dirty. Write-through: updates on hit, bypasses on
  /// miss (outcome.hit reports presence).
  CacheOutcome store(arch::Addr addr);

  /// True if the line containing addr is resident (no LRU update).
  [[nodiscard]] bool probe(arch::Addr addr) const;

  /// Drops all contents and (optionally) statistics.
  void clear(bool clear_stats = true);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const arch::CacheGeometry& geometry() const noexcept { return geo_; }

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t lru = 0;  ///< higher = more recently used
    bool dirty = false;

    static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  };

  /// Returns the way holding `tag` in `set`, or nullptr.
  Way* find(std::size_t set, std::uint64_t tag);
  /// LRU victim way in `set`.
  Way& victim(std::size_t set);
  void touch(Way& way);

  [[nodiscard]] std::uint64_t line_of(arch::Addr addr) const noexcept {
    return addr >> line_bits_;
  }
  [[nodiscard]] std::size_t set_of(std::uint64_t line) const noexcept {
    if (!index_hash_) return static_cast<std::size_t>(line) & set_mask_;
    // XOR-fold the bits above the index into the index.
    std::uint64_t folded = line;
    std::uint64_t acc = 0;
    while (folded != 0) {
      acc ^= folded;
      folded >>= set_bits_;
    }
    return static_cast<std::size_t>(acc) & set_mask_;
  }
  /// With index hashing the set no longer partitions the line bits, so the
  /// tag is the full line index (uniqueness within a set is what matters).
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const noexcept {
    return index_hash_ ? line : line >> set_bits_;
  }
  [[nodiscard]] arch::Addr line_addr(std::size_t set, std::uint64_t tag) const noexcept {
    return index_hash_ ? tag << line_bits_
                       : ((tag << set_bits_) | set) << line_bits_;
  }

  arch::CacheGeometry geo_;
  WritePolicy policy_;
  bool index_hash_ = false;
  unsigned line_bits_ = 0;
  unsigned set_bits_ = 0;
  std::size_t set_mask_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  ///< num_sets * associativity, set-major
  CacheStats stats_;
};

}  // namespace mcopt::sim
