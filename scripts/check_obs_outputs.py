#!/usr/bin/env python3
"""Validate the observability artifacts a bench run emits.

Checks (stdlib only, no third-party deps):
  --trace     Chrome trace_event JSON: parses, events carry ph/name/ts,
              timestamps are non-decreasing, every B has a matching E per
              (pid, tid), and the footer accounting is present.
  --metrics   Prometheus text exposition: expected metric families exist,
              histogram buckets are cumulative and end with +Inf == _count.
  --timeline  Per-controller timeline CSV: header shape, rows march forward
              without overlap per series, utilization stays in [0, 1].
  --recovery-json
              BENCH_recovery.json from bench/recovery: required keys, the
              fail-back contract (post-recovery tail >= 0.95x the full-
              healthy model AND above the survivor plateau's tail), and a
              bounded replan count on every flap row.
  --recovery-csv
              The flap-sweep CSV from bench/recovery: schema stamp, column
              shape, replans <= budget and bounded=true per row.
  --durability-json
              BENCH_durability.json from bench/durability: required keys,
              reconciled=true with the restarted per-tenant ledger equal to
              the reference byte-for-byte, the attribution rows (when
              present) byte-exact against the ledger, and (unless the run
              skipped the overhead phase) journal overhead under its bound.
  --attribution-json
              obs::Attribution export: cell taxonomy (charge kinds, shed
              reasons only on sheds), and the per-tenant / per-charge
              rollups recomputed from the cells must match the embedded
              rollup tables exactly.
  --burn-json
              obs::SloMonitor export: window/threshold config sanity and
              per-entry invariants (missed <= total, burns >= 0, alerts
              only where misses exist).

Exit code 0 when every provided artifact passes; 1 with a message per
failure otherwise.
"""

import argparse
import csv
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def check_trace(path, expect_events):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
        return
    if expect_events and not events:
        fail(f"{path}: traceEvents is empty (was tracing enabled?)")
        return
    prev_ts = -1.0
    opens = {}
    for i, ev in enumerate(events):
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} lacks '{key}': {ev}")
                return
        ts = float(ev["ts"])
        if ts < prev_ts:
            fail(f"{path}: event {i} ts {ts} < previous {prev_ts}")
            return
        prev_ts = ts
        lane = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            opens.setdefault(lane, []).append(ev["name"])
        elif ev["ph"] == "E":
            if not opens.get(lane):
                fail(f"{path}: event {i} is an E with no open B on {lane}")
                return
            opens[lane].pop()
    for lane, stack in opens.items():
        if stack:
            fail(f"{path}: unclosed spans {stack} on {lane}")
            return
    other = doc.get("otherData", {})
    for key in ("recorded", "dropped"):
        if key not in other:
            fail(f"{path}: otherData lacks '{key}'")
            return
    print(f"ok: {path}: {len(events)} events, "
          f"recorded={other['recorded']} dropped={other['dropped']}")


def check_metrics(path, families):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"{path}: {e}")
        return
    for family in families:
        if family not in text:
            fail(f"{path}: expected metric family '{family}' is absent")
    # Histogram sanity: cumulative buckets, +Inf bucket equals _count.
    buckets = {}  # name -> list of counts in order of appearance
    counts = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if "_bucket{le=" in name:
            base = name.split("_bucket{le=")[0]
            buckets.setdefault(base, []).append(float(value))
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = float(value)
    for base, series in buckets.items():
        if any(b > a for a, b in zip(series[1:], series)):
            fail(f"{path}: histogram '{base}' buckets are not cumulative: "
                 f"{series}")
        if base in counts and series and series[-1] != counts[base]:
            fail(f"{path}: histogram '{base}' +Inf bucket {series[-1]} != "
                 f"_count {counts[base]}")
    print(f"ok: {path}: {len(buckets)} histogram families, "
          f"{len(text.splitlines())} lines")


CSV_SCHEMA_VERSION = "mcopt-csv v2"


def check_timeline(path):
    try:
        with open(path, newline="", encoding="utf-8") as f:
            lines = f.read().splitlines(keepends=True)
    except OSError as e:
        fail(f"{path}: {e}")
        return
    if not lines:
        fail(f"{path}: empty timeline CSV")
        return
    # Line 1 must carry the writer's schema stamp: a file written under a
    # different column convention is rejected up front instead of misread.
    if not lines[0].startswith(f"# {CSV_SCHEMA_VERSION}"):
        fail(f"{path}: missing '# {CSV_SCHEMA_VERSION}' schema header "
             f"(got: {lines[0].strip()!r})")
        return
    rows = list(csv.reader(lines[1:]))
    if not rows:
        fail(f"{path}: schema header but no CSV header row")
        return
    header = rows[0]
    if header[:4] != ["label", "sample", "begin_cycle", "end_cycle"]:
        fail(f"{path}: unexpected header {header[:4]}")
        return
    mc_cols = [c for c in header[4:] if c.startswith("mc")]
    if not mc_cols or len(mc_cols) != len(header) - 4:
        fail(f"{path}: controller columns malformed: {header[4:]}")
        return
    if len(rows) < 2:
        fail(f"{path}: header but no samples (cadence too coarse?)")
        return
    prev_end = {}
    for i, row in enumerate(rows[1:], start=2):
        label, _, begin, end = row[0], row[1], int(row[2]), int(row[3])
        if end <= begin:
            fail(f"{path}:{i}: empty interval [{begin}, {end})")
            return
        # Rows must march forward without overlapping; gaps are legal (a
        # supervised loop charges migration/scrub cycles between simulated
        # slices, so stitched timelines skip those stretches).
        if label in prev_end and begin < prev_end[label]:
            fail(f"{path}:{i}: series '{label}' overlaps: row starts at "
                 f"{begin} before previous end {prev_end[label]}")
            return
        prev_end[label] = end
        for col, cell in zip(mc_cols, row[4:]):
            if cell == "":  # padding for narrower series
                continue
            util = float(cell)
            if not 0.0 <= util <= 1.0 + 1e-9:
                fail(f"{path}:{i}: {col} utilization {util} outside [0, 1]")
                return
    print(f"ok: {path}: {len(rows) - 1} samples, "
          f"{len(mc_cols)} controllers, {len(prev_end)} series")


RECOVERY_OUTAGE_KEYS = (
    "schedule", "recovery_gbs", "plateau_gbs", "unsupervised_gbs",
    "tail_gbs", "plateau_tail_gbs", "full_model_gbs", "convergence",
    "probes", "probe_failures", "recoveries", "readmissions", "replans",
    "belief_stale_windows", "crc_ranges_verified",
    "probe_cycle_share", "migration_cycle_share",
)

RECOVERY_FLAP_KEYS = (
    "period", "events", "replans", "probes", "recoveries", "readmissions",
    "budget", "supervised_gbs", "bounded",
)


def check_recovery_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    for key in ("bench", "sockets", "n", "threads_per_socket", "slices",
                "healthy_gbs", "outage_and_return", "flap_sweep", "metrics"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
            return
    if doc["bench"] != "recovery":
        fail(f"{path}: bench is {doc['bench']!r}, expected 'recovery'")
        return
    outage = doc["outage_and_return"]
    for key in RECOVERY_OUTAGE_KEYS:
        if key not in outage:
            fail(f"{path}: outage_and_return lacks '{key}'")
            return
    # The fail-back contract: the post-recovery tail must converge to the
    # full-healthy analytic model and beat the survivor plateau's tail —
    # otherwise fail-back bought nothing over staying packed.
    if outage["recoveries"] < 1 or outage["readmissions"] < 1:
        fail(f"{path}: outage run never recovered "
             f"(recoveries={outage['recoveries']} "
             f"readmissions={outage['readmissions']})")
    if outage["convergence"] < 0.95:
        fail(f"{path}: tail convergence {outage['convergence']} < 0.95 of "
             f"the full-healthy model")
    if outage["tail_gbs"] <= outage["plateau_tail_gbs"]:
        fail(f"{path}: recovered tail {outage['tail_gbs']} does not beat "
             f"the survivor plateau tail {outage['plateau_tail_gbs']}")
    if outage["crc_ranges_verified"] < 1:
        fail(f"{path}: no CRC-verified shard moves in the outage run")
    flaps = doc["flap_sweep"]
    if not isinstance(flaps, list) or not flaps:
        fail(f"{path}: flap_sweep is empty")
        return
    for i, row in enumerate(flaps):
        for key in RECOVERY_FLAP_KEYS:
            if key not in row:
                fail(f"{path}: flap_sweep[{i}] lacks '{key}'")
                return
        if not row["bounded"] or row["replans"] > row["budget"]:
            fail(f"{path}: flap_sweep[{i}] blew the replan budget: "
                 f"replans={row['replans']} budget={row['budget']} "
                 f"bounded={row['bounded']}")
    counters = doc["metrics"].get("counters", {})
    if counters.get("mcopt_supervisor_probes_total", 0) < 1:
        fail(f"{path}: metrics counter mcopt_supervisor_probes_total "
             f"never incremented")
    if not FAILURES:
        print(f"ok: {path}: convergence={outage['convergence']}, "
              f"{len(flaps)} flap rows, "
              f"{outage['crc_ranges_verified']} CRC-verified moves")


def check_recovery_csv(path):
    try:
        with open(path, newline="", encoding="utf-8") as f:
            lines = f.read().splitlines(keepends=True)
    except OSError as e:
        fail(f"{path}: {e}")
        return
    if not lines or not lines[0].startswith(f"# {CSV_SCHEMA_VERSION}"):
        fail(f"{path}: missing '# {CSV_SCHEMA_VERSION}' schema header")
        return
    rows = list(csv.reader(lines[1:]))
    if not rows or sorted(rows[0]) != sorted(RECOVERY_FLAP_KEYS):
        fail(f"{path}: unexpected header "
             f"{rows[0] if rows else '(none)'}; "
             f"expected the columns {sorted(RECOVERY_FLAP_KEYS)}")
        return
    if len(rows) < 2:
        fail(f"{path}: header but no flap rows")
        return
    col = {name: i for i, name in enumerate(rows[0])}
    for i, row in enumerate(rows[1:], start=2):
        if len(row) != len(RECOVERY_FLAP_KEYS):
            fail(f"{path}:{i}: {len(row)} columns, "
                 f"expected {len(RECOVERY_FLAP_KEYS)}")
            return
        replans = int(row[col["replans"]])
        budget = int(row[col["budget"]])
        if row[col["bounded"]] != "true" or replans > budget:
            fail(f"{path}:{i}: replan budget violated: replans={replans} "
                 f"budget={budget} bounded={row[col['bounded']]}")
            return
    print(f"ok: {path}: {len(rows) - 1} flap rows, budgets respected")


DURABILITY_KEYS = (
    "bench", "seed", "jobs", "kill_after_us", "reconciled",
    "acked_watermark", "journal_records", "replayed_submissions",
    "resubmitted", "completed_skipped", "sheds_replayed", "dropped_bytes",
    "tenants", "overhead", "metrics",
)

DURABILITY_TENANT_KEYS = (
    "tenant", "ref_completed", "ref_served_bytes", "ref_sheds",
    "completed", "served_bytes", "sheds",
)


def check_durability_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    for key in DURABILITY_KEYS:
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
            return
    if doc["bench"] != "durability":
        fail(f"{path}: bench is {doc['bench']!r}, expected 'durability'")
        return
    if not doc["reconciled"]:
        fail(f"{path}: kill-restart run did not reconcile")
    tenants = doc["tenants"]
    if not isinstance(tenants, list) or not tenants:
        fail(f"{path}: tenants table is empty")
        return
    for i, row in enumerate(tenants):
        for key in DURABILITY_TENANT_KEYS:
            if key not in row:
                fail(f"{path}: tenants[{i}] lacks '{key}'")
                return
        # The ledger contract, re-asserted on the artifact itself: the
        # restarted run's per-tenant ledger equals the uninterrupted
        # reference byte-for-byte.
        for field in ("completed", "served_bytes", "sheds"):
            if row[field] != row[f"ref_{field}"]:
                fail(f"{path}: tenants[{i}] {field} {row[field]} != "
                     f"reference {row[f'ref_{field}']}")
    # Attribution reconciliation rows (observability v2): every byte the
    # attribution ledger charged as served, and every shed event it
    # recorded, must match the authoritative per-tenant ledger exactly —
    # including across the SIGKILL/replay path.
    for i, row in enumerate(doc.get("attribution", [])):
        for key in ("tenant", "attr_served_bytes", "ledger_served_bytes",
                    "attr_shed_events", "ledger_sheds"):
            if key not in row:
                fail(f"{path}: attribution[{i}] lacks '{key}'")
                return
        if row["attr_served_bytes"] != row["ledger_served_bytes"]:
            fail(f"{path}: attribution[{i}] tenant {row['tenant']} served "
                 f"bytes diverge: attribution {row['attr_served_bytes']} != "
                 f"ledger {row['ledger_served_bytes']}")
        if row["attr_shed_events"] != row["ledger_sheds"]:
            fail(f"{path}: attribution[{i}] tenant {row['tenant']} shed "
                 f"counts diverge: attribution {row['attr_shed_events']} != "
                 f"ledger {row['ledger_sheds']}")
    ovh = doc["overhead"]
    for key in ("plain_seconds", "durable_seconds", "overhead_pct",
                "ab_median_pct", "bound_pct", "pass"):
        if key not in ovh:
            fail(f"{path}: overhead lacks '{key}'")
            return
    # plain_seconds == 0 marks a --skip-overhead run; the bound only
    # applies when the phase actually ran.
    if ovh["plain_seconds"] > 0 and ovh["overhead_pct"] >= ovh["bound_pct"]:
        fail(f"{path}: journal overhead {ovh['overhead_pct']}% >= bound "
             f"{ovh['bound_pct']}%")
    counters = doc["metrics"].get("counters", {})
    for family in ("mcopt_journal_fsyncs_total",
                   "mcopt_durable_restarts_total"):
        if counters.get(family, 0) < 1:
            fail(f"{path}: metrics counter {family} never incremented")
    if not FAILURES:
        print(f"ok: {path}: reconciled, "
              f"{doc['replayed_submissions']} replayed / "
              f"{doc['resubmitted']} resubmitted / "
              f"{doc['completed_skipped']} completed-skipped, "
              f"overhead {ovh['overhead_pct']}%")


ATTRIBUTION_CHARGES = ("served", "shed", "scrub", "probe", "migration")

ATTRIBUTION_CELL_KEYS = (
    "tenant", "socket", "controller", "charge", "reason", "bytes", "count",
)


def check_attribution_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    for key in ("cells", "tenants", "totals"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
            return
    cells = doc["cells"]
    if not isinstance(cells, list):
        fail(f"{path}: cells is not a list")
        return
    # Recompute the rollups from the cells; the embedded tables must agree
    # exactly — a drift here means the exporter and the charge sites
    # disagree about what a byte is.
    tenant_served = {}
    tenant_sheds = {}
    totals = {}
    for i, cell in enumerate(cells):
        for key in ATTRIBUTION_CELL_KEYS:
            if key not in cell:
                fail(f"{path}: cells[{i}] lacks '{key}'")
                return
        charge = cell["charge"]
        if charge not in ATTRIBUTION_CHARGES:
            fail(f"{path}: cells[{i}] has unknown charge {charge!r}")
            return
        # charge_spread counts the event on the first controller cell only
        # (count=0 on the rest), so a zero count is legal — but a cell that
        # carries neither bytes nor count should not exist.
        if cell["bytes"] < 0 or cell["count"] < 0 or (
                cell["bytes"] == 0 and cell["count"] == 0):
            fail(f"{path}: cells[{i}] has bytes={cell['bytes']} "
                 f"count={cell['count']}")
            return
        if charge != "shed" and cell["reason"] != 0:
            fail(f"{path}: cells[{i}] carries shed reason {cell['reason']} "
                 f"on a {charge!r} charge")
            return
        t = cell["tenant"]
        if charge == "served":
            tenant_served[t] = tenant_served.get(t, 0) + cell["bytes"]
        elif charge == "shed":
            tenant_sheds[t] = tenant_sheds.get(t, 0) + cell["count"]
        tot = totals.setdefault(charge, [0, 0])
        tot[0] += cell["bytes"]
        tot[1] += cell["count"]
    for i, row in enumerate(doc["tenants"]):
        for key in ("tenant", "served_bytes", "sheds"):
            if key not in row:
                fail(f"{path}: tenants[{i}] lacks '{key}'")
                return
        t = row["tenant"]
        if row["served_bytes"] != tenant_served.get(t, 0):
            fail(f"{path}: tenant {t} rollup served_bytes "
                 f"{row['served_bytes']} != cell sum {tenant_served.get(t, 0)}")
        if row["sheds"] != tenant_sheds.get(t, 0):
            fail(f"{path}: tenant {t} rollup sheds {row['sheds']} != "
                 f"cell sum {tenant_sheds.get(t, 0)}")
    for charge, tot in doc["totals"].items():
        want = totals.get(charge, [0, 0])
        if [tot.get("bytes"), tot.get("count")] != want:
            fail(f"{path}: totals[{charge!r}] "
                 f"[{tot.get('bytes')}, {tot.get('count')}] != "
                 f"cell sums {want}")
    if not FAILURES:
        served = totals.get("served", [0, 0])
        print(f"ok: {path}: {len(cells)} cells, "
              f"{len(doc['tenants'])} tenants, "
              f"served {served[0]} bytes over {served[1]} charges, "
              f"rollups reconcile")


BURN_ENTRY_KEYS = (
    "tenant", "slo_class", "total", "missed", "fast_burn", "slow_burn",
    "alerts",
)


def check_burn_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    for key in ("target", "fast_window", "slow_window", "fast_alert",
                "slow_alert", "entries"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
            return
    if not 0.0 < doc["target"] < 1.0:
        fail(f"{path}: SLO target {doc['target']} outside (0, 1)")
    if doc["fast_window"] >= doc["slow_window"]:
        fail(f"{path}: fast_window {doc['fast_window']} >= slow_window "
             f"{doc['slow_window']}")
    entries = doc["entries"]
    if not isinstance(entries, list):
        fail(f"{path}: entries is not a list")
        return
    alerts = 0
    for i, row in enumerate(entries):
        for key in BURN_ENTRY_KEYS:
            if key not in row:
                fail(f"{path}: entries[{i}] lacks '{key}'")
                return
        if row["missed"] > row["total"]:
            fail(f"{path}: entries[{i}] missed {row['missed']} > total "
                 f"{row['total']}")
        if row["fast_burn"] < 0 or row["slow_burn"] < 0:
            fail(f"{path}: entries[{i}] negative burn rate")
        # Alerts are edge-triggered on misses: a row that never missed an
        # SLO cannot have fired one.
        if row["alerts"] > 0 and row["missed"] == 0:
            fail(f"{path}: entries[{i}] fired {row['alerts']} alerts with "
                 f"zero misses")
        alerts += row["alerts"]
    if not FAILURES:
        print(f"ok: {path}: {len(entries)} (tenant, class) entries, "
              f"{alerts} alerts fired, target={doc['target']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--metrics", help="Prometheus text exposition to validate")
    ap.add_argument("--timeline", help="per-controller timeline CSV to validate")
    ap.add_argument("--recovery-json",
                    help="BENCH_recovery.json from bench/recovery to validate")
    ap.add_argument("--recovery-csv",
                    help="flap-sweep CSV from bench/recovery to validate")
    ap.add_argument("--durability-json",
                    help="BENCH_durability.json from bench/durability to "
                         "validate")
    ap.add_argument("--attribution-json",
                    help="obs::Attribution JSON export to validate")
    ap.add_argument("--burn-json",
                    help="obs::SloMonitor burn-gauge JSON export to validate")
    ap.add_argument("--expect-family", action="append", default=[],
                    help="metric family that must appear (repeatable)")
    ap.add_argument("--allow-empty-trace", action="store_true",
                    help="do not fail on a trace with zero events")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.timeline
            or args.recovery_json or args.recovery_csv
            or args.durability_json or args.attribution_json
            or args.burn_json):
        ap.error("nothing to check: pass --trace, --metrics, --timeline, "
                 "--recovery-json, --recovery-csv, --durability-json, "
                 "--attribution-json, or --burn-json")
    if args.trace:
        check_trace(args.trace, expect_events=not args.allow_empty_trace)
    if args.metrics:
        families = args.expect_family or ["mcopt_bench_sim_runs_total"]
        check_metrics(args.metrics, families)
    if args.timeline:
        check_timeline(args.timeline)
    if args.recovery_json:
        check_recovery_json(args.recovery_json)
    if args.recovery_csv:
        check_recovery_csv(args.recovery_csv)
    if args.durability_json:
        check_durability_json(args.durability_json)
    if args.attribution_json:
        check_attribution_json(args.attribution_json)
    if args.burn_json:
        check_burn_json(args.burn_json)
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
