#include "trace/jacobi_program.h"

#include <gtest/gtest.h>

#include <set>

#include "kernels/jacobi.h"

namespace mcopt::trace {
namespace {

std::vector<sim::Access> drain(sim::AccessProgram& p) {
  std::vector<sim::Access> all;
  std::vector<sim::Access> buf(13);
  while (true) {
    const std::size_t got = p.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(), buf.begin() + got);
  }
  return all;
}

class JacobiProgramTest : public ::testing::Test {
 protected:
  JacobiProgramTest()
      : grids_(kernels::make_virtual_jacobi(arena_, 6, seg::LayoutSpec{})) {}

  VirtualArena arena_;
  kernels::VirtualJacobi grids_;
};

TEST_F(JacobiProgramTest, AccessCountMatchesFormula) {
  JacobiProgram p(grids_.grids(), {{0, 4}}, 1);  // all 4 interior rows
  EXPECT_EQ(p.total_accesses(), 4u * 4 * 5);
  EXPECT_EQ(drain(p).size(), 4u * 4 * 5);
}

TEST_F(JacobiProgramTest, FivePointPatternPerSite) {
  JacobiProgram p(grids_.grids(), {{0, 1}}, 1);  // row 1 only
  const auto all = drain(p);
  ASSERT_EQ(all.size(), 4u * 5);
  const auto& src = grids_.source;
  const auto& dst = grids_.dest;
  // First site: row 1, col 1.
  EXPECT_EQ(all[0].addr, src.address_of(0, 1));  // north
  EXPECT_EQ(all[1].addr, src.address_of(2, 1));  // south
  EXPECT_EQ(all[2].addr, src.address_of(1, 0));  // west
  EXPECT_EQ(all[3].addr, src.address_of(1, 2));  // east
  EXPECT_EQ(all[4].addr, dst.address_of(1, 1));  // store
  EXPECT_EQ(all[4].op, sim::Op::kStore);
  EXPECT_EQ(all[4].flops_before, 4);
  EXPECT_TRUE(all[0].begins_iteration);   // site start
  EXPECT_TRUE(all[5].begins_iteration);   // next site
  EXPECT_FALSE(all[1].begins_iteration);  // mid-site access
}

TEST_F(JacobiProgramTest, SweepsToggleGrids) {
  JacobiProgram p(grids_.grids(), {{0, 4}}, 2);
  const auto all = drain(p);
  ASSERT_EQ(all.size(), 2u * 4 * 4 * 5);
  // Sweep 0 stores into dest; sweep 1 stores into source.
  const sim::Access& store0 = all[4];
  const sim::Access& store1 = all[4 * 4 * 5 + 4];
  EXPECT_EQ(store0.addr, grids_.dest.address_of(1, 1));
  EXPECT_EQ(store1.addr, grids_.source.address_of(1, 1));
}

TEST_F(JacobiProgramTest, StoresStayInOwnedRows) {
  // Thread owning rows {2,3} must only write rows 2 and 3.
  JacobiProgram p(grids_.grids(), {{1, 3}}, 1);
  std::set<arch::Addr> row_starts;
  for (std::size_t r : {2, 3})
    for (std::size_t j = 1; j < 5; ++j)
      row_starts.insert(grids_.dest.address_of(r, j));
  for (const auto& a : drain(p))
    if (a.op == sim::Op::kStore) EXPECT_TRUE(row_starts.count(a.addr)) << a.addr;
}

TEST_F(JacobiProgramTest, RejectsBadGrids) {
  JacobiGrids bad;
  EXPECT_THROW(JacobiProgram(bad, {{0, 1}}, 1), std::invalid_argument);
  JacobiGrids small = grids_.grids();
  small.n = 2;
  EXPECT_THROW(JacobiProgram(small, {{0, 1}}, 1), std::invalid_argument);
}

TEST(JacobiWorkload, PartitionCoversInteriorExactlyOnce) {
  VirtualArena arena;
  const auto grids = kernels::make_virtual_jacobi(arena, 20, seg::LayoutSpec{});
  for (const auto& schedule :
       {sched::Schedule::static_block(), sched::Schedule::static_chunk(1)}) {
    auto wl = make_jacobi_workload(grids.grids(), 7, schedule, 1);
    ASSERT_EQ(wl.size(), 7u);
    std::uint64_t total = 0;
    for (const auto& p : wl) total += p->total_accesses();
    EXPECT_EQ(total, jacobi_updates_per_sweep(20) * 5);
  }
}

TEST(JacobiUpdates, Formula) {
  EXPECT_EQ(jacobi_updates_per_sweep(3), 1u);
  EXPECT_EQ(jacobi_updates_per_sweep(100), 98u * 98);
}

}  // namespace
}  // namespace mcopt::trace
