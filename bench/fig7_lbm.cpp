// Fig. 7 reproduction: D3Q19 lattice-Boltzmann performance (MLUPs/s) versus
// cubic domain size for the IJKv and IvJK data layouts, with and without
// outer-loop coalescing, at 32 and 64 threads.
//
// Paper shape (Sect. 2.4): IvJK clearly beats IJKv (the 19-distribution
// index right after x skews the streams across controllers automatically);
// domain sizes where the padded x-row length hits a multiple of 64 elements
// thrash unless padded; the sawtooth "modulo effect" from nz not dividing
// by the thread count disappears when the outer z,y loops are coalesced.

#include <algorithm>

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  util::Cli cli("Fig. 7: D3Q19 LBM MLUPs/s vs domain size and data layout");
  cli.flag("full", "N = 30..126 step 4 (default: a representative subset)")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  std::vector<std::size_t> sizes;
  if (cli.get_flag("full")) {
    for (std::size_t n = 30; n <= 126; n += 4) sizes.push_back(n);
    sizes.push_back(62);  // thrashing size (62+2 = 64-element rows)
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  } else {
    sizes = {30, 38, 46, 54, 62, 64, 70, 78, 94};
  }

  std::printf(
      "# D3Q19 LBM, one time step, MLUPs/s (scaled domain; paper sweeps "
      "64..320)\n# IJKv = structure-of-arrays; IvJK = v interleaved after x; "
      "fused = z,y coalesced\n# pad = IJKv with x padded by 2 elements\n\n");

  const std::vector<std::string> header = {
      "N",          "64T IJKv", "64T IJKv pad", "64T IvJK",
      "64T IvJK fused", "32T IvJK fused"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t n : sizes) {
    rows.push_back(
        {std::to_string(n),
         util::fmt_fixed(bench::lbm_mlups(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64), 2),
         util::fmt_fixed(
             bench::lbm_mlups(n, DataLayout::kIJKv, LoopOrder::kOuterZ, 64, 2), 2),
         util::fmt_fixed(bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kOuterZ, 64), 2),
         util::fmt_fixed(
             bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 64), 2),
         util::fmt_fixed(
             bench::lbm_mlups(n, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32), 2)});
    util::log_debug("N=" + std::to_string(n) + " done");
  }
  bench::emit(header, rows, cli.get_str("csv"));

  const double ijkv = bench::lbm_mlups(62, DataLayout::kIJKv, LoopOrder::kOuterZ, 64);
  const double ivjk = bench::lbm_mlups(62, DataLayout::kIvJK, LoopOrder::kOuterZ, 64);
  const double outer33 = bench::lbm_mlups(33, DataLayout::kIvJK, LoopOrder::kOuterZ, 32);
  const double fused33 =
      bench::lbm_mlups(33, DataLayout::kIvJK, LoopOrder::kCoalescedZY, 32);
  std::printf(
      "\nshape check: at the thrashing size N=62, IvJK/IJKv = %.2fx (paper: "
      "~2x); at N=33/32T, coalescing recovers %.2fx over outer-z (modulo "
      "effect).\n",
      ivjk / ijkv, fused33 / outer33);
  return 0;
}
