#include "runtime/service/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace mcopt::runtime::service {
namespace {

/// Service-door metrics, registered once; per-tenant breakdowns live in the
/// service's own counter table (a thousand-tenant soak would otherwise mint
/// a thousand instruments per family) — traces carry the tenant id instead.
struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& throttled;
  obs::Counter& breaker_rejected;
  obs::Counter& breaker_opens;
  obs::Counter& forwarded;
  obs::Gauge& tenants;

  static ServiceMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ServiceMetrics m{
        reg.counter("mcopt_service_jobs_submitted_total",
                    "Jobs presented at the service door"),
        reg.counter("mcopt_service_jobs_throttled_total",
                    "Door rejections: tenant over bandwidth quota"),
        reg.counter("mcopt_service_jobs_breaker_rejected_total",
                    "Door rejections: tenant circuit breaker open"),
        reg.counter("mcopt_service_breaker_opens_total",
                    "Tenant circuit-breaker open transitions"),
        reg.counter("mcopt_service_jobs_forwarded_total",
                    "Jobs past the door into the executor"),
        reg.gauge("mcopt_service_tenants", "Registered tenants")};
    return m;
  }
};

}  // namespace

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)), executor_([&] {
  // The WFQ pop policy is what makes per-tenant weights mean anything;
  // the service never runs strict-priority.
  cfg_.executor.queue_policy = exec::QueuePolicy::kWeightedFair;
  return cfg_.executor;
}()) {
  clock_hz_ = executor_.pricing().clock_hz();
}

TenantId Service::register_tenant(TenantConfig tc) {
  if (!(tc.weight > 0.0))
    throw std::invalid_argument("Service: tenant weight must be > 0");
  if (tc.quota_bytes_per_s < 0.0)
    throw std::invalid_argument("Service: tenant quota must be >= 0");
  if (!(tc.burst_seconds > 0.0))
    throw std::invalid_argument("Service: tenant burst_seconds must be > 0");
  if (static_cast<std::size_t>(tc.slo) >= kNumSloClasses)
    throw std::invalid_argument("Service: unknown SLO class");
  const std::lock_guard<std::mutex> guard(mu_);
  const auto id = static_cast<TenantId>(tenants_.size() + 1);
  // Per-tenant breaker jitter seed: deterministic, distinct per tenant.
  tenants_.emplace_back(std::move(tc), cfg_.executor.seed + 7919ULL * id);
  ServiceMetrics::get().tenants.set(static_cast<double>(tenants_.size()));
  return id;
}

unsigned Service::num_tenants() const {
  const std::lock_guard<std::mutex> guard(mu_);
  return static_cast<unsigned>(tenants_.size());
}

TenantSnapshot Service::tenant(TenantId id) const {
  const std::lock_guard<std::mutex> guard(mu_);
  if (id == 0 || id > tenants_.size())
    throw std::out_of_range("Service: unknown tenant id " + std::to_string(id));
  const Tenant& t = tenants_[id - 1];
  TenantSnapshot snap;
  snap.id = id;
  snap.config = t.cfg;
  snap.counters = t.counters;
  snap.breaker = t.breaker.state();
  snap.quota_level_bytes = t.quota_level_bytes;
  return snap;
}

arch::Cycles Service::healthy_service_cycles_locked(const exec::JobSpec& spec) {
  const auto key = std::make_tuple(spec.kind, spec.n, spec.iterations);
  const auto it = healthy_cycles_cache_.find(key);
  if (it != healthy_cycles_cache_.end()) return it->second;
  const auto quote = executor_.pricing().price(spec, sim::FaultSpec{});
  // Healthy pricing only fails if the chip has no controllers at all; fall
  // back to one cycle so the deadline stays finite rather than wedging.
  const arch::Cycles cycles = quote ? quote.value().service_cycles : 1;
  healthy_cycles_cache_.emplace(key, cycles);
  return cycles;
}

exec::SubmitResult Service::submit(TenantId tenant, exec::JobSpec spec) {
  return submit_impl(tenant, std::move(spec), /*forward=*/true);
}

exec::SubmitResult Service::submit_replay(TenantId tenant, exec::JobSpec spec,
                                          bool forward) {
  return submit_impl(tenant, std::move(spec), forward);
}

exec::SubmitResult Service::submit_impl(TenantId tenant, exec::JobSpec spec,
                                        bool forward) {
  using exec::ShedReason;
  ServiceMetrics& m = ServiceMetrics::get();
  const std::uint64_t bytes = exec::PricingModel::traffic_bytes(spec);

  const std::lock_guard<std::mutex> guard(mu_);
  if (tenant == 0 || tenant > tenants_.size())
    throw std::out_of_range("Service: unknown tenant id " +
                            std::to_string(tenant));
  Tenant& t = tenants_[tenant - 1];
  door_clock_ = std::max(door_clock_, spec.arrival);
  const arch::Cycles now = door_clock_;

  ++t.counters.submitted;
  t.counters.offered_bytes += bytes;
  m.submitted.inc();
  obs::trace_instant("svc.submit", "service", tenant, spec.arrival);
  // Causal chain root: every submission gets a trace id at the door (jobs
  // arriving with one — durable replays — keep it; the chain must survive
  // the restart). The flow-start arrow is what obs_query stitches from.
  if (spec.trace_id == 0) spec.trace_id = obs::next_trace_id();
  obs::trace_flow_start("job.flow.submit", "causal", spec.trace_id, tenant);

  // Door rejections: typed, O(1), and invisible to the executor — neither
  // its admission projection nor its report log learns the job existed.
  const auto reject = [&](bool breaker_hold) {
    if (breaker_hold) {
      ++t.counters.breaker_rejected;
      m.breaker_rejected.inc();
      obs::trace_instant("svc.breaker.reject", "service", tenant, now);
    } else {
      ++t.counters.throttled;
      m.throttled.inc();
      obs::trace_instant("svc.throttle", "service", tenant, now);
    }
    t.counters.door_shed_bytes += bytes;
    obs::trace_flow_end("job.flow.door-shed", "causal", spec.trace_id, tenant);
    // A door shed never reached pricing, so there is no plan set to spread
    // the bytes over: controller -1 is the "no placement" cell.
    obs::Attribution::instance().charge(
        tenant, -1, obs::Charge::kShed,
        static_cast<std::uint32_t>(ShedReason::kTenantThrottled), bytes);
    exec::SubmitResult out;
    out.accepted = false;
    out.rejected = ShedReason::kTenantThrottled;
    return out;
  };

  if (!t.breaker.allow(now)) return reject(/*breaker_hold=*/true);

  if (t.cfg.quota_bytes_per_s > 0.0) {
    const double rate_per_cycle = t.cfg.quota_bytes_per_s / clock_hz_;
    const double depth = t.cfg.quota_bytes_per_s * t.cfg.burst_seconds;
    t.quota_level_bytes =
        std::min(depth, t.quota_level_bytes +
                            static_cast<double>(now - t.last_refill) *
                                rate_per_cycle);
    t.last_refill = now;
    if (static_cast<double>(bytes) > t.quota_level_bytes) {
      const auto before = t.breaker.state();
      t.breaker.record_failure(now);
      if (before != util::CircuitBreaker::State::kOpen &&
          t.breaker.state() == util::CircuitBreaker::State::kOpen) {
        ++t.counters.breaker_opens;
        m.breaker_opens.inc();
        obs::trace_instant("svc.breaker.open", "service", tenant, now);
        util::log_info("service: breaker opened tenant=" +
                       std::to_string(tenant) + " name=" + t.cfg.name +
                       " now=" + std::to_string(now));
      }
      return reject(/*breaker_hold=*/false);
    }
    t.quota_level_bytes -= static_cast<double>(bytes);
  }
  // Within quota: the half-open probe (if this was one) succeeded, and any
  // closed-state failure streak is forgiven — throttles must be
  // *consecutive* to open the breaker.
  t.breaker.record_success();

  spec.tenant = tenant;
  spec.fair_weight = t.cfg.weight;
  const SloPolicy& pol = cfg_.slo[static_cast<std::size_t>(t.cfg.slo)];
  spec.priority = pol.priority;
  if (!(cfg_.allow_explicit_deadlines && spec.deadline != exec::kNoDeadline)) {
    spec.deadline =
        pol.deadline_slack > 0.0
            ? now + pol.deadline_floor +
                  static_cast<arch::Cycles>(std::ceil(
                      static_cast<double>(
                          healthy_service_cycles_locked(spec)) *
                      pol.deadline_slack))
            : exec::kNoDeadline;
  }

  ++t.counters.forwarded;
  t.counters.forwarded_bytes += bytes;
  m.forwarded.inc();
  if (!forward) {
    // Replay of a job whose executor outcome is already on record: the door
    // state advanced exactly as the original run's did; the caller applies
    // the journaled outcome (including the accepted counter) itself.
    exec::SubmitResult out;
    out.accepted = true;
    return out;
  }
  const exec::SubmitResult res = executor_.submit(spec);
  if (res.accepted) ++t.counters.accepted;
  return res;
}

void Service::credit_replayed_accept(TenantId tenant) {
  const std::lock_guard<std::mutex> guard(mu_);
  if (tenant == 0 || tenant > tenants_.size())
    throw std::out_of_range("Service: unknown tenant id " +
                            std::to_string(tenant));
  ++tenants_[tenant - 1].counters.accepted;
}

DoorSnapshot Service::snapshot_door() const {
  const std::lock_guard<std::mutex> guard(mu_);
  DoorSnapshot snap;
  snap.door_clock = door_clock_;
  snap.tenants.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    DoorTenantState s;
    s.counters = t.counters;
    s.breaker = t.breaker.snapshot();
    s.quota_level_bytes = t.quota_level_bytes;
    s.last_refill = t.last_refill;
    snap.tenants.push_back(s);
  }
  return snap;
}

util::Status Service::restore_door(const DoorSnapshot& snap) {
  const std::lock_guard<std::mutex> guard(mu_);
  if (snap.tenants.size() != tenants_.size())
    return util::Status::failure(
        "Service: door snapshot carries " +
        std::to_string(snap.tenants.size()) + " tenants, " +
        std::to_string(tenants_.size()) + " are registered");
  door_clock_ = snap.door_clock;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    const DoorTenantState& s = snap.tenants[i];
    t.counters = s.counters;
    t.breaker.restore(s.breaker);
    t.quota_level_bytes = s.quota_level_bytes;
    t.last_refill = s.last_refill;
  }
  return util::Status{};
}

std::vector<TenantSummary> Service::summarize() const {
  std::vector<TenantSummary> out;
  std::vector<std::vector<double>> sojourn_ms;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    out.reserve(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      TenantSummary s;
      s.id = static_cast<TenantId>(i + 1);
      s.name = tenants_[i].cfg.name;
      s.weight = tenants_[i].cfg.weight;
      s.slo = tenants_[i].cfg.slo;
      s.counters = tenants_[i].counters;
      out.push_back(std::move(s));
    }
  }
  sojourn_ms.resize(out.size());

  for (const exec::JobReport& r : executor_.reports()) {
    if (r.tenant == 0 || r.tenant > out.size()) continue;
    TenantSummary& s = out[r.tenant - 1];
    if (r.completed) {
      ++s.completed;
      s.goodput_bytes += r.quote.bytes;
      if (r.missed_deadline()) ++s.missed_deadlines;
      sojourn_ms[r.tenant - 1].push_back(
          static_cast<double>(r.finish - r.arrival) / clock_hz_ * 1e3);
    } else {
      s.exec_shed_bytes += r.quote.bytes;
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto& v = sojourn_ms[i];
    if (v.empty()) continue;
    std::sort(v.begin(), v.end());
    const auto at = [&](double p) {
      return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
    };
    out[i].p50_ms = at(0.50);
    out[i].p99_ms = at(0.99);
  }
  return out;
}

double Service::jain_index(const std::vector<double>& x) {
  double sum = 0.0, sumsq = 0.0;
  for (const double v : x) {
    sum += v;
    sumsq += v * v;
  }
  if (x.empty() || sumsq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sumsq);
}

}  // namespace mcopt::runtime::service
