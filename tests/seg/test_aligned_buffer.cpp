#include "seg/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace mcopt::seg {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
}

class AlignmentTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlignmentTest, BaseIsAligned) {
  const std::size_t align = GetParam();
  AlignedBuffer buf(1024, align);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % align, 0u);
  EXPECT_EQ(buf.size(), 1024u);
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignmentTest,
                         ::testing::Values(8, 64, 128, 512, 4096, 8192));

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer buf(4096, 64);
  for (std::size_t i = 0; i < buf.size(); ++i)
    ASSERT_EQ(std::to_integer<int>(buf.data()[i]), 0);
}

TEST(AlignedBuffer, SmallAlignmentRoundsUp) {
  AlignedBuffer buf(64, 1);
  EXPECT_GE(buf.alignment(), sizeof(void*));
  EXPECT_NE(buf.data(), nullptr);
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW(AlignedBuffer(64, 3), std::invalid_argument);
  EXPECT_THROW(AlignedBuffer(64, 0), std::invalid_argument);
  EXPECT_THROW(AlignedBuffer(64, 48), std::invalid_argument);
}

TEST(AlignedBuffer, ZeroBytesIsEmptyButValid) {
  AlignedBuffer buf(0, 64);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128, 64);
  std::byte* const p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer c(64, 8);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.size(), 128u);
}

}  // namespace
}  // namespace mcopt::seg
