#include "runtime/durable/state.h"

#include <cstring>

#include "obs/trace.h"
#include "runtime/checkpoint.h"
#include "runtime/durable/journal.h"

namespace mcopt::runtime::durable {
namespace {

using wire::get_u32;
using wire::get_u64;
using wire::put_f64;
using wire::put_u32;
using wire::put_u64;

/// Bounds-checked cursor over one section payload. Reads past the end set
/// ok=false and return zeros; callers check ok (and full consumption) once
/// at the end instead of threading Status through every field.
struct Reader {
  const std::uint8_t* p;
  std::size_t size;
  std::size_t at = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || size - at < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = get_u32(p + at);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const std::uint64_t v = get_u64(p + at);
    at += 8;
    return v;
  }
  double f64() {
    if (!need(8)) return 0.0;
    const double v = wire::get_f64(p + at);
    at += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return s;
  }
  [[nodiscard]] bool done() const { return ok && at == size; }
};

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- FaultSpec -------------------------------------------------------------
// Field-by-field binary, NOT describe()/parse(): the belief must round-trip
// bit-identically (derate factors are doubles feeding analytic pricing).

void put_fault_spec(std::vector<std::uint8_t>& out, const sim::FaultSpec& f) {
  put_u32(out, static_cast<std::uint32_t>(f.offline_controllers.size()));
  for (unsigned c : f.offline_controllers) put_u32(out, c);
  put_u32(out, static_cast<std::uint32_t>(f.derates.size()));
  for (const auto& d : f.derates) {
    put_u32(out, d.controller);
    put_f64(out, d.factor);
  }
  put_u32(out, static_cast<std::uint32_t>(f.slow_banks.size()));
  for (const auto& b : f.slow_banks) {
    put_u32(out, b.bank);
    put_u64(out, b.extra_busy);
  }
  put_u32(out, static_cast<std::uint32_t>(f.stragglers.size()));
  for (const auto& s : f.stragglers) {
    put_u32(out, s.thread);
    put_u64(out, s.extra_cycles);
  }
  put_u32(out, static_cast<std::uint32_t>(f.flips.size()));
  for (const auto& fl : f.flips) {
    put_u32(out, fl.controller);
    put_f64(out, fl.rate);
  }
  put_u32(out, static_cast<std::uint32_t>(f.offline_sockets.size()));
  for (unsigned s : f.offline_sockets) put_u32(out, s);
  put_u32(out, static_cast<std::uint32_t>(f.socket_derates.size()));
  for (const auto& d : f.socket_derates) {
    put_u32(out, d.socket);
    put_f64(out, d.factor);
  }
  put_u32(out, static_cast<std::uint32_t>(f.link_faults.size()));
  for (const auto& l : f.link_faults) {
    put_u32(out, l.a);
    put_u32(out, l.b);
    put_f64(out, l.factor);
    put_u32(out, l.offline ? 1 : 0);
  }
}

sim::FaultSpec get_fault_spec(Reader& r) {
  sim::FaultSpec f;
  const std::uint32_t n_off = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_off; ++i)
    f.offline_controllers.push_back(r.u32());
  const std::uint32_t n_der = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_der; ++i) {
    sim::FaultSpec::Derate d;
    d.controller = r.u32();
    d.factor = r.f64();
    f.derates.push_back(d);
  }
  const std::uint32_t n_banks = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_banks; ++i) {
    sim::FaultSpec::SlowBank b;
    b.bank = r.u32();
    b.extra_busy = r.u64();
    f.slow_banks.push_back(b);
  }
  const std::uint32_t n_strag = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_strag; ++i) {
    sim::FaultSpec::Straggler s;
    s.thread = r.u32();
    s.extra_cycles = r.u64();
    f.stragglers.push_back(s);
  }
  const std::uint32_t n_flips = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_flips; ++i) {
    sim::FaultSpec::BitFlip fl;
    fl.controller = r.u32();
    fl.rate = r.f64();
    f.flips.push_back(fl);
  }
  const std::uint32_t n_soff = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_soff; ++i)
    f.offline_sockets.push_back(r.u32());
  const std::uint32_t n_sder = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_sder; ++i) {
    sim::FaultSpec::SocketDerate d;
    d.socket = r.u32();
    d.factor = r.f64();
    f.socket_derates.push_back(d);
  }
  const std::uint32_t n_links = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_links; ++i) {
    sim::FaultSpec::LinkFault l;
    l.a = r.u32();
    l.b = r.u32();
    l.factor = r.f64();
    l.offline = r.u32() != 0;
    f.link_faults.push_back(l);
  }
  return f;
}

// --- Backoff / CircuitBreaker ---------------------------------------------

void put_backoff(std::vector<std::uint8_t>& out,
                 const util::Backoff::Snapshot& s) {
  put_f64(out, s.current);
  put_u32(out, s.retries);
  put_u64(out, s.ready_at);
  for (std::uint64_t w : s.rng) put_u64(out, w);
}

util::Backoff::Snapshot get_backoff(Reader& r) {
  util::Backoff::Snapshot s;
  s.current = r.f64();
  s.retries = r.u32();
  s.ready_at = r.u64();
  for (std::uint64_t& w : s.rng) w = r.u64();
  return s;
}

void put_breaker(std::vector<std::uint8_t>& out,
                 const util::CircuitBreaker::Snapshot& s) {
  put_backoff(out, s.backoff);
  put_u32(out, s.consecutive_failures);
  put_u32(out, s.state);
}

util::CircuitBreaker::Snapshot get_breaker(Reader& r) {
  util::CircuitBreaker::Snapshot s;
  s.backoff = get_backoff(r);
  s.consecutive_failures = r.u32();
  s.state = static_cast<std::uint8_t>(r.u32());
  return s;
}

// --- sections --------------------------------------------------------------

std::vector<std::uint8_t> encode_core(const StateImage& im) {
  std::vector<std::uint8_t> out;
  put_u64(out, im.covered_sequence);
  put_u64(out, im.max_submission_id);
  put_u64(out, im.door.door_clock);
  put_u32(out, static_cast<std::uint32_t>(im.door.tenants.size()));
  for (const service::DoorTenantState& t : im.door.tenants) {
    const service::TenantCounters& c = t.counters;
    put_u64(out, c.submitted);
    put_u64(out, c.throttled);
    put_u64(out, c.breaker_rejected);
    put_u64(out, c.forwarded);
    put_u64(out, c.accepted);
    put_u64(out, c.offered_bytes);
    put_u64(out, c.door_shed_bytes);
    put_u64(out, c.forwarded_bytes);
    put_u64(out, c.breaker_opens);
    put_f64(out, t.quota_level_bytes);
    put_u64(out, t.last_refill);
    put_breaker(out, t.breaker);
  }
  put_u64(out, im.clocks.arrival);
  put_u64(out, im.clocks.service_tail);
  put_u64(out, im.clocks.admit_tail);
  return out;
}

util::Status decode_core(const std::vector<std::uint8_t>& bytes,
                         StateImage& im) {
  Reader r{bytes.data(), bytes.size()};
  im.covered_sequence = r.u64();
  im.max_submission_id = r.u64();
  im.door.door_clock = r.u64();
  const std::uint32_t n_tenants = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n_tenants; ++i) {
    service::DoorTenantState t;
    service::TenantCounters& c = t.counters;
    c.submitted = r.u64();
    c.throttled = r.u64();
    c.breaker_rejected = r.u64();
    c.forwarded = r.u64();
    c.accepted = r.u64();
    c.offered_bytes = r.u64();
    c.door_shed_bytes = r.u64();
    c.forwarded_bytes = r.u64();
    c.breaker_opens = r.u64();
    t.quota_level_bytes = r.f64();
    t.last_refill = r.u64();
    t.breaker = get_breaker(r);
    im.door.tenants.push_back(t);
  }
  im.clocks.arrival = r.u64();
  im.clocks.service_tail = r.u64();
  im.clocks.admit_tail = r.u64();
  if (!r.done())
    return util::Status::failure(
        "durable state: core section is malformed (length/field mismatch)");
  return util::Status{};
}

std::vector<std::uint8_t> encode_ledger(const StateImage& im) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(im.ledger.size()));
  for (const TenantLedger& l : im.ledger) {
    put_u64(out, l.completed);
    put_u64(out, l.served_bytes);
    put_u64(out, l.sheds);
  }
  return out;
}

util::Status decode_ledger(const std::vector<std::uint8_t>& bytes,
                           StateImage& im) {
  Reader r{bytes.data(), bytes.size()};
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n; ++i) {
    TenantLedger l;
    l.completed = r.u64();
    l.served_bytes = r.u64();
    l.sheds = r.u64();
    im.ledger.push_back(l);
  }
  if (!r.done())
    return util::Status::failure(
        "durable state: ledger section is malformed (length/field mismatch)");
  return util::Status{};
}

std::vector<std::uint8_t> encode_node_supervisor(
    const NodeSupervisor::Snapshot& s) {
  std::vector<std::uint8_t> out;
  put_fault_spec(out, s.planned_against);
  put_fault_spec(out, s.pending_diag);
  put_str(out, s.pending_descr);
  put_u32(out, s.pending_count);
  put_u32(out, s.quiet_count);
  put_u32(out, s.replans);
  put_u32(out, s.suppressed);
  put_backoff(out, s.backoff);
  put_u32(out, static_cast<std::uint32_t>(s.gates.size()));
  for (const auto& g : s.gates) put_breaker(out, g);
  for (unsigned v : s.ramp_left) put_u32(out, v);
  for (double v : s.ramp_factor) put_f64(out, v);
  put_u32(out, s.probes);
  put_u32(out, s.probe_failures);
  put_u32(out, s.recoveries);
  put_u32(out, s.readmissions);
  return out;
}

util::Status decode_node_supervisor(const std::vector<std::uint8_t>& bytes,
                                    NodeSupervisor::Snapshot& s) {
  Reader r{bytes.data(), bytes.size()};
  s.planned_against = get_fault_spec(r);
  s.pending_diag = get_fault_spec(r);
  s.pending_descr = r.str();
  s.pending_count = r.u32();
  s.quiet_count = r.u32();
  s.replans = r.u32();
  s.suppressed = r.u32();
  s.backoff = get_backoff(r);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; r.ok && i < n; ++i)
    s.gates.push_back(get_breaker(r));
  for (std::uint32_t i = 0; r.ok && i < n; ++i)
    s.ramp_left.push_back(r.u32());
  for (std::uint32_t i = 0; r.ok && i < n; ++i)
    s.ramp_factor.push_back(r.f64());
  s.probes = r.u32();
  s.probe_failures = r.u32();
  s.recoveries = r.u32();
  s.readmissions = r.u32();
  if (!r.done())
    return util::Status::failure(
        "durable state: node-supervisor section is malformed "
        "(length/field mismatch)");
  return util::Status{};
}

}  // namespace

util::Status save_state(const std::string& path, const StateImage& image) {
  const obs::TraceSpan span("state.save", "journal", image.snapshot_id,
                            image.covered_sequence);
  if (image.ledger.size() != image.door.tenants.size())
    return util::Status::failure(
        "durable state: ledger covers " + std::to_string(image.ledger.size()) +
        " tenants, door has " + std::to_string(image.door.tenants.size()));
  Checkpoint ckpt;
  ckpt.kind = kDurableStateCheckpoint;
  ckpt.iteration = image.snapshot_id;
  ckpt.user[0] = kStateImageVersion;
  std::uint64_t flags = 0;
  if (image.has_node_supervisor) flags |= kStateFlagNodeSupervisor;
  if (image.has_attribution) flags |= kStateFlagAttribution;
  ckpt.user[1] = flags;
  ckpt.sections.push_back(encode_core(image));
  ckpt.sections.push_back(encode_ledger(image));
  if (image.has_node_supervisor)
    ckpt.sections.push_back(encode_node_supervisor(image.node_supervisor));
  if (image.has_attribution) ckpt.sections.push_back(image.attribution);
  return save_checkpoint(path, ckpt);
}

util::Expected<StateImage> load_state(const std::string& path) {
  using Result = util::Expected<StateImage>;
  const obs::TraceSpan span("state.load", "journal");
  auto loaded = load_checkpoint(path);
  if (!loaded) return Result::failure(loaded.error().message);
  const Checkpoint& ckpt = loaded.value();
  if (ckpt.kind != kDurableStateCheckpoint)
    return Result::failure("durable state: '" + path +
                           "' is not a durable-state snapshot (kind " +
                           std::to_string(ckpt.kind) + ")");
  const std::uint64_t version = ckpt.user[0];
  if (version < kStateImageMinVersion || version > kStateImageVersion)
    return Result::failure("durable state: '" + path + "' has image version " +
                           std::to_string(version) + "; this build reads " +
                           std::to_string(kStateImageMinVersion) + ".." +
                           std::to_string(kStateImageVersion));
  // v1 images used user[1] as a has-node-supervisor boolean; v2 made it a
  // section-flags bitmask. A v1 "1" decodes identically under the mask.
  const std::uint64_t flags = ckpt.user[1];
  const std::uint64_t known_flags =
      version >= 2 ? (kStateFlagNodeSupervisor | kStateFlagAttribution)
                   : kStateFlagNodeSupervisor;
  if ((flags & ~known_flags) != 0)
    return Result::failure("durable state: '" + path +
                           "' carries unknown section flags " +
                           std::to_string(flags & ~known_flags));
  const bool has_sup = (flags & kStateFlagNodeSupervisor) != 0;
  const bool has_attr = (flags & kStateFlagAttribution) != 0;
  const std::size_t want_sections =
      2u + (has_sup ? 1u : 0u) + (has_attr ? 1u : 0u);
  if (ckpt.sections.size() != want_sections)
    return Result::failure("durable state: '" + path + "' has " +
                           std::to_string(ckpt.sections.size()) +
                           " sections, expected " +
                           std::to_string(want_sections));
  StateImage im;
  im.snapshot_id = ckpt.iteration;
  im.has_node_supervisor = has_sup;
  im.has_attribution = has_attr;
  if (const util::Status s = decode_core(ckpt.sections[0], im); !s.ok())
    return Result::failure(s.error().message);
  if (const util::Status s = decode_ledger(ckpt.sections[1], im); !s.ok())
    return Result::failure(s.error().message);
  if (im.ledger.size() != im.door.tenants.size())
    return Result::failure(
        "durable state: '" + path + "' ledger covers " +
        std::to_string(im.ledger.size()) + " tenants, door section has " +
        std::to_string(im.door.tenants.size()));
  std::size_t next = 2;
  if (has_sup) {
    if (const util::Status s =
            decode_node_supervisor(ckpt.sections[next++], im.node_supervisor);
        !s.ok())
      return Result::failure(s.error().message);
  }
  // Attribution bytes stay opaque here: obs::Attribution::restore() owns the
  // format and reports its own typed refusals when the caller feeds it.
  if (has_attr) im.attribution = ckpt.sections[next++];
  return im;
}

}  // namespace mcopt::runtime::durable
