#include "runtime/supervised_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "arch/topology.h"
#include "kernels/jacobi.h"
#include "kernels/triad.h"
#include "obs/attribution.h"
#include "obs/trace.h"
#include "seg/planner.h"
#include "sim/analytic.h"
#include "trace/jacobi_program.h"
#include "util/log.h"

namespace mcopt::runtime {

namespace {

/// Picks the freshest *meaningful* utilization window out of a slice result:
/// the latest schedule epoch that is long enough to carry signal, falling
/// back to the whole slice. `global_begin` rebases onto the loop timeline.
Sample make_sample(const sim::SimResult& res, arch::Cycles global_begin);

/// Stitches one slice's controller timeline (slice-local cycles) onto the
/// global loop timeline.
void append_timeline(LoopResult& out, const sim::SimResult& res,
                     arch::Cycles slice_begin) {
  for (const obs::McSample& row : res.mc_timeline) {
    obs::McSample shifted = row;
    shifted.begin += slice_begin;
    shifted.end += slice_begin;
    out.mc_timeline.push_back(std::move(shifted));
  }
  out.mc_timeline_truncated =
      out.mc_timeline_truncated || res.mc_timeline_truncated;
}

Sample make_sample(const sim::SimResult& res, arch::Cycles global_begin) {
  Sample s;
  // Corruption is a whole-slice property: a flip anywhere in the slice must
  // reach the supervisor even if the utilization window is a later epoch.
  s.corrupted_reads = res.corrupted_reads;
  const arch::Cycles min_len =
      std::max<arch::Cycles>(1000, res.total_cycles / 20);
  for (auto it = res.epochs.rbegin(); it != res.epochs.rend(); ++it) {
    if (it->length() >= min_len) {
      s.begin = global_begin + it->begin;
      s.end = global_begin + it->end;
      s.mc_utilization = it->mc_utilization;
      return s;
    }
  }
  s.begin = global_begin;
  s.end = global_begin + res.total_cycles;
  s.mc_utilization = res.mc_utilization;
  return s;
}

arch::Cycles seconds_to_cycles(double seconds, double clock_ghz) {
  return static_cast<arch::Cycles>(std::ceil(seconds * clock_ghz * 1e9));
}

/// Charges one checksum-verify pass (read every live byte once) at `bw` to
/// the loop's cycle count — the simulated cost of SegmentGuard::verify plus
/// rebuild after the supervisor orders a scrub.
void charge_scrub(LoopResult& out, arch::Cycles& global, double live_bytes,
                  double bw, double ghz, const char* who) {
  ++out.scrubs;
  const arch::Cycles cost =
      bw > 0.0 ? seconds_to_cycles(live_bytes / bw, ghz) : 0;
  // Integrity scrubs read every live byte once: system work, charged to
  // tenant 0 with no placement (the verify walks all controllers).
  obs::Attribution::instance().charge(0, -1, obs::Charge::kScrub, 0,
                                      static_cast<std::uint64_t>(live_bytes));
  obs::trace_instant("loop.scrub", "loop", global, cost);
  global += cost;
  out.total_cycles += cost;
  out.scrub_cycles += cost;
  util::log_info(std::string(who) + ": scrub at=" + std::to_string(global) +
                 " cost=" + std::to_string(cost) + " cycles");
}

/// Analytic triad bandwidth for the given array bases under a fault belief.
double triad_analytic_bw(const std::vector<arch::Addr>& bases, unsigned threads,
                         const sim::SimConfig& sc, const arch::AddressMap& map,
                         const sim::FaultSpec& belief) {
  const std::vector<sim::AnalyticStream> logical = {
      {bases[0], true}, {bases[1], false}, {bases[2], false}, {bases[3], false}};
  const auto physical = sim::expand_rfo(logical);
  return sim::estimate_bandwidth(physical, threads, sc.calibration, map,
                                 sc.topology.clock_ghz, belief)
      .bandwidth;
}

/// Hypothetical triad bases under a stream plan (analytic probes only; the
/// probe base is period-aligned so only the planned offsets matter).
std::vector<arch::Addr> plan_probe_bases(const seg::StreamPlan& plan) {
  std::vector<arch::Addr> bases;
  bases.reserve(plan.offsets.size());
  for (const std::size_t off : plan.offsets)
    bases.push_back((arch::Addr{1} << 40) + off);
  return bases;
}

/// First interior source-row bases, one per concurrently running thread
/// (static,1: thread t's first row is 1 + t).
std::vector<arch::Addr> jacobi_front_bases(const trace::VirtualSegArray& src,
                                           std::size_t n, unsigned threads) {
  std::vector<arch::Addr> bases;
  const std::size_t rows = std::min<std::size_t>(threads, n - 2);
  for (std::size_t t = 0; t < rows; ++t)
    bases.push_back(src.segment_base(1 + t));
  return bases;
}

/// Analytic Jacobi bandwidth proxy: each concurrent thread contributes its
/// first source row as a read stream and the matching dest row as a write
/// stream — enough to expose row-shift aliasing to the lockstep model.
double jacobi_analytic_bw(const trace::VirtualSegArray& src,
                          const trace::VirtualSegArray& dst, std::size_t n,
                          unsigned threads, const sim::SimConfig& sc,
                          const arch::AddressMap& map,
                          const sim::FaultSpec& belief) {
  std::vector<sim::AnalyticStream> logical;
  const std::size_t rows = std::min<std::size_t>(threads, n - 2);
  for (std::size_t t = 0; t < rows; ++t) {
    logical.push_back({src.segment_base(1 + t), false});
    logical.push_back({dst.segment_base(1 + t), true});
  }
  const auto physical = sim::expand_rfo(logical);
  return sim::estimate_bandwidth(physical, static_cast<unsigned>(rows),
                                 sc.calibration, map, sc.topology.clock_ghz,
                                 belief)
      .bandwidth;
}

}  // namespace

util::Status LoopConfig::check() const {
  util::Status status;
  status.merge(sim.check());
  status.merge(detector.check());
  if (threads == 0) status.note("LoopConfig: threads must be >= 1");
  if (slices == 0) status.note("LoopConfig: slices must be >= 1");
  if (!(migration_safety >= 0.0) || !std::isfinite(migration_safety))
    status.note("LoopConfig: migration_safety must be finite and >= 0");
  if (sim.fault_schedule.has_relative())
    status.note("LoopConfig: fault schedule has unresolved percent bounds");
  return status;
}

LoopResult run_supervised_triad(trace::VirtualArena& arena,
                                std::vector<arch::Addr> bases, std::size_t n,
                                const LoopConfig& cfg) {
  cfg.check().throw_if_failed();
  if (bases.size() != 4)
    throw std::invalid_argument("run_supervised_triad: need 4 bases (A,B,C,D)");

  const arch::AddressMap map(cfg.sim.interleave);
  const double ghz = cfg.sim.topology.clock_ghz;
  Supervisor sup(cfg.detector, cfg.sim.interleave, cfg.seed);

  LoopResult out;
  arch::Cycles global = 0;
  Sample last_sample;

  for (unsigned slice = 0; slice < cfg.slices; ++slice) {
    const obs::TraceSpan slice_span("loop.slice", "loop", slice, global);
    sim::SimConfig sc = cfg.sim;
    sc.fault_schedule = cfg.sim.fault_schedule.shifted(global);
    auto wl = kernels::make_triad_workload(bases, n, cfg.threads,
                                           sched::Schedule::static_block(), 1);
    sim::Chip chip(sc, arch::equidistant_placement(cfg.threads, sc.topology));
    const sim::SimResult res = chip.run(wl);

    const arch::Cycles slice_begin = global;
    global += res.total_cycles;
    out.total_cycles += res.total_cycles;
    out.bytes += res.mem_read_bytes + res.mem_write_bytes;
    append_timeline(out, res, slice_begin);
    last_sample = make_sample(res, slice_begin);
    if (!cfg.supervise) continue;

    // Layout deficit under the current belief: candidate planner layout over
    // the believed-healthy set vs what we are running now.
    const sim::FaultSpec& belief = sup.planned_against();
    const auto believed_set = belief.surviving_controllers(cfg.sim.interleave);
    const double cur_bw =
        triad_analytic_bw(bases, cfg.threads, cfg.sim, map, belief);
    const double cand_bw = triad_analytic_bw(
        plan_probe_bases(seg::plan_stream_offsets(4, map, believed_set)),
        cfg.threads, cfg.sim, map, belief);
    const double gain = cur_bw > 0.0 ? cand_bw / cur_bw : 1.0;

    const Decision dec = sup.observe(last_sample, gain);
    if (dec.action == Action::kScrub) {
      charge_scrub(out, global, 4.0 * static_cast<double>(n) * 8.0, cur_bw,
                   ghz, "supervised_triad");
      continue;
    }
    if (dec.action != Action::kReplan) continue;

    // Break-even gate: price the copy at the post-migration bandwidth and
    // require the projected savings over the remaining sweeps to clear it
    // by the safety margin.
    const seg::StreamPlan plan = seg::plan_stream_offsets(4, map, dec.plan_set);
    const double bw_now =
        triad_analytic_bw(bases, cfg.threads, cfg.sim, map, dec.diagnosis);
    const double bw_new = triad_analytic_bw(
        plan_probe_bases(plan), cfg.threads, cfg.sim, map, dec.diagnosis);
    const unsigned remaining = cfg.slices - slice - 1;
    bool migrate = false;
    double mig_seconds = 0.0;
    if (remaining > 0 && bw_now > 0.0 && bw_new > bw_now) {
      const double rem_bytes = static_cast<double>(remaining) *
                               static_cast<double>(kernels::triad_actual_bytes(n));
      const double saved = rem_bytes / bw_now - rem_bytes / bw_new;
      // B, C, D copied out and back in; A is overwritten every sweep.
      const double mig_bytes = 3.0 * static_cast<double>(n) * 8.0 * 2.0;
      mig_seconds = mig_bytes / bw_new;
      migrate = saved * cfg.migration_safety >= mig_seconds;
    }
    if (!migrate) {
      ++out.declined;
      obs::trace_instant("loop.decline", "loop", global, 0);
      sup.abort(global);
      util::log_info("supervised_triad: migration declined at=" +
                     std::to_string(global) + " (gain does not cover copy)" +
                     " bw_now=" + std::to_string(bw_now) +
                     " bw_new=" + std::to_string(bw_new) +
                     " remaining=" + std::to_string(remaining) +
                     " mig_s=" + std::to_string(mig_seconds));
      continue;
    }

    for (std::size_t k = 0; k < bases.size(); ++k) {
      const std::size_t off = plan.offsets[k];
      bases[k] = arena.allocate(n * sizeof(double) + off, plan.base_align) + off;
    }
    const arch::Cycles mig_cycles = seconds_to_cycles(mig_seconds, ghz);
    obs::trace_instant("loop.migrate", "loop", global, mig_cycles);
    global += mig_cycles;
    out.total_cycles += mig_cycles;
    out.migration_cycles += mig_cycles;
    sup.commit(global);
    ++out.replans;
    out.replan_log.push_back({global, dec.plan_set, bases, mig_cycles});
    util::log_info("supervised_triad: migrated at=" + std::to_string(global) +
                   " cost=" + std::to_string(mig_cycles) + " cycles");
  }

  out.suppressed = sup.suppressed();
  out.final_diagnosis = cfg.supervise && !last_sample.mc_utilization.empty()
                            ? sup.diagnose(last_sample.mc_utilization)
                            : sim::FaultSpec{};
  out.final_mc_utilization = last_sample.mc_utilization;
  out.final_bases = bases;
  out.seconds = arch::cycles_to_seconds(out.total_cycles, ghz);
  out.bandwidth =
      out.seconds > 0.0 ? static_cast<double>(out.bytes) / out.seconds : 0.0;
  return out;
}

LoopResult run_supervised_jacobi(trace::VirtualArena& arena, std::size_t n,
                                 const seg::LayoutSpec& initial_spec,
                                 const LoopConfig& cfg) {
  cfg.check().throw_if_failed();
  if (n < 3)
    throw std::invalid_argument("run_supervised_jacobi: grid too small");

  const arch::AddressMap map(cfg.sim.interleave);
  const double ghz = cfg.sim.topology.clock_ghz;
  const sched::Schedule row_schedule = sched::Schedule::static_chunk(1);
  Supervisor sup(cfg.detector, cfg.sim.interleave, cfg.seed);

  kernels::VirtualJacobi grids = kernels::make_virtual_jacobi(arena, n, initial_spec);
  bool flipped = false;  // which toggle grid currently holds the state

  LoopResult out;
  arch::Cycles global = 0;
  Sample last_sample;

  for (unsigned slice = 0; slice < cfg.slices; ++slice) {
    const obs::TraceSpan slice_span("loop.slice", "loop", slice, global);
    const trace::VirtualSegArray& src = flipped ? grids.dest : grids.source;
    const trace::VirtualSegArray& dst = flipped ? grids.source : grids.dest;
    sim::SimConfig sc = cfg.sim;
    sc.fault_schedule = cfg.sim.fault_schedule.shifted(global);
    auto wl = trace::make_jacobi_workload(trace::JacobiGrids{&src, &dst, n},
                                          cfg.threads, row_schedule, 1);
    sim::Chip chip(sc, arch::equidistant_placement(cfg.threads, sc.topology));
    const sim::SimResult res = chip.run(wl);

    const arch::Cycles slice_begin = global;
    global += res.total_cycles;
    out.total_cycles += res.total_cycles;
    out.bytes += res.mem_read_bytes + res.mem_write_bytes;
    append_timeline(out, res, slice_begin);
    last_sample = make_sample(res, slice_begin);
    flipped = !flipped;
    if (!cfg.supervise) continue;

    const sim::FaultSpec& belief = sup.planned_against();
    const auto believed_set = belief.surviving_controllers(cfg.sim.interleave);
    const seg::RowPlan believed_plan =
        believed_set.size() == cfg.sim.interleave.num_controllers()
            ? seg::plan_row_layout(map)
            : seg::plan_row_layout(map, believed_set);
    // Candidate grids live in a scratch address range: analytic probes only.
    trace::VirtualArena probe(arch::Addr{1} << 44);
    const kernels::VirtualJacobi cand =
        kernels::make_virtual_jacobi(probe, n, believed_plan.spec());
    const double cur_bw = jacobi_analytic_bw(src, dst, n, cfg.threads, cfg.sim,
                                             map, belief);
    const double cand_bw = jacobi_analytic_bw(cand.source, cand.dest, n,
                                              cfg.threads, cfg.sim, map, belief);
    const double gain = cur_bw > 0.0 ? cand_bw / cur_bw : 1.0;

    const Decision dec = sup.observe(last_sample, gain);
    if (dec.action == Action::kScrub) {
      charge_scrub(out, global,
                   2.0 * static_cast<double>(n) * static_cast<double>(n) * 8.0,
                   cur_bw, ghz, "supervised_jacobi");
      continue;
    }
    if (dec.action != Action::kReplan) continue;

    const seg::RowPlan plan =
        dec.plan_set.size() == cfg.sim.interleave.num_controllers()
            ? seg::plan_row_layout(map)
            : seg::plan_row_layout(map, dec.plan_set);
    trace::VirtualArena gate_probe(arch::Addr{1} << 45);
    const kernels::VirtualJacobi gate_cand =
        kernels::make_virtual_jacobi(gate_probe, n, plan.spec());
    const double bw_now = jacobi_analytic_bw(src, dst, n, cfg.threads, cfg.sim,
                                             map, dec.diagnosis);
    const double bw_new =
        jacobi_analytic_bw(gate_cand.source, gate_cand.dest, n, cfg.threads,
                           cfg.sim, map, dec.diagnosis);
    const unsigned remaining = cfg.slices - slice - 1;
    bool migrate = false;
    double mig_seconds = 0.0;
    if (remaining > 0 && bw_now > 0.0 && bw_new > bw_now && slice + 1 > 0) {
      const double bytes_per_sweep =
          static_cast<double>(out.bytes) / static_cast<double>(slice + 1);
      const double rem_bytes = static_cast<double>(remaining) * bytes_per_sweep;
      const double saved = rem_bytes / bw_now - rem_bytes / bw_new;
      // Both toggle grids move: read out + write back.
      const double mig_bytes =
          2.0 * static_cast<double>(n) * static_cast<double>(n) * 8.0 * 2.0;
      mig_seconds = mig_bytes / bw_new;
      migrate = saved * cfg.migration_safety >= mig_seconds;
    }
    if (!migrate) {
      ++out.declined;
      obs::trace_instant("loop.decline", "loop", global, 0);
      sup.abort(global);
      util::log_info("supervised_jacobi: migration declined at=" +
                     std::to_string(global) + " (gain does not cover copy)");
      continue;
    }

    grids = kernels::make_virtual_jacobi(arena, n, plan.spec());
    flipped = false;  // fresh grids: state lives in `source` again
    const arch::Cycles mig_cycles = seconds_to_cycles(mig_seconds, ghz);
    obs::trace_instant("loop.migrate", "loop", global, mig_cycles);
    global += mig_cycles;
    out.total_cycles += mig_cycles;
    out.migration_cycles += mig_cycles;
    sup.commit(global);
    ++out.replans;
    out.replan_log.push_back({global, dec.plan_set,
                              jacobi_front_bases(grids.source, n, cfg.threads),
                              mig_cycles});
    util::log_info("supervised_jacobi: migrated at=" + std::to_string(global) +
                   " cost=" + std::to_string(mig_cycles) + " cycles");
  }

  out.suppressed = sup.suppressed();
  out.final_diagnosis = cfg.supervise && !last_sample.mc_utilization.empty()
                            ? sup.diagnose(last_sample.mc_utilization)
                            : sim::FaultSpec{};
  out.final_mc_utilization = last_sample.mc_utilization;
  out.final_bases = jacobi_front_bases(flipped ? grids.dest : grids.source, n,
                                       cfg.threads);
  out.seconds = arch::cycles_to_seconds(out.total_cycles, ghz);
  out.bandwidth =
      out.seconds > 0.0 ? static_cast<double>(out.bytes) / out.seconds : 0.0;
  return out;
}

}  // namespace mcopt::runtime
