#pragma once
// Closed-form controller-balance bandwidth model.
//
// For streaming kernels the DES in chip.h reduces, in steady state, to a
// small queueing computation: all concurrently active line streams advance
// in lock-step, the address map assigns every step's lines to controllers,
// lines on the same controller serialize while controllers work in parallel,
// and the whole pattern repeats with the 512-byte interleave period. This
// model evaluates that computation directly — an offset sweep that takes the
// DES minutes takes microseconds here. Tests cross-validate the two (the
// model tracks DES bandwidth shapes; absolute agreement is bounded but not
// exact since the DES also models latency jitter, L1 effects and banking).

#include <cstdint>
#include <span>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "arch/numa.h"
#include "sim/fault_schedule.h"
#include "sim/faults.h"

namespace mcopt::sim {

/// One concurrently advancing line stream (e.g. one array operand of one
/// thread's current chunk).
struct AnalyticStream {
  arch::Addr base = 0;
  bool write = false;
};

/// Expands logical store streams into their physical traffic: a write-
/// allocate cache turns every stored line into an RFO read plus an eventual
/// write-back, both on the store stream's addresses.
[[nodiscard]] std::vector<AnalyticStream> expand_rfo(
    std::span<const AnalyticStream> logical);

struct AnalyticEstimate {
  /// Bytes/s permitted by controller service under this stream placement.
  double service_bandwidth = 0.0;
  /// Bytes/s permitted by (threads x 1 outstanding read miss) concurrency.
  double latency_bandwidth = 0.0;
  /// min(service, latency): the model's prediction of actual traffic.
  double bandwidth = 0.0;
  /// Controller balance in (0,1]; 1/num_controllers is full aliasing.
  double balance = 0.0;
  /// Predicted busy fraction of each controller relative to the service
  /// critical path (the same convention as SimResult::mc_utilization): an
  /// offline controller reads 0, the bottleneck controller reads ~1, and a
  /// derated controller saturates above its healthy peers. This is what the
  /// executor's workers feed the supervisor as measurement stand-ins.
  std::vector<double> mc_utilization;
};

/// Estimates sustainable memory traffic for `streams` advancing in
/// lock-step, with `num_threads` strands providing read concurrency.
/// `streams` should be pre-expanded with expand_rfo().
///
/// `faults` mirrors the chip model's controller faults: lines owned by an
/// offline controller are charged to its remap survivor, and a derated
/// controller's service cost is scaled by 1/factor. (Bank and straggler
/// faults are below this model's resolution and are ignored.) The balance
/// ideal is taken over the surviving controllers only.
[[nodiscard]] AnalyticEstimate estimate_bandwidth(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& faults = {});

/// Epoch-resolved composition of the analytic model over a transient-fault
/// schedule: the per-FaultSpec model is evaluated once per epoch (epoch
/// boundaries = fault transitions over [0, horizon)) and composed with
/// epoch-length weights — whole-run bytes are sum(bandwidth_e * length_e),
/// so `whole.bandwidth` is the time-weighted mean the DES should approach.
struct ScheduledEstimate {
  struct EpochEstimate {
    arch::Cycles begin = 0;
    arch::Cycles end = 0;
    std::string faults;  ///< merged active spec, FaultSpec::describe()
    AnalyticEstimate estimate;
  };
  std::vector<EpochEstimate> epochs;
  AnalyticEstimate whole;  ///< epoch-length-weighted composition
};

/// `schedule` must be resolved (no percent bounds); `horizon` is the run
/// length in cycles the weights are taken over. `baseline` faults apply to
/// every epoch (FaultSpec::merged semantics, mirroring the chip).
[[nodiscard]] ScheduledEstimate estimate_bandwidth_scheduled(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon);

// ---------------------------------------------------------------------------
// Multi-socket (NUMA) analytic model — the closed form of sim::Node exactly
// as estimate_bandwidth is the closed form of sim::Chip. Per compute socket,
// each step's lines split into locally served ones (controller costing as
// above, socket derate applied) and remotely served ones (serialized on the
// per-peer link port at the surviving path's effective per-line cost); the
// step advances at the slowest of the two. Reads served remotely also pay
// the path latency in the concurrency bound. The node's bandwidth composes
// per-socket times by makespan: total bytes over the slowest socket's time.

/// Per-socket slice of a node estimate.
struct NodeSocketEstimate {
  /// The socket's own service/latency/bandwidth breakdown (local view:
  /// mc_utilization covers its controllers; remote lines are excluded from
  /// controller costs and live in link_utilization instead).
  AnalyticEstimate chip;
  /// Predicted busy fraction of the link port toward each peer socket,
  /// relative to the socket's service critical path (entry self = 0).
  std::vector<double> link_utilization;
  /// Fraction of this socket's traffic served by a remote socket.
  double remote_fraction = 0.0;
  /// Bytes per interleave period this socket moves (0 = idle socket).
  double bytes_per_period = 0.0;
};

struct NodeEstimate {
  /// Total bytes/s of the node: all sockets' bytes over the slowest
  /// socket's per-period time (the DES makespan composition).
  double bandwidth = 0.0;
  std::vector<NodeSocketEstimate> sockets;
  /// Fraction of all traffic served remotely.
  double remote_fraction = 0.0;
};

/// Estimates node bandwidth for per-socket stream sets advancing in
/// lock-step. `socket_streams[s]` are socket s's streams (pre-expanded with
/// expand_rfo; empty = idle socket) and `socket_threads[s]` its strand
/// count. `faults` may carry sock/link classes; routing mirrors
/// resolve_numa_routes exactly, so the estimate tracks what sim::Node
/// actually does under the same spec.
[[nodiscard]] NodeEstimate estimate_node_bandwidth(
    std::span<const std::vector<AnalyticStream>> socket_streams,
    std::span<const unsigned> socket_threads, const arch::Calibration& cal,
    const arch::AddressMap& map, const arch::NodeTopology& node,
    double clock_ghz, const FaultSpec& faults = {});

/// Epoch-resolved composition over a transient-fault schedule (the node
/// analogue of estimate_bandwidth_scheduled; same weighting semantics).
struct ScheduledNodeEstimate {
  struct EpochEstimate {
    arch::Cycles begin = 0;
    arch::Cycles end = 0;
    std::string faults;
    NodeEstimate estimate;
  };
  std::vector<EpochEstimate> epochs;
  NodeEstimate whole;  ///< epoch-length-weighted composition
};

[[nodiscard]] ScheduledNodeEstimate estimate_node_bandwidth_scheduled(
    std::span<const std::vector<AnalyticStream>> socket_streams,
    std::span<const unsigned> socket_threads, const arch::Calibration& cal,
    const arch::AddressMap& map, const arch::NodeTopology& node,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon);

}  // namespace mcopt::sim
