// Durability bench: the crash-consistency contract, measured.
//
// Two phases, both against runtime::durable::ServiceHandle:
//
//   1. Kill-restart A/B — fork a durable serving loop, SIGKILL it at a
//      seeded mid-stream instant, restart on the same directory, let the
//      client retry the whole stream (duplicates dedupe), drain, and
//      reconcile the per-tenant ledger byte-exactly against an
//      uninterrupted reference run. Any divergence — lost ack, double
//      execution, verdict drift — fails the bench.
//
//   2. Steady-state journal overhead — the same submission stream run
//      twice with real kernels: once through the durable handle and once
//      straight into runtime::Service. The gated number is the directly
//      measured journal-side time (submit-loop delta + flush + pump) as a
//      share of the plain pass; the wall-clock A/B median rides along as
//      an eyeball check. Asserted under --overhead-bound (default 3%).
//
// Results land in BENCH_durability.json (see scripts/check_obs_outputs.py
// --durability-json) and the exit code carries the verdict, so CI can run
// this binary as the durability smoke.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common.h"
#include "runtime/durable/service_handle.h"
#include "util/prng.h"
#include "util/timer.h"

namespace {

using namespace mcopt;
namespace fs = std::filesystem;

// --- shared workload shape -------------------------------------------------

/// Two tenants, batch SLO, accounting mode; tenant 2's tight byte quota
/// keeps door sheds in the reconciled history (the same shape the tier-1
/// DurabilityRegression pins).
runtime::durable::DurableConfig reconcile_config(const std::string& dir) {
  runtime::durable::DurableConfig cfg;
  cfg.dir = dir;
  cfg.service.executor.num_workers = 2;
  cfg.service.executor.run_kernels = false;
  cfg.service.executor.lane_capacity = {4096, 4096, 4096};
  cfg.service.executor.seed = 1234;
  cfg.tenants.push_back({.name = "steady",
                         .weight = 2.0,
                         .slo = runtime::service::SloClass::kBatch});
  cfg.tenants.push_back({.name = "capped",
                         .weight = 1.0,
                         .quota_bytes_per_s = 250000.0,
                         .burst_seconds = 1.0,
                         .slo = runtime::service::SloClass::kBatch,
                         .breaker_trip_threshold = 6});
  return cfg;
}

runtime::exec::JobSpec reconcile_job(std::uint64_t seed, std::uint64_t id) {
  runtime::exec::JobSpec spec;
  spec.kind = runtime::exec::JobKind::kTriad;
  spec.n = 2048 + 128 * ((id + seed) % 5);
  spec.iterations = 1 + static_cast<unsigned>(id % 3);
  spec.arrival = id * 20000;
  return spec;
}

runtime::service::TenantId tenant_for(std::uint64_t id) {
  return 1 + static_cast<runtime::service::TenantId>(id % 2);
}

#ifndef _WIN32

/// Durable ack marker: written only AFTER flush() returned, fsync'd before
/// the rename, so it never overstates what the journal committed.
void write_ack_marker(const std::string& dir, std::uint64_t max_id) {
  const std::string tmp = dir + "/acked.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%llu\n", static_cast<unsigned long long>(max_id));
  std::fflush(f);
  fsync(fileno(f));
  std::fclose(f);
  std::rename(tmp.c_str(), (dir + "/acked.txt").c_str());
}

std::uint64_t read_ack_marker(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/acked.txt").c_str(), "rb");
  if (f == nullptr) return 0;
  unsigned long long v = 0;
  const int got = std::fscanf(f, "%llu", &v);
  std::fclose(f);
  return got == 1 ? v : 0;
}

/// The serving loop both the reference and the killed child run: batch
/// submissions, group-commit (ack) each batch, pump, checkpoint on a fixed
/// cadence, sleep between batches so the kill lands mid-stream. When
/// `trace_path` is set, the full trace is rewritten after every group
/// commit — each batch leaves a complete, valid Chrome trace on disk, so a
/// SIGKILL at any instant still leaves the pre-kill causal chain readable
/// (obs_query --explain-job stitches it to the post-restart trace).
bool run_reconcile_workload(const std::string& dir, std::uint64_t seed,
                            std::uint64_t jobs, std::uint64_t batch,
                            unsigned inter_batch_us,
                            const std::string& trace_path = "") {
  auto handle = runtime::durable::ServiceHandle::open(reconcile_config(dir));
  if (!handle) return false;
  runtime::durable::ServiceHandle& h = *handle.value();
  for (std::uint64_t first = 1; first <= jobs; first += batch) {
    const std::uint64_t last = std::min(jobs, first + batch - 1);
    for (std::uint64_t id = first; id <= last; ++id)
      (void)h.submit(tenant_for(id), id, reconcile_job(seed, id));
    if (!h.flush().ok()) return false;
    write_ack_marker(dir, last);
    (void)h.pump();
    if (!trace_path.empty())
      (void)obs::TraceRecorder::instance().write_chrome_trace(trace_path);
    if (((first / batch) % 3) == 2 && !h.checkpoint().ok()) return false;
    if (inter_batch_us > 0) usleep(inter_batch_us);
  }
  return h.drain(nullptr).ok();
}

/// Attribution-vs-ledger reconciliation for one tenant: the attribution
/// ledger's served bytes and shed events must equal the service ledger's,
/// byte-exactly, across the SIGKILL (DESIGN.md §4m invariant).
struct AttributionCheck {
  std::uint64_t attr_served_bytes = 0;
  std::uint64_t ledger_served_bytes = 0;
  std::uint64_t attr_shed_events = 0;
  std::uint64_t ledger_sheds = 0;
};

struct ReconcileOutcome {
  bool pass = false;
  unsigned kill_after_us = 0;
  std::uint64_t acked = 0;
  runtime::durable::RecoveryInfo recovery;
  std::vector<runtime::durable::TenantLedger> want;
  std::vector<runtime::durable::TenantLedger> got;
  std::vector<AttributionCheck> attribution;  ///< per tenant, restart side
  std::string burn_json;  ///< recovery handle's SLO burn export
  std::vector<std::string> failures;
};

/// Phase 1: the fork+SIGKILL A/B. When `trace_dir` is set, the killed child
/// rewrites trace_pre.json after every batch and the restarted parent
/// writes trace_post.json, the obs_query --explain-job input pair.
ReconcileOutcome run_reconcile(const fs::path& root, std::uint64_t seed,
                               std::uint64_t jobs, std::uint64_t batch,
                               unsigned kill_after_us,
                               const std::string& trace_dir) {
  ReconcileOutcome out;
  out.kill_after_us = kill_after_us;
  fs::create_directories(root / "ref");
  fs::create_directories(root / "kill");
  const std::string ref_dir = (root / "ref").string();
  const std::string kill_dir = (root / "kill").string();

  if (!run_reconcile_workload(ref_dir, seed, jobs, batch, 0)) {
    out.failures.emplace_back("reference run failed");
    return out;
  }
  {
    auto ref = runtime::durable::ServiceHandle::open(reconcile_config(ref_dir));
    if (!ref) {
      out.failures.emplace_back("reference reopen refused: " +
                                ref.error().message);
      return out;
    }
    out.want = ref.value()->ledger();
  }

  const pid_t pid = fork();
  if (pid < 0) {
    out.failures.emplace_back("fork failed");
    return out;
  }
  if (pid == 0) {
    // The fork copied the parent's attribution cells (the reference run's
    // charges); wipe them so the child's snapshots carry only this
    // incarnation's ledger — what the restart-side reconciliation asserts.
    obs::Attribution::instance().reset();
    std::string trace_pre;
    if (!trace_dir.empty()) {
      // The child records its own rings (fork gave it a copy, but enable()
      // here makes the run self-contained even without --trace).
      obs::TraceRecorder::instance().enable(1u << 16);
      trace_pre = trace_dir + "/trace_pre.json";
    }
    const bool ok =
        run_reconcile_workload(kill_dir, seed, jobs, batch, 3000, trace_pre);
    _exit(ok ? 0 : 42);
  }
  usleep(kill_after_us);
  kill(pid, SIGKILL);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
    out.failures.emplace_back("child failed before the kill landed");
    return out;
  }

  out.acked = read_ack_marker(kill_dir);
  // The restart side's attribution must be built ONLY from the child's
  // snapshot (restored at open) plus post-covered replay charges — wipe the
  // parent's own charges (reference run, earlier reopens) first so the
  // reconciliation below is exact, not merely monotone.
  obs::Attribution::instance().reset();
  if (!trace_dir.empty()) obs::TraceRecorder::instance().enable(1u << 16);
  auto handle = runtime::durable::ServiceHandle::open(reconcile_config(kill_dir));
  if (!handle) {
    out.failures.emplace_back("recovery refused: " + handle.error().message);
    return out;
  }
  runtime::durable::ServiceHandle& h = *handle.value();
  out.recovery = h.recovery_info();
  for (std::uint64_t id = 1; id <= out.acked; ++id)
    if (h.poll(id).state == runtime::durable::SubmissionState::kUnknown) {
      out.failures.emplace_back("acked id " + std::to_string(id) + " lost");
      break;
    }
  for (std::uint64_t id = 1; id <= jobs; ++id)
    (void)h.submit(tenant_for(id), id, reconcile_job(seed, id));
  if (!h.flush().ok() || !h.drain(nullptr).ok()) {
    out.failures.emplace_back("recovery drain failed");
    return out;
  }
  out.got = h.ledger();
  out.burn_json = h.slo_monitor().json();
  if (!trace_dir.empty())
    (void)obs::TraceRecorder::instance().write_chrome_trace(trace_dir +
                                                            "/trace_post.json");
  if (out.got.size() != out.want.size()) {
    out.failures.emplace_back("ledger width diverged");
  } else {
    for (std::size_t i = 0; i < out.want.size(); ++i)
      if (out.got[i].completed != out.want[i].completed ||
          out.got[i].served_bytes != out.want[i].served_bytes ||
          out.got[i].sheds != out.want[i].sheds)
        out.failures.emplace_back("tenant " + std::to_string(i + 1) +
                                  " ledger diverged");
  }
  // Attribution-vs-ledger reconciliation across the kill: every served byte
  // and every shed the restarted handle accounts for must have exactly one
  // owner in the attribution ledger (snapshot blob + replay charges).
  for (std::size_t i = 0; i < out.got.size(); ++i) {
    AttributionCheck chk;
    const auto tenant = static_cast<std::uint32_t>(i + 1);
    chk.attr_served_bytes =
        obs::Attribution::instance().tenant_bytes(tenant, obs::Charge::kServed);
    chk.ledger_served_bytes = out.got[i].served_bytes;
    chk.attr_shed_events =
        obs::Attribution::instance().tenant_count(tenant, obs::Charge::kShed);
    chk.ledger_sheds = out.got[i].sheds;
    if (chk.attr_served_bytes != chk.ledger_served_bytes ||
        chk.attr_shed_events != chk.ledger_sheds)
      out.failures.emplace_back("tenant " + std::to_string(i + 1) +
                                " attribution diverged from ledger");
    out.attribution.push_back(chk);
  }
  out.pass = out.failures.empty();
  return out;
}
#endif  // !_WIN32

// --- phase 2: steady-state journal overhead --------------------------------

struct OverheadParams {
  std::uint64_t jobs = 192;
  std::uint64_t batch = 32;
  std::size_t n = 1u << 19;  ///< triad elements per job (real kernels)
  unsigned iterations = 2;
  unsigned workers = 4;
  unsigned reps = 5;  ///< interleaved plain/durable pairs (odd => true median)
};

runtime::exec::JobSpec overhead_job(const OverheadParams& p, std::uint64_t id) {
  runtime::exec::JobSpec spec;
  spec.kind = runtime::exec::JobKind::kTriad;
  spec.n = p.n;
  spec.iterations = p.iterations;
  spec.arrival = 0;  // open the floodgates: throughput, not pacing
  return spec;
}

runtime::service::ServiceConfig overhead_service_config(
    const OverheadParams& p) {
  runtime::service::ServiceConfig cfg;
  cfg.executor.num_workers = p.workers;
  cfg.executor.run_kernels = true;
  cfg.executor.lane_capacity = {8192, 8192, 8192};
  cfg.executor.seed = 7;
  return cfg;
}

runtime::service::TenantConfig overhead_tenant(const char* name, double w) {
  runtime::service::TenantConfig t;
  t.name = name;
  t.weight = w;
  t.slo = runtime::service::SloClass::kBatch;
  return t;
}

/// Wall-clock split of one overhead pass. `submit` covers the submission
/// loop (admission + WFQ enqueue, plus the journal append on the durable
/// side); `commit` covers flush() + pump() — group commit fsyncs and
/// outcome journaling, durable side only.
struct PassTiming {
  double total = 0.0;
  double submit = 0.0;
  double commit = 0.0;
};

/// One durable pass: journal every submission, group-commit per batch,
/// pump outcomes, drain. No mid-run checkpoint() — a snapshot is a
/// deliberate quiesce (the executor empties, by contract), so its pipeline
/// bubble is a cadence policy cost, not steady-state journal overhead;
/// what's measured here is the always-on tax: append + CRC + group commit.
PassTiming time_durable_pass(const fs::path& dir, const OverheadParams& p) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  runtime::durable::DurableConfig cfg;
  cfg.dir = dir.string();
  cfg.service = overhead_service_config(p);
  cfg.tenants.push_back(overhead_tenant("a", 2.0));
  cfg.tenants.push_back(overhead_tenant("b", 1.0));
  auto handle = runtime::durable::ServiceHandle::open(cfg);
  if (!handle)
    throw std::runtime_error("overhead: durable open failed: " +
                             handle.error().message);
  runtime::durable::ServiceHandle& h = *handle.value();
  PassTiming t;
  util::Timer timer;
  for (std::uint64_t first = 1; first <= p.jobs; first += p.batch) {
    const std::uint64_t last = std::min(p.jobs, first + p.batch - 1);
    util::Timer sub;
    for (std::uint64_t id = first; id <= last; ++id)
      (void)h.submit(tenant_for(id), id, overhead_job(p, id));
    t.submit += sub.seconds();
    util::Timer com;
    if (!h.flush().ok())
      throw std::runtime_error("overhead: flush failed");
    (void)h.pump();
    t.commit += com.seconds();
  }
  if (!h.drain(nullptr).ok())
    throw std::runtime_error("overhead: drain failed");
  t.total = timer.seconds();
  fs::remove_all(dir, ec);
  return t;
}

/// The plain baseline: the identical stream straight into Service — no
/// journal, no commit, no snapshot. Batched like the durable side so the
/// submit-loop timings are pairwise comparable.
PassTiming time_plain_pass(const OverheadParams& p) {
  runtime::service::Service svc(overhead_service_config(p));
  (void)svc.register_tenant(overhead_tenant("a", 2.0));
  (void)svc.register_tenant(overhead_tenant("b", 1.0));
  PassTiming t;
  util::Timer timer;
  for (std::uint64_t first = 1; first <= p.jobs; first += p.batch) {
    const std::uint64_t last = std::min(p.jobs, first + p.batch - 1);
    util::Timer sub;
    for (std::uint64_t id = first; id <= last; ++id)
      (void)svc.submit(tenant_for(id), overhead_job(p, id));
    t.submit += sub.seconds();
  }
  svc.shutdown(runtime::exec::Executor::Drain::kDrain);
  t.total = timer.seconds();
  return t;
}

struct OverheadOutcome {
  double plain_seconds = 0.0;
  double durable_seconds = 0.0;
  double overhead_pct = 0.0;    ///< gated: directly measured journal share
  double ab_median_pct = 0.0;   ///< informational: wall-clock A/B median
  bool pass = false;
};

double median_of(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return (v.size() % 2 == 1) ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

OverheadOutcome run_overhead(const fs::path& root, const OverheadParams& p,
                             double bound_pct) {
  OverheadOutcome out;
  // Warm both paths (page faults, lane allocation), then interleaved
  // plain/durable pairs. The gated number is measured directly inside each
  // durable pass — (submit loop delta vs the plain pair) + flush + pump,
  // i.e. journal append + CRC + group-commit fsync — divided by the plain
  // pass's wall clock. Subtracting two full pass times instead would gate
  // on scheduler noise: the kernel phase is minutes of multi-threaded
  // memory traffic whose run-to-run jitter dwarfs the journal's
  // milliseconds. The wall-clock A/B median is still reported
  // (ab_median_pct) for the eyeball check; its sign is meaningless when it
  // sits inside noise.
  (void)time_plain_pass(p);
  (void)time_durable_pass(root / "warm", p);
  std::vector<double> direct;
  std::vector<double> ab;
  double plain_best = 1e300;
  double durable_best = 1e300;
  for (unsigned r = 0; r < p.reps; ++r) {
    const PassTiming plain = time_plain_pass(p);
    const PassTiming durable = time_durable_pass(root / "run", p);
    plain_best = std::min(plain_best, plain.total);
    durable_best = std::min(durable_best, durable.total);
    direct.push_back(100.0 *
                     (durable.submit - plain.submit + durable.commit) /
                     plain.total);
    ab.push_back(100.0 * (durable.total - plain.total) / plain.total);
  }
  out.plain_seconds = plain_best;
  out.durable_seconds = durable_best;
  out.overhead_pct = median_of(direct);
  out.ab_median_pct = median_of(ab);
  out.pass = out.overhead_pct < bound_pct;
  return out;
}

// --- output ----------------------------------------------------------------

#ifndef _WIN32
void write_json(const std::string& path, std::uint64_t seed,
                std::uint64_t jobs, const ReconcileOutcome& rec,
                const OverheadOutcome& ovh, const OverheadParams& op,
                double bound_pct) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "durability: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"durability\",\n"
               "  \"seed\": %" PRIu64 ",\n"
               "  \"jobs\": %" PRIu64 ",\n"
               "  \"kill_after_us\": %u,\n"
               "  \"reconciled\": %s,\n"
               "  \"acked_watermark\": %" PRIu64 ",\n"
               "  \"journal_records\": %" PRIu64 ",\n"
               "  \"replayed_submissions\": %" PRIu64 ",\n"
               "  \"resubmitted\": %" PRIu64 ",\n"
               "  \"completed_skipped\": %" PRIu64 ",\n"
               "  \"sheds_replayed\": %" PRIu64 ",\n"
               "  \"dropped_bytes\": %" PRIu64 ",\n",
               seed, jobs, rec.kill_after_us, rec.pass ? "true" : "false",
               rec.acked, rec.recovery.journal_records,
               rec.recovery.replayed_submissions, rec.recovery.resubmitted,
               rec.recovery.completed_skipped, rec.recovery.sheds_replayed,
               rec.recovery.dropped_bytes);
  std::fprintf(f, "  \"tenants\": [\n");
  for (std::size_t i = 0; i < rec.want.size(); ++i) {
    const bool have_got = i < rec.got.size();
    std::fprintf(f,
                 "    {\"tenant\": %zu, \"ref_completed\": %" PRIu64
                 ", \"ref_served_bytes\": %" PRIu64 ", \"ref_sheds\": %" PRIu64
                 ", \"completed\": %" PRIu64 ", \"served_bytes\": %" PRIu64
                 ", \"sheds\": %" PRIu64 "}%s\n",
                 i + 1, rec.want[i].completed, rec.want[i].served_bytes,
                 rec.want[i].sheds, have_got ? rec.got[i].completed : 0,
                 have_got ? rec.got[i].served_bytes : 0,
                 have_got ? rec.got[i].sheds : 0,
                 i + 1 < rec.want.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"attribution\": [\n");
  for (std::size_t i = 0; i < rec.attribution.size(); ++i) {
    const AttributionCheck& chk = rec.attribution[i];
    std::fprintf(f,
                 "    {\"tenant\": %zu, \"attr_served_bytes\": %" PRIu64
                 ", \"ledger_served_bytes\": %" PRIu64
                 ", \"attr_shed_events\": %" PRIu64 ", \"ledger_sheds\": %" PRIu64
                 "}%s\n",
                 i + 1, chk.attr_served_bytes, chk.ledger_served_bytes,
                 chk.attr_shed_events, chk.ledger_sheds,
                 i + 1 < rec.attribution.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"overhead\": {\"plain_seconds\": %.6f, "
               "\"durable_seconds\": %.6f, \"overhead_pct\": %.4f, "
               "\"ab_median_pct\": %.4f, "
               "\"bound_pct\": %.2f, \"jobs\": %" PRIu64
               ", \"triad_elements\": %zu, \"pass\": %s},\n",
               ovh.plain_seconds, ovh.durable_seconds, ovh.overhead_pct,
               ovh.ab_median_pct, bound_pct, op.jobs, op.n,
               ovh.pass ? "true" : "false");
  std::fprintf(f, "  \"metrics\": %s\n}\n",
               obs::MetricsRegistry::instance().json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}
#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Durability bench: fork+SIGKILL A/B ledger reconciliation plus the "
      "steady-state journal overhead bound");
  cli.option_int("seed", 1, "workload seed (perturbs job sizes + kill time)")
      .option_int("jobs", 60, "submissions in the reconciliation stream")
      .option_int("batch", 10, "submissions per group commit (flush)")
      .option_int("kill-after-us", 0,
                  "SIGKILL delay in microseconds (0 = seeded draw)")
      .option_int("overhead-jobs", 192, "real-kernel jobs per overhead pass")
      .option_int("overhead-n", 1 << 19,
                  "triad elements per overhead job (real kernels)")
      .option_int("overhead-batch", 32, "overhead-pass group-commit batch")
      .option_int("workers", 4, "executor workers for the overhead pass")
      .option_int("reps", 5, "interleaved plain/durable overhead pairs")
      .option_double("overhead-bound", 3.0,
                     "maximum tolerated journal overhead, percent")
      .flag("skip-overhead", "reconciliation phase only (fast CI smoke)")
      .option_str("trace-dir", "",
                  "write trace_pre.json (child, per batch, SIGKILL-"
                  "survivable) and trace_post.json (restart) here for "
                  "obs_query --explain-job")
      .option_str("json", "BENCH_durability.json", "output path");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

#ifdef _WIN32
  std::fprintf(stderr, "durability: needs fork(); POSIX only\n");
  return 2;
#else
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = static_cast<std::uint64_t>(cli.get_int("jobs"));
  const auto batch = static_cast<std::uint64_t>(cli.get_int("batch"));
  util::Xoshiro256 rng(seed);
  auto kill_after = static_cast<unsigned>(cli.get_int("kill-after-us"));
  if (kill_after == 0) kill_after = 500 + static_cast<unsigned>(rng() % 15000);

  const fs::path root =
      fs::temp_directory_path() / ("mcopt_durability_" + std::to_string(seed));
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root);

  std::printf("# durability bench: %" PRIu64 " jobs, batch %" PRIu64
              ", seed %" PRIu64 ", SIGKILL at %uus\n\n",
              jobs, batch, seed, kill_after);

  const std::string trace_dir = cli.get_str("trace-dir");
  if (!trace_dir.empty()) fs::create_directories(trace_dir);
  const ReconcileOutcome rec =
      run_reconcile(root, seed, jobs, batch, kill_after, trace_dir);
  std::printf("# kill-restart reconciliation\n");
  std::printf("acked watermark %" PRIu64 "; recovery: %" PRIu64
              " records, %" PRIu64 " replayed, %" PRIu64 " resubmitted, "
              "%" PRIu64 " completed-skipped, %" PRIu64 " sheds, %" PRIu64
              " torn bytes dropped\n",
              rec.acked, rec.recovery.journal_records,
              rec.recovery.replayed_submissions, rec.recovery.resubmitted,
              rec.recovery.completed_skipped, rec.recovery.sheds_replayed,
              rec.recovery.dropped_bytes);
  for (std::size_t i = 0; i < rec.want.size(); ++i) {
    const bool have_got = i < rec.got.size();
    std::printf("tenant %zu: ref completed=%" PRIu64 " bytes=%" PRIu64
                " sheds=%" PRIu64 " | restarted completed=%" PRIu64
                " bytes=%" PRIu64 " sheds=%" PRIu64 "\n",
                i + 1, rec.want[i].completed, rec.want[i].served_bytes,
                rec.want[i].sheds, have_got ? rec.got[i].completed : 0,
                have_got ? rec.got[i].served_bytes : 0,
                have_got ? rec.got[i].sheds : 0);
  }
  for (std::size_t i = 0; i < rec.attribution.size(); ++i) {
    const AttributionCheck& chk = rec.attribution[i];
    std::printf("tenant %zu attribution: served %" PRIu64 "/%" PRIu64
                " bytes, sheds %" PRIu64 "/%" PRIu64 " (attr/ledger)\n",
                i + 1, chk.attr_served_bytes, chk.ledger_served_bytes,
                chk.attr_shed_events, chk.ledger_sheds);
  }
  for (const auto& fail : rec.failures) std::printf("  FAIL: %s\n", fail.c_str());
  std::printf("reconciliation: %s\n\n", rec.pass ? "PASS (byte-exact)" : "FAIL");

  OverheadOutcome ovh;
  OverheadParams op;
  const double bound_pct = cli.get_double("overhead-bound");
  if (!cli.get_flag("skip-overhead")) {
    op.jobs = static_cast<std::uint64_t>(cli.get_int("overhead-jobs"));
    op.batch = static_cast<std::uint64_t>(cli.get_int("overhead-batch"));
    op.n = static_cast<std::size_t>(cli.get_int("overhead-n"));
    op.workers = static_cast<unsigned>(cli.get_int("workers"));
    op.reps = std::max(1u, static_cast<unsigned>(cli.get_int("reps")));
    ovh = run_overhead(root, op, bound_pct);
    std::printf("# steady-state journal overhead (%" PRIu64
                " real-kernel jobs, triad n=%zu, %u workers)\n",
                op.jobs, op.n, op.workers);
    std::printf("plain    %.4fs\ndurable  %.4fs\n",
                ovh.plain_seconds, ovh.durable_seconds);
    std::printf("journal overhead %.3f%% measured direct (bound %.2f%%) -> "
                "%s  [wall-clock A/B median %+.2f%%, noise]\n\n",
                ovh.overhead_pct, bound_pct, ovh.pass ? "PASS" : "FAIL",
                ovh.ab_median_pct);
  } else {
    ovh.pass = true;
  }

  write_json(cli.get_str("json"), seed, jobs, rec, ovh, op, bound_pct);
  // Companion artifacts next to the JSON: the attribution ledger and the
  // recovery handle's SLO burn table (check_obs_outputs.py validates both).
  std::string stem = cli.get_str("json");
  if (stem.size() >= 5 && stem.compare(stem.size() - 5, 5, ".json") == 0)
    stem.resize(stem.size() - 5);
  const auto attr =
      obs::Attribution::instance().write_json(stem + ".attribution.json");
  if (attr.ok())
    std::printf("wrote %s\n", (stem + ".attribution.json").c_str());
  else
    std::fprintf(stderr, "durability: %s\n", attr.error().message.c_str());
  if (!rec.burn_json.empty()) {
    const std::string burn_path = stem + ".burn.json";
    std::FILE* bf = std::fopen(burn_path.c_str(), "wb");
    if (bf != nullptr) {
      std::fprintf(bf, "%s\n", rec.burn_json.c_str());
      std::fclose(bf);
      std::printf("wrote %s\n", burn_path.c_str());
    } else {
      std::fprintf(stderr, "durability: cannot write %s\n", burn_path.c_str());
    }
  }
  fs::remove_all(root, ec);
  return rec.pass && ovh.pass ? 0 : 1;
#endif
}
