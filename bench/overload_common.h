#pragma once
// Shared open-loop overload harness for the executor: a seeded load
// generator that sweeps offered load against the analytic capacity of its
// own job mix, plus the invariant checks that both the overload_soak bench
// and the chaos/regression tiers assert:
//
//   I1  shed-lag bound: a completed job misses its deadline by at most its
//       own service quote (and, on a healthy run, the miss *rate* among
//       completed jobs stays under 1%);
//   I2  conservation: every submitted job yields exactly one report, and
//       offered bytes = goodput bytes + typed-shed bytes — nothing is lost
//       silently, not even across drain-on-shutdown;
//   I3  goodput is capped at the analytic rate of the jobs that actually
//       ran; on a healthy run it tracks offered load below capacity, and at
//       or above capacity the server stays >= 90% utilized (sheds at the
//       door instead of thrashing);
//   I4  every non-completed job carries a typed shed reason.
//
// All rates live on the executor's virtual cycle clock, so the invariants
// are timing-independent: real-thread scheduling can change *which* jobs
// are admitted at the margin, never whether the accounting balances.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor/executor.h"
#include "util/prng.h"

namespace mcopt::bench {

struct OverloadParams {
  /// Offered load as a multiple of the job mix's analytic capacity.
  double offered_ratio = 1.0;
  unsigned jobs = 240;
  std::uint64_t seed = 1;
  unsigned num_workers = 4;
  /// Mean deadline slack, as a multiple of the job's healthy service time
  /// (each job draws its own slack in [0.5, 1.5] of this).
  double deadline_slack = 12.0;
  /// Include LBM jobs in the mix. Off by default: the LBM body runs OpenMP
  /// inside (excluded from TSan builds), and its D3Q19 traffic dwarfs the
  /// other kernels' — triad/Jacobi keep the sweep fast and TSan-clean.
  bool include_lbm = false;
  /// Ground-truth fault timeline (virtual cycles; must be resolved).
  sim::FaultSchedule truth{};
  /// When false, job bodies are skipped: pure admission/accounting sweeps.
  bool run_kernels = true;
  /// Real-time pace of the virtual clock during submission. Open-loop means
  /// arrivals happen on a wall schedule: without pacing, submission would
  /// outrun the workers arbitrarily and the physical queue depth (a real-vs-
  /// virtual-speed artifact) would starve the low lane forever.
  double pace_ns_per_cycle = 0.5;
};

struct OverloadResult {
  runtime::exec::ExecutorStats stats;
  std::vector<runtime::exec::JobReport> reports;
  std::uint64_t offered_bytes = 0;
  std::uint64_t goodput_bytes = 0;
  std::uint64_t shed_bytes = 0;
  /// Healthy service cycles of the whole mix: the analytic busy time.
  arch::Cycles mix_service_cycles = 0;
  arch::Cycles last_arrival = 0;
  arch::Cycles horizon = 0;  ///< virtual_now() after drain
  /// Sum of completed jobs' reserved service windows (finish - start).
  arch::Cycles busy_cycles = 0;
  double clock_hz = 0.0;
  double capacity_gbs = 0.0;  ///< offered_bytes / mix busy time
  double offered_gbs = 0.0;
  double goodput_gbs = 0.0;
  /// Analytic rate of the jobs that actually ran (completed bytes over
  /// their reserved windows). Admission legitimately skews the accepted
  /// subset, so this — not the whole-mix capacity — is the server's
  /// achievable rate.
  double busy_rate_gbs = 0.0;
  /// Share of the horizon the bandwidth server spent on completed work.
  double utilization = 0.0;
  std::uint64_t completed_missed = 0;
  double miss_rate = 0.0;  ///< misses among completed jobs
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  ///< completed sojourn
};

/// One generated job plus its healthy-state quote (the generator prices
/// against the healthy state regardless of `truth`: deadlines and offered
/// load describe what the *client* expects, not what the hardware does).
struct GeneratedJob {
  runtime::exec::JobSpec spec;
  runtime::exec::Quote healthy;
};

inline std::vector<GeneratedJob> generate_load(
    const OverloadParams& params, const runtime::exec::PricingModel& pricing) {
  using runtime::exec::JobKind;
  using runtime::exec::Priority;
  util::Xoshiro256 rng(params.seed);
  std::vector<GeneratedJob> jobs;
  jobs.reserve(params.jobs);
  for (unsigned i = 0; i < params.jobs; ++i) {
    GeneratedJob j;
    const std::uint64_t kind_draw = rng.below(params.include_lbm ? 10 : 8);
    if (kind_draw < 4) {
      j.spec.kind = JobKind::kTriad;
      j.spec.n = std::size_t{1024} << rng.below(3);
      j.spec.iterations = 1 + static_cast<unsigned>(rng.below(4));
    } else if (kind_draw < 8) {
      j.spec.kind = JobKind::kJacobi;
      j.spec.n = 32 + 16 * rng.below(4);
      j.spec.iterations = 1 + static_cast<unsigned>(rng.below(4));
    } else {
      j.spec.kind = JobKind::kLbm;
      j.spec.n = 8 + 4 * rng.below(3);
      j.spec.iterations = 1;
    }
    const double prio_draw = rng.uniform();
    j.spec.priority = prio_draw < 0.2   ? Priority::kHigh
                      : prio_draw < 0.8 ? Priority::kNormal
                                        : Priority::kLow;

    const auto quote = pricing.price(j.spec, {});
    if (!quote) continue;  // unpriceable specs never leave the generator
    j.healthy = quote.value();
    jobs.push_back(std::move(j));
  }

  // Second pass: arrivals and deadlines. A deadline is the job's own slack
  // plus a mix-wide latency floor — a client sharing a serialized server
  // with jobs up to `max_service` long must tolerate a few of them in front
  // (otherwise a tiny job behind one big one is always hopeless, which says
  // nothing about overload behavior).
  arch::Cycles mean_service = 0;
  arch::Cycles max_service = 0;
  for (const auto& j : jobs) {
    mean_service += j.healthy.service_cycles;
    max_service = std::max(max_service, j.healthy.service_cycles);
  }
  if (!jobs.empty()) mean_service /= jobs.size();
  const arch::Cycles latency_floor = 2 * max_service + 2 * mean_service;
  arch::Cycles arrival = 0;
  for (auto& j : jobs) {
    // Open loop: exponential inter-arrival with mean service/ratio, so the
    // instantaneous offered byte rate tracks ratio * capacity.
    const double mean =
        static_cast<double>(j.healthy.service_cycles) / params.offered_ratio;
    arrival += static_cast<arch::Cycles>(
        std::ceil(-std::log(1.0 - rng.uniform()) * mean));
    j.spec.arrival = arrival;
    const double slack = params.deadline_slack * rng.uniform(0.5, 1.5);
    j.spec.deadline =
        arrival + latency_floor +
        static_cast<arch::Cycles>(
            std::ceil(static_cast<double>(j.healthy.service_cycles) * slack));
  }
  return jobs;
}

/// Horizon of a sweep point (for resolving percent-relative fault
/// schedules): arrivals span mix/ratio, service spans mix; the run covers
/// both, plus slack for the drain tail. Deterministic for fixed params.
inline arch::Cycles overload_horizon(const OverloadParams& params) {
  const runtime::exec::PricingModel pricing{{}};
  const auto jobs = generate_load(params, pricing);
  arch::Cycles busy = 0;
  for (const auto& j : jobs) busy += j.healthy.service_cycles;
  const arch::Cycles last = jobs.empty() ? 1 : jobs.back().spec.arrival;
  return std::max(busy, last) + busy / 8;
}

/// Draws a 1-2 interval controller-fault schedule for the overload chaos
/// soak. Only offline and derate faults move the pricing model (admission
/// prices per controller), so the draw sticks to those two classes;
/// intervals clear by 85% so every run has a healthy tail to drain into.
/// Chaos seeds replay exactly: the promoted regression test re-draws the
/// same schedule from the same seed.
inline sim::FaultSchedule random_overload_schedule(util::Xoshiro256& rng,
                                                   unsigned num_controllers) {
  sim::FaultSchedule sched;
  const unsigned intervals = 1 + static_cast<unsigned>(rng.below(2));
  for (unsigned i = 0; i < intervals; ++i) {
    sim::FaultSchedule::Interval iv;
    iv.relative = true;
    iv.begin_frac = rng.uniform(0.10, 0.50);
    iv.end_frac = iv.begin_frac + rng.uniform(0.10, 0.85 - iv.begin_frac);
    if (rng.below(2) == 0)
      iv.fault.offline_controllers.push_back(
          static_cast<unsigned>(rng.below(num_controllers)));
    else
      iv.fault.derates.push_back(
          {static_cast<unsigned>(rng.below(num_controllers)),
           rng.uniform(0.25, 0.75)});
    sched.intervals.push_back(std::move(iv));
  }
  return sched;
}

/// Seeds an OverloadParams for one chaos seed: the load generator and the
/// fault schedule both derive from `seed`, so a failing seed replays bit-
/// for-bit in the regression tier.
inline OverloadParams overload_chaos_params(std::uint64_t seed, unsigned jobs,
                                            unsigned workers, double ratio) {
  OverloadParams params;
  params.offered_ratio = ratio;
  params.jobs = jobs;
  params.seed = seed;
  params.num_workers = workers;
#ifdef MCOPT_TSAN
  // Instrumentation slows real execution 10-20x; slow the open-loop replay
  // clock with it (see OverloadParams::pace_ns_per_cycle).
  params.pace_ns_per_cycle = 20.0;
#endif
  util::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const arch::InterleaveSpec spec{};
  params.truth = random_overload_schedule(rng, spec.num_controllers())
                     .resolved(overload_horizon(params));
  return params;
}

inline OverloadResult run_overload(const OverloadParams& params) {
  using namespace runtime::exec;
  ExecutorConfig cfg;
  cfg.num_workers = params.num_workers;
  cfg.lane_capacity = {32, 128, 64};
  cfg.truth = params.truth;
  cfg.seed = params.seed;
  cfg.run_kernels = params.run_kernels;

  const PricingModel pricing(cfg.pricing);
  const auto jobs = generate_load(params, pricing);

  OverloadResult out;
  out.clock_hz = pricing.clock_hz();
  arch::Cycles max_service = 0;
  for (const auto& j : jobs) {
    out.offered_bytes += j.healthy.bytes;
    out.mix_service_cycles += j.healthy.service_cycles;
    max_service = std::max(max_service, j.healthy.service_cycles);
  }
  // Overtake insurance: a job's reservation can slip behind high-priority
  // work admitted after it, so the gate keeps a couple of worst-case jobs
  // of headroom. The generator's deadline latency floor covers this, so the
  // margin does not starve small jobs.
  cfg.admission_margin = 2 * max_service;

  Executor ex(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& j : jobs) {
    // Pace submission to the virtual arrival schedule: job i is submitted
    // when the wall clock reaches arrival_i * pace.
    const double due_ns =
        static_cast<double>(j.spec.arrival) * params.pace_ns_per_cycle;
    for (;;) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      if (static_cast<double>(elapsed) >= due_ns) break;
      std::this_thread::yield();
    }
    (void)ex.submit(j.spec);
  }
  ex.shutdown(Executor::Drain::kDrain);

  out.stats = ex.stats();
  out.reports = ex.reports();
  out.horizon = ex.virtual_now();
  if (!jobs.empty()) out.last_arrival = jobs.back().spec.arrival;

  std::vector<double> sojourn_ms;
  std::uint64_t completed = 0;
  for (const auto& r : out.reports) {
    if (r.completed) {
      ++completed;
      out.goodput_bytes += r.quote.bytes;
      out.busy_cycles += r.finish - r.start;
      if (r.missed_deadline()) ++out.completed_missed;
      sojourn_ms.push_back(static_cast<double>(r.finish - r.arrival) /
                           out.clock_hz * 1e3);
    } else {
      out.shed_bytes += r.quote.bytes;
    }
  }
  out.miss_rate = completed == 0 ? 0.0
                                 : static_cast<double>(out.completed_missed) /
                                       static_cast<double>(completed);

  std::sort(sojourn_ms.begin(), sojourn_ms.end());
  auto percentile = [&](double p) {
    if (sojourn_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sojourn_ms.size() - 1));
    return sojourn_ms[idx];
  };
  out.p50_ms = percentile(0.50);
  out.p95_ms = percentile(0.95);
  out.p99_ms = percentile(0.99);

  const double busy_s =
      static_cast<double>(out.mix_service_cycles) / out.clock_hz;
  const double offered_s =
      static_cast<double>(std::max<arch::Cycles>(out.last_arrival, 1)) /
      out.clock_hz;
  const double horizon_s =
      static_cast<double>(std::max<arch::Cycles>(out.horizon, 1)) /
      out.clock_hz;
  if (busy_s > 0.0)
    out.capacity_gbs = static_cast<double>(out.offered_bytes) / busy_s / 1e9;
  out.offered_gbs = static_cast<double>(out.offered_bytes) / offered_s / 1e9;
  out.goodput_gbs = static_cast<double>(out.goodput_bytes) / horizon_s / 1e9;
  if (out.busy_cycles > 0)
    out.busy_rate_gbs = static_cast<double>(out.goodput_bytes) /
                        (static_cast<double>(out.busy_cycles) / out.clock_hz) /
                        1e9;
  out.utilization = static_cast<double>(out.busy_cycles) /
                    static_cast<double>(std::max<arch::Cycles>(out.horizon, 1));
  return out;
}

/// Checks I1-I4; `healthy` additionally enables the goodput floor and the
/// 1% miss-rate ceiling (a mid-run outage degrades goodput by design — the
/// conservation and lateness invariants still must hold exactly).
inline std::vector<std::string> check_overload_invariants(
    const OverloadParams& params, const OverloadResult& res, bool healthy) {
  using runtime::exec::ShedReason;
  std::vector<std::string> failures;
  auto fail = [&](const std::string& what) { failures.push_back(what); };

  // I2/I4: exactly one report per submission, typed reasons, byte balance.
  if (res.reports.size() != res.stats.submitted)
    fail("I2: " + std::to_string(res.reports.size()) + " reports for " +
         std::to_string(res.stats.submitted) + " submissions");
  std::uint64_t balance = res.goodput_bytes + res.shed_bytes;
  if (balance != res.offered_bytes)
    fail("I2: offered " + std::to_string(res.offered_bytes) +
         " B != goodput+shed " + std::to_string(balance) + " B");
  for (const auto& r : res.reports) {
    if (!r.completed && r.shed == ShedReason::kNone)
      fail("I4: job " + std::to_string(r.id) + " lost without a typed reason");
    // I1: shed-lag bound, per job against its (possibly re-priced) quote.
    if (r.completed && r.missed_deadline() &&
        r.finish - r.deadline > r.quote.service_cycles)
      fail("I1: job " + std::to_string(r.id) + " late by " +
           std::to_string(r.finish - r.deadline) + " cycles > own service " +
           std::to_string(r.quote.service_cycles));
    if (r.shed == ShedReason::kDeadlineExpiredInQueue && r.finish != r.start)
      fail("I1: expired job " + std::to_string(r.id) + " consumed bandwidth");
  }

  // I3 (cap): the virtual bandwidth server can never beat the analytic
  // pricing of the jobs it actually ran — goodput over the busy windows is
  // exactly the priced rate (ceil rounding only ever slows it down), and
  // goodput over the whole horizon can only be lower still.
  if (res.goodput_gbs > res.busy_rate_gbs * 1.01)
    fail("I3: goodput " + std::to_string(res.goodput_gbs) +
         " GB/s exceeds the analytic rate of the completed jobs " +
         std::to_string(res.busy_rate_gbs) + " GB/s");

  if (healthy) {
    // I3 (floor): sheds, never thrashes. Below capacity goodput tracks the
    // offered load; under overload the server must stay busy — >= 90% of
    // the horizon spent serving completed work, which pins goodput to the
    // accepted mix's own analytic roofline. Around the critical ratio
    // either condition may bind (stochastic arrivals leave real idle gaps
    // at exactly 1.0x), so a point fails only if it does neither.
    const bool tracks_offered =
        res.goodput_gbs >= 0.9 * std::min(res.offered_gbs, res.capacity_gbs);
    if (!tracks_offered && res.utilization < 0.9)
      fail("I3: goodput " + std::to_string(res.goodput_gbs) +
           " GB/s below 0.9x min(offered " + std::to_string(res.offered_gbs) +
           ", capacity " + std::to_string(res.capacity_gbs) +
           ") GB/s and server utilization " + std::to_string(res.utilization) +
           " < 0.9 (thrash/idle instead of shedding)");
    // A single miss is allowed regardless of sample size: it is already
    // bounded by the per-job lag check above, and 1/N exceeds any fixed
    // rate once N is small enough. A *pattern* of misses is thrash.
    if (res.completed_missed > 1 && res.miss_rate >= 0.01)
      fail("I1: accepted-job deadline-miss rate " +
           std::to_string(res.miss_rate * 100.0) + "% (" +
           std::to_string(res.completed_missed) + " jobs) >= 1% at " +
           std::to_string(params.offered_ratio) + "x offered load");
  }
  return failures;
}

}  // namespace mcopt::bench
