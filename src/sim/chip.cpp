#include "sim/chip.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "sim/numa.h"
#include "util/prng.h"

namespace mcopt::sim {

util::Status SimConfig::check() const {
  util::Status status;
  try {
    topology.validate();
  } catch (const std::exception& e) {
    status.note(e.what());
  }
  if (topology.l2.line_bytes != interleave.line_size())
    status.note("SimConfig: L2 line size must match interleave line size");
  if (interleave.num_banks() < interleave.num_controllers())
    status.note("SimConfig: fewer banks than controllers");
  if (model_lockstep && lockstep_window == 0)
    status.note("SimConfig: lockstep_window must be >= 1");
  unsigned num_sockets = 1;
  if (numa.enabled) {
    status.merge(numa.node.check());
    if (numa.socket >= numa.node.num_sockets)
      status.note("SimConfig: numa.socket " + std::to_string(numa.socket) +
                  " out of range for " + std::to_string(numa.node.num_sockets) +
                  " sockets");
    num_sockets = numa.node.num_sockets;
  }
  status.merge(faults.check(interleave, num_sockets));
  if (numa.enabled && status.ok())
    status.merge(check_numa_connectivity(numa.node, faults));
  if (!fault_schedule.empty()) {
    if (fault_schedule.has_relative()) {
      status.note(
          "SimConfig: fault_schedule has unresolved percent bounds "
          "(resolve them against a run horizon first)");
    } else {
      status.merge(fault_schedule.check(interleave, num_sockets));
      // Baseline + scheduled faults combined must keep a survivor in every
      // epoch (the schedule alone may be fine while the union is not).
      if (status.ok())
        for (const FaultSchedule::Epoch& e :
             fault_schedule.epochs(FaultSchedule::kNever, faults)) {
          if (e.faults.surviving_controllers(interleave).empty()) {
            status.note(
                "SimConfig: baseline faults plus schedule offline every "
                "controller from cycle " + std::to_string(e.begin));
            break;
          }
          if (numa.enabled) {
            if (e.faults.surviving_sockets(num_sockets).empty()) {
              status.note(
                  "SimConfig: baseline faults plus schedule offline every "
                  "socket from cycle " + std::to_string(e.begin));
              break;
            }
            const util::Status conn =
                check_numa_connectivity(numa.node, e.faults);
            if (!conn.ok()) {
              status.note("SimConfig: from cycle " + std::to_string(e.begin) +
                          ": " + conn.error().message);
              break;
            }
          }
        }
    }
  }
  return status;
}

void SimConfig::validate() const { check().throw_if_failed(); }

struct Chip::ThreadState {
  unsigned id = 0;
  unsigned core = 0;
  unsigned group = 0;
  AccessProgram* program = nullptr;

  arch::Cycles time = 0;
  bool done = false;
  std::uint64_t iteration = 0;  ///< lockstep progress counter

  // Batched access fetch.
  std::vector<Access> batch;
  std::size_t batch_pos = 0;
  std::size_t batch_len = 0;

  // Coalescing store buffer: ring of entry-free times.
  std::vector<arch::Cycles> store_slot;
  std::size_t store_head = 0;
  std::uint64_t last_store_line = ~std::uint64_t{0};

  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  [[nodiscard]] arch::Cycles drain_time() const {
    arch::Cycles t = time;
    for (arch::Cycles s : store_slot) t = std::max(t, s);
    return t;
  }
};

struct Chip::CoreState {
  arch::Cycles fpu_free = 0;
  std::vector<arch::Cycles> ls_free;     // per LS pipe
  std::vector<arch::Cycles> group_free;  // per thread group
};

Chip::~Chip() = default;
Chip::Chip(Chip&&) noexcept = default;
Chip& Chip::operator=(Chip&&) noexcept = default;

Chip::Chip(SimConfig config, arch::Placement placement)
    : cfg_(std::move(config)),
      placement_(std::move(placement)),
      map_(cfg_.interleave) {
  cfg_.validate();
  if (placement_.hw_strand.empty())
    throw std::invalid_argument("Chip: empty placement");
  for (unsigned strand : placement_.hw_strand)
    if (strand >= cfg_.topology.max_threads())
      throw std::invalid_argument("Chip: placement strand out of range");
}

SimResult Chip::run(Workload& workload) {
  util::Expected<SimResult> result = try_run(workload);
  if (!result) throw std::runtime_error(result.error().message);
  return std::move(result.value());
}

util::Expected<SimResult> Chip::try_run(Workload& workload) {
  if (workload.size() != placement_.hw_strand.size())
    throw std::invalid_argument("Chip::run: workload/placement size mismatch");

  // (Re)build all mutable state so repeated runs are independent.
  l2_ = std::make_unique<Cache>(cfg_.topology.l2, Cache::WritePolicy::kWriteBack,
                                cfg_.l2_index_hash);
  l1_.clear();
  for (unsigned c = 0; c < cfg_.topology.num_cores; ++c)
    l1_.emplace_back(cfg_.topology.l1d, Cache::WritePolicy::kWriteThrough);
  mcs_.clear();
  for (unsigned m = 0; m < cfg_.interleave.num_controllers(); ++m)
    mcs_.emplace_back(cfg_.calibration, cfg_.interleave, 1.0);
  const unsigned sockets = cfg_.numa.enabled ? cfg_.numa.node.num_sockets : 1;
  link_free_.assign(sockets, 0);
  link_stats_.assign(cfg_.numa.enabled ? sockets : 0, SimResult::LinkStats{});
  bank_extra_.assign(cfg_.interleave.num_banks(), 0);
  bank_free_.assign(cfg_.interleave.num_banks(), 0);
  cores_.assign(cfg_.topology.num_cores, CoreState{});
  for (auto& core : cores_) {
    core.ls_free.assign(cfg_.topology.ls_pipes_per_core, 0);
    core.group_free.assign(cfg_.topology.thread_groups_per_core, 0);
  }
  flops_total_ = 0;
  flip_draws_ = 0;
  corrupted_total_ = 0;
  mc_corrupted_.assign(cfg_.interleave.num_controllers(), 0);
  corruption_log_.clear();
  min_iteration_ = 0;
  runnable_ = RunQueue{};
  parked_ = ParkQueue{};
  iter_ring_.assign(cfg_.lockstep_window + 2, 0);

  const unsigned n = num_threads();
  threads_.assign(n, ThreadState{});
  alive_ = n;
  iter_ring_[0] = n;  // every thread starts at iteration 0
  straggle_.assign(n, 0);
  std::uint64_t expected_accesses = 0;
  for (unsigned t = 0; t < n; ++t) {
    ThreadState& ts = threads_[t];
    ts.id = t;
    ts.core = placement_.core_of(t, cfg_.topology);
    ts.group = placement_.group_of(t, cfg_.topology);
    ts.program = workload[t].get();
    ts.batch.resize(256);
    ts.store_slot.assign(cfg_.calibration.store_buffer_entries, 0);
    expected_accesses += ts.program->total_accesses();
    runnable_.emplace(0, t);
  }

  // Fault state: epoch 0 of the schedule (the schedule-free case is a single
  // unbounded epoch carrying the baseline faults). Later epochs are applied
  // by advance_epochs() as the event clock crosses their boundaries.
  sched_epochs_ = cfg_.fault_schedule.epochs(FaultSchedule::kNever, cfg_.faults);
  epoch_idx_ = 0;
  epoch_marks_.clear();
  epoch_link_marks_.clear();
  apply_faults(sched_epochs_.front().faults);

  // Timeline sampling state (cadence 0 = off, next_sample_ stays unreachable).
  const arch::Cycles cadence = cfg_.mc_sample_cadence;
  next_sample_ = cadence == 0 ? ~arch::Cycles{0} : cadence;
  sample_prev_.assign(mcs_.size(), McSnapshot{});
  timeline_.clear();
  timeline_truncated_ = false;

  // One span per chip run; args carry thread count and advertised accesses.
  obs::TraceSpan run_span("sim.run", "sim", n, expected_accesses);

  // Watchdog bookkeeping (active when a cycle budget is configured): a
  // workload is aborted with a diagnostic once every runnable thread's clock
  // has passed the budget, or once a program emits more accesses than it
  // advertised (a malformed generator that would never exhaust).
  const auto processed = [this] {
    std::uint64_t total = 0;
    for (const ThreadState& ts : threads_) total += ts.loads + ts.stores;
    return total;
  };

  std::uint64_t steps = 0;
  while (!runnable_.empty()) {
    const auto [when, tid] = runnable_.top();
    runnable_.pop();
    // The queue pops the globally earliest thread, so once its clock passes
    // a fault transition every later reservation is on the far side too:
    // applying the epoch here keeps the timeline consistent. Requests
    // already enqueued drain with the old parameters (in-flight traffic is
    // not reshaped by a transition).
    if (epoch_idx_ + 1 < sched_epochs_.size() &&
        when >= sched_epochs_[epoch_idx_ + 1].begin)
      advance_epochs(when);
    if (when >= next_sample_) advance_samples(when);
    if (cfg_.cycle_budget != 0 && when > cfg_.cycle_budget) {
      obs::trace_instant("sim.watchdog", "sim", when, cfg_.cycle_budget);
      return util::Expected<SimResult>::failure(
          "Chip::run watchdog: cycle budget " +
          std::to_string(cfg_.cycle_budget) + " exceeded at cycle " +
          std::to_string(when) + " with " + std::to_string(processed()) +
          " of " + std::to_string(expected_accesses) +
          " advertised accesses processed");
    }
    ThreadState& ts = threads_[tid];
    switch (step(ts)) {
      case StepOutcome::kRan:
        runnable_.emplace(ts.time, tid);
        break;
      case StepOutcome::kParked:
      case StepOutcome::kDone:
        break;  // bookkeeping happened inside step()
    }
    // The runaway-program check is amortized: scanning thread counters every
    // step would cost O(threads) per access.
    if (cfg_.cycle_budget != 0 && (++steps & 1023) == 0 &&
        processed() > expected_accesses) {
      return util::Expected<SimResult>::failure(
          "Chip::run watchdog: workload emitted more than its advertised " +
          std::to_string(expected_accesses) + " accesses");
    }
  }
  if (!parked_.empty()) {
    obs::trace_instant("sim.deadlock", "sim", parked_.size(), 0);
    return util::Expected<SimResult>::failure(
        "Chip::run: lockstep deadlock (parked threads remain)");
  }

  SimResult result;
  result.clock_ghz = cfg_.topology.clock_ghz;
  result.thread_finish.resize(n);
  for (unsigned t = 0; t < n; ++t) {
    result.thread_finish[t] = threads_[t].drain_time();
    result.total_cycles = std::max(result.total_cycles, result.thread_finish[t]);
    result.loads += threads_[t].loads;
    result.stores += threads_[t].stores;
  }
  result.accesses = result.loads + result.stores;
  result.flops = flops_total_;
  for (const Cache& l1 : l1_) {
    result.l1.hits += l1.stats().hits;
    result.l1.misses += l1.stats().misses;
    result.l1.evictions += l1.stats().evictions;
    result.l1.writebacks += l1.stats().writebacks;
  }
  result.l2 = l2_->stats();
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  for (MemoryController& mc : mcs_) {
    result.mc.push_back(mc.stats());
    mem_reads += mc.stats().reads;
    mem_writes += mc.stats().writes;
    // The chip is done only after write-backs drain.
    result.total_cycles = std::max(result.total_cycles, mc.stats().last_completion);
  }
  result.mem_read_bytes = mem_reads * cfg_.interleave.line_size();
  result.mem_write_bytes = mem_writes * cfg_.interleave.line_size();
  if (cfg_.numa.enabled) {
    std::uint64_t remote_fills = 0;
    std::uint64_t remote_wbs = 0;
    for (const SimResult::LinkStats& link : link_stats_) {
      remote_fills += link.fills;
      remote_wbs += link.writebacks;
      // The chip is done only after in-flight link transfers drain.
      result.total_cycles = std::max(result.total_cycles, link.last_completion);
    }
    result.links = link_stats_;
    result.remote_read_bytes = remote_fills * cfg_.interleave.line_size();
    result.remote_write_bytes = remote_wbs * cfg_.interleave.line_size();
    // Remote lines never touch a local controller, so fold them into the
    // traffic totals here (memory_bandwidth() must count all lines moved).
    result.mem_read_bytes += result.remote_read_bytes;
    result.mem_write_bytes += result.remote_write_bytes;
  }
  result.degraded = cfg_.faults.any() || !cfg_.fault_schedule.empty();
  result.corrupted_reads = corrupted_total_;
  result.mc_corrupted_reads = mc_corrupted_;
  result.corruption_log = corruption_log_;
  result.mc_utilization.resize(result.mc.size(), 0.0);
  if (result.total_cycles != 0)
    for (std::size_t m = 0; m < result.mc.size(); ++m)
      result.mc_utilization[m] =
          static_cast<double>(result.mc[m].busy_cycles) /
          static_cast<double>(result.total_cycles);

  // Timeline: close out whole rows the drain phase crossed, then a final
  // partial row up to total_cycles so busy totals are conserved.
  if (cfg_.mc_sample_cadence != 0) {
    advance_samples(result.total_cycles);
    const arch::Cycles begin = next_sample_ - cfg_.mc_sample_cadence;
    if (!timeline_truncated_ && result.total_cycles > begin) {
      obs::McSample row;
      row.begin = begin;
      row.end = result.total_cycles;
      row.utilization.resize(mcs_.size(), 0.0);
      for (std::size_t m = 0; m < mcs_.size(); ++m) {
        // Same burst-carry rule as advance_samples(); the run is over, so
        // anything still unattributed lands in this final partial row.
        const arch::Cycles busy = mcs_[m].stats().busy_cycles;
        const arch::Cycles take =
            std::min(busy - sample_prev_[m].busy_cycles, row.length());
        row.utilization[m] =
            static_cast<double>(take) / static_cast<double>(row.length());
        sample_prev_[m].busy_cycles += take;
      }
      timeline_.push_back(std::move(row));
    }
    result.mc_timeline = std::move(timeline_);
    result.mc_timeline_truncated = timeline_truncated_;
    timeline_.clear();
  }

  // Per-epoch breakdown: deltas between the boundary snapshots (epoch k ends
  // at snapshot k; the last entered epoch ends at total_cycles with the
  // final counters). Epochs the run never reached are omitted.
  if (!cfg_.fault_schedule.empty()) {
    const std::size_t line = cfg_.interleave.line_size();
    std::vector<McSnapshot> prev(mcs_.size());
    std::vector<SimResult::LinkStats> link_prev(link_stats_.size());
    for (std::size_t k = 0; k <= epoch_idx_; ++k) {
      SimResult::EpochStats epoch;
      epoch.begin = sched_epochs_[k].begin;
      epoch.end = k < epoch_idx_ ? sched_epochs_[k + 1].begin
                                 : std::max(result.total_cycles,
                                            sched_epochs_[k].begin);
      epoch.faults = sched_epochs_[k].faults.describe();
      const std::vector<McSnapshot>* cut = nullptr;
      std::vector<McSnapshot> final_snap(mcs_.size());
      const std::vector<SimResult::LinkStats>* link_cut = nullptr;
      if (k < epoch_idx_) {
        cut = &epoch_marks_[k];
        link_cut = &epoch_link_marks_[k];
      } else {
        for (std::size_t m = 0; m < mcs_.size(); ++m)
          final_snap[m] = {mcs_[m].stats().reads, mcs_[m].stats().writes,
                           mcs_[m].stats().busy_cycles};
        cut = &final_snap;
        link_cut = &link_stats_;
      }
      epoch.mc_utilization.resize(mcs_.size(), 0.0);
      std::uint64_t lines_moved = 0;
      for (std::size_t m = 0; m < mcs_.size(); ++m) {
        const std::uint64_t dr = (*cut)[m].reads - prev[m].reads;
        const std::uint64_t dw = (*cut)[m].writes - prev[m].writes;
        lines_moved += dr + dw;
        epoch.mem_read_bytes += dr * line;
        epoch.mem_write_bytes += dw * line;
        if (epoch.length() != 0)
          epoch.mc_utilization[m] =
              static_cast<double>((*cut)[m].busy_cycles - prev[m].busy_cycles) /
              static_cast<double>(epoch.length());
      }
      epoch.link_utilization.resize(link_cut->size(), 0.0);
      for (std::size_t t = 0; t < link_cut->size(); ++t) {
        const std::uint64_t dr = (*link_cut)[t].fills - link_prev[t].fills;
        const std::uint64_t dw =
            (*link_cut)[t].writebacks - link_prev[t].writebacks;
        lines_moved += dr + dw;
        epoch.remote_read_bytes += dr * line;
        epoch.remote_write_bytes += dw * line;
        if (epoch.length() != 0)
          epoch.link_utilization[t] =
              static_cast<double>((*link_cut)[t].busy_cycles -
                                  link_prev[t].busy_cycles) /
              static_cast<double>(epoch.length());
      }
      // Remote lines moved as part of this epoch's traffic too.
      epoch.mem_read_bytes += epoch.remote_read_bytes;
      epoch.mem_write_bytes += epoch.remote_write_bytes;
      if (epoch.length() != 0 && result.clock_ghz > 0.0)
        epoch.bandwidth = static_cast<double>(lines_moved * line) /
                          arch::cycles_to_seconds(epoch.length(), result.clock_ghz);
      prev = *cut;
      link_prev = *link_cut;
      result.epochs.push_back(std::move(epoch));
    }
  }
  return result;
}

void Chip::apply_faults(const FaultSpec& active) {
  mc_remap_ = active.controller_remap(cfg_.interleave);
  // A derated socket slows its own controllers uniformly on top of any
  // per-controller derate (remote fills from it are scaled in the routes).
  const double socket_factor =
      cfg_.numa.enabled ? active.socket_derate_of(cfg_.numa.socket) : 1.0;
  for (unsigned m = 0; m < static_cast<unsigned>(mcs_.size()); ++m)
    mcs_[m].set_rate_factor(active.derate_of(m) * socket_factor);
  if (cfg_.numa.enabled) {
    const NumaRoutes routes =
        resolve_numa_routes(cfg_.numa.node, active, cfg_.numa.socket);
    home_serving_ = routes.home_serving;
    serve_latency_ = routes.latency;
    serve_line_cycles_ = routes.line_cycles;
  }
  for (unsigned b = 0; b < static_cast<unsigned>(bank_extra_.size()); ++b)
    bank_extra_[b] = active.bank_extra(b);
  for (unsigned t = 0; t < static_cast<unsigned>(straggle_.size()); ++t)
    straggle_[t] = active.straggle_of(t);
  flip_rate_.assign(mcs_.size(), 0.0);
  for (unsigned m = 0; m < static_cast<unsigned>(mcs_.size()); ++m)
    flip_rate_[m] = active.flip_rate_of(m);
}

void Chip::advance_epochs(arch::Cycles now) {
  while (epoch_idx_ + 1 < sched_epochs_.size() &&
         now >= sched_epochs_[epoch_idx_ + 1].begin) {
    std::vector<McSnapshot> snap(mcs_.size());
    for (std::size_t m = 0; m < mcs_.size(); ++m)
      snap[m] = {mcs_[m].stats().reads, mcs_[m].stats().writes,
                 mcs_[m].stats().busy_cycles};
    epoch_marks_.push_back(std::move(snap));
    epoch_link_marks_.push_back(link_stats_);
    ++epoch_idx_;
    apply_faults(sched_epochs_[epoch_idx_].faults);
    obs::trace_instant("sim.epoch", "sim", epoch_idx_,
                       sched_epochs_[epoch_idx_].begin);
  }
}

void Chip::advance_samples(arch::Cycles now) {
  const arch::Cycles cadence = cfg_.mc_sample_cadence;
  while (next_sample_ <= now) {
    if (timeline_.size() >= kTimelineRowCap) {
      // Cap hit: drop the tail, park the boundary out of reach so the event
      // loop stops paying for the check.
      timeline_truncated_ = true;
      next_sample_ = ~arch::Cycles{0};
      return;
    }
    obs::McSample row;
    row.begin = next_sample_ - cadence;
    row.end = next_sample_;
    row.utilization.resize(mcs_.size(), 0.0);
    for (std::size_t m = 0; m < mcs_.size(); ++m) {
      // A burst's full service is charged to busy_cycles at dispatch, so a
      // boundary can cut mid-burst with more busy than the row holds: cap
      // the row at 1.0 and carry the excess into the next row (sample_prev_
      // only advances by what was attributed, keeping totals conserved).
      const arch::Cycles busy = mcs_[m].stats().busy_cycles;
      const arch::Cycles take =
          std::min(busy - sample_prev_[m].busy_cycles, cadence);
      row.utilization[m] =
          static_cast<double>(take) / static_cast<double>(cadence);
      sample_prev_[m].busy_cycles += take;
    }
    timeline_.push_back(std::move(row));
    next_sample_ += cadence;
  }
}

arch::Cycles Chip::link_transfer(arch::Cycles when, unsigned target,
                                 bool is_writeback) {
  // One earliest-start port per peer socket: every line (fill or write-back)
  // occupies it for the surviving path's per-line cycles. Serializing both
  // directions on one port is the link's bandwidth cap — the asymmetry the
  // cross-socket sweep measures.
  const arch::Cycles start = std::max(link_free_[target], when);
  const arch::Cycles done = start + serve_line_cycles_[target];
  link_free_[target] = done;
  SimResult::LinkStats& stats = link_stats_[target];
  (is_writeback ? stats.writebacks : stats.fills) += 1;
  stats.busy_cycles += serve_line_cycles_[target];
  stats.last_completion = std::max(stats.last_completion, done);
  return done;
}

arch::Cycles Chip::miss_to_l2(arch::Cycles when, arch::Addr addr, bool is_store) {
  const arch::Calibration& cal = cfg_.calibration;
  const bool numa = cfg_.numa.enabled;
  const unsigned self = cfg_.numa.socket;
  // L2 bank occupancy (remote lines are cached locally, so they occupy the
  // local bank like any other line).
  const unsigned bank = map_.global_bank_of(addr);
  const arch::Cycles bank_start = std::max(bank_free_[bank], when);
  bank_free_[bank] = bank_start + cal.l2_bank_busy + bank_extra_[bank];

  const CacheOutcome outcome = is_store ? l2_->store(addr) : l2_->load(addr);
  if (outcome.writeback_line != CacheOutcome::kNoEviction) {
    // Asynchronous write-back of the evicted dirty line; consumes write
    // bandwidth on the evicted line's serving side but blocks nobody.
    const unsigned wb_serving =
        numa ? home_serving_[cfg_.numa.node.home_socket_of(
                   outcome.writeback_line)]
             : self;
    if (numa && wb_serving != self) {
      link_transfer(bank_start, wb_serving, /*is_writeback=*/true);
    } else {
      mcs_[mc_remap_[map_.controller_of(outcome.writeback_line)]].request(
          bank_start, /*is_write=*/true, outcome.writeback_line);
    }
  }
  if (outcome.hit) return bank_start + cal.l2_hit_latency;

  // L2 miss: line fetch (an RFO read when triggered by a store, since the L2
  // is write-allocate).
  const unsigned home_serving =
      numa ? home_serving_[cfg_.numa.node.home_socket_of(addr)] : self;
  if (numa && home_serving != self) {
    // Remote fill: serialize on the link port, then pay DRAM latency plus
    // the path's extra fill latency. The peer's controller occupancy is
    // folded into the per-line link cost; flip faults are per local
    // controller and do not apply.
    const arch::Cycles transfer_done =
        link_transfer(bank_start, home_serving, /*is_writeback=*/false);
    return std::max(transfer_done,
                    bank_start + cal.mem_latency + serve_latency_[home_serving]);
  }
  // Local fill: DRAM latency overlaps the controller's queue — the requester
  // sees whichever is later, queue drain or latency. Offline controllers are
  // remapped to their designated survivor.
  const unsigned serving = mc_remap_[map_.controller_of(addr)];
  MemoryController& mc = mcs_[serving];
  const arch::Cycles service_done = mc.request(bank_start, /*is_write=*/false, addr);
  maybe_flip(bank_start, addr, serving);
  return std::max(service_done, bank_start + cal.mem_latency);
}

void Chip::maybe_flip(arch::Cycles when, arch::Addr addr, unsigned controller) {
  const double rate = flip_rate_[controller];
  if (rate <= 0.0) return;
  // Counter-mode splitmix64: draw k is a pure function of (flip_seed, k), so
  // the corruption pattern is independent of event-loop interleaving details
  // and replays exactly.
  std::uint64_t state = cfg_.flip_seed + ++flip_draws_;
  const double u =
      static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  if (u >= rate) return;
  ++corrupted_total_;
  ++mc_corrupted_[controller];
  if (corruption_log_.size() < SimResult::kCorruptionLogCap)
    corruption_log_.push_back({when, addr, controller});
}

void Chip::advance_min_iteration(arch::Cycles now) {
  // Running iterations span at most [min, min + window], so the first
  // occupied ring slot is at most window + 1 steps away.
  const std::size_t ring = iter_ring_.size();
  while (alive_ != 0 && iter_ring_[min_iteration_ % ring] == 0) ++min_iteration_;
  while (!parked_.empty() &&
         parked_.top().first <= min_iteration_ + cfg_.lockstep_window) {
    const unsigned tid = parked_.top().second;
    parked_.pop();
    ThreadState& ts = threads_[tid];
    ts.time = std::max(ts.time, now);
    runnable_.emplace(ts.time, tid);
  }
}

Chip::StepOutcome Chip::step(ThreadState& ts) {
  // Refill the batch if needed.
  if (ts.batch_pos == ts.batch_len) {
    ts.batch_len = ts.program->next_batch(ts.batch);
    ts.batch_pos = 0;
    if (ts.batch_len == 0) {
      // Program exhausted: retire the thread from lockstep accounting.
      ts.done = true;
      --alive_;
      if (cfg_.model_lockstep) {
        --iter_ring_[ts.iteration % iter_ring_.size()];
        if (alive_ != 0 && ts.iteration == min_iteration_)
          advance_min_iteration(ts.time);
      }
      return StepOutcome::kDone;
    }
  }

  // Lockstep gate: peek before consuming.
  if (cfg_.model_lockstep && ts.batch[ts.batch_pos].begins_iteration) {
    const std::uint64_t next = ts.iteration + 1;
    if (next > min_iteration_ + cfg_.lockstep_window) {
      parked_.emplace(next, ts.id);
      return StepOutcome::kParked;
    }
  }

  const Access a = ts.batch[ts.batch_pos++];
  // Straggler-strand fault: the thread loses extra cycles on every access.
  ts.time += straggle_[ts.id];
  if (a.begins_iteration) {
    const std::uint64_t prev = ts.iteration++;
    if (cfg_.model_lockstep) {
      const std::size_t ring = iter_ring_.size();
      --iter_ring_[prev % ring];
      ++iter_ring_[ts.iteration % ring];
      if (prev == min_iteration_ && iter_ring_[prev % ring] == 0)
        advance_min_iteration(ts.time);
    }
  }

  const arch::Calibration& cal = cfg_.calibration;
  CoreState& core = cores_[ts.core];

  // Floating-point work preceding this access serializes on the core FPU.
  if (a.flops_before != 0) {
    flops_total_ += a.flops_before;
    if (cfg_.model_fpu) {
      const arch::Cycles start = std::max(core.fpu_free, ts.time);
      core.fpu_free = start + a.flops_before * cal.fp_op_cost;
      ts.time = core.fpu_free;
    }
  }

  arch::Cycles issue = ts.time;
  if (cfg_.model_issue) {
    // One instruction per cycle per thread group...
    arch::Cycles& group = core.group_free[ts.group];
    issue = std::max(group, ts.time);
    group = issue + cal.issue_cost;
    // ...and an LS pipe slot (two pipes shared by the whole core).
    auto pipe = std::min_element(core.ls_free.begin(), core.ls_free.end());
    issue = std::max(issue, *pipe);
    *pipe = issue + 1;
    ts.time = issue + cal.issue_cost;
  }

  if (a.op == Op::kLoad) {
    ++ts.loads;
    if (cfg_.model_l1) {
      const CacheOutcome l1 = l1_[ts.core].load(a.addr);
      if (l1.hit) return StepOutcome::kRan;  // hit under the single miss
    }
    // Single outstanding miss: the strand blocks until the fill returns.
    ts.time = miss_to_l2(issue, a.addr, /*is_store=*/false);
    return StepOutcome::kRan;
  }

  // Store path: write-through L1 (update-on-hit costs nothing extra),
  // then the coalescing store buffer.
  ++ts.stores;
  if (cfg_.model_l1) (void)l1_[ts.core].store(a.addr);
  const std::uint64_t line = a.addr >> cfg_.interleave.line_bits;
  if (cfg_.model_store_buffer && line == ts.last_store_line)
    return StepOutcome::kRan;  // coalesced with the youngest buffered store
  ts.last_store_line = line;

  if (cfg_.model_store_buffer) {
    arch::Cycles& slot = ts.store_slot[ts.store_head];
    ts.store_head = (ts.store_head + 1) % ts.store_slot.size();
    if (slot > ts.time) ts.time = slot;  // buffer full: strand stalls
    const arch::Cycles drain_at = std::max(issue, ts.time);
    // Entry occupies the buffer until the L2 write (incl. RFO) completes.
    slot = miss_to_l2(drain_at, a.addr, /*is_store=*/true);
  } else {
    (void)miss_to_l2(issue, a.addr, /*is_store=*/true);
  }
  return StepOutcome::kRan;
}

}  // namespace mcopt::sim
