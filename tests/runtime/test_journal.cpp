// Write-ahead journal: format round-trips, the write->fsync->ack ordering
// surface (uncommitted tails are crash losses, committed records never are),
// and the fuzzing contract from DESIGN.md §4l — truncation at EVERY byte
// offset and a single-bit flip at EVERY bit of a journal must yield either a
// typed refusal or a clean, reported tail-truncation whose surviving records
// are a byte-exact prefix of the original history. Silent corruption (a
// successful scan whose records differ from what was written) is the one
// outcome that must be impossible.

#include "runtime/durable/journal.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/crc.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace mcopt::runtime::durable {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcopt_jnl_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

std::vector<std::uint8_t> read_file(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A small mixed-record journal: submissions, a completion, a shed, a
/// snapshot mark. Returns the committed records in append order.
std::vector<Record> build_journal(const std::string& p, std::uint64_t user) {
  auto writer = JournalWriter::create(p, user);
  EXPECT_TRUE(writer.has_value()) << writer.error().message;
  JournalWriter& w = *writer.value();

  std::vector<Record> out;
  auto add = [&](RecordType t, const std::vector<std::uint8_t>& payload) {
    const std::uint64_t seq = w.append(t, payload);
    out.push_back(Record{t, seq, payload});
  };

  for (std::uint64_t i = 1; i <= 4; ++i) {
    SubmissionRecord s;
    s.submission_id = i;
    s.exec_job_id = 100 + i;
    s.tenant = static_cast<std::uint32_t>(1 + i % 2);
    s.verdict = i == 3 ? 7u : 0u;
    s.kind = 0;
    s.priority = 1;
    s.n = 4096 + i;
    s.iterations = 3;
    s.deadline = ~std::uint64_t{0};
    s.arrival = i * 1000;
    add(RecordType::kSubmission, s.encode());
  }
  CompletionRecord c;
  c.submission_id = 1;
  c.served_bytes = 123456;
  c.finish = 99000;
  c.field_crc = 0xDEADBEEF;
  add(RecordType::kCompletion, c.encode());
  ShedRecord sh;
  sh.submission_id = 3;
  sh.reason = 7;
  sh.origin = static_cast<std::uint32_t>(ShedOrigin::kDoor);
  sh.at = 3000;
  add(RecordType::kShed, sh.encode());
  SnapshotMarkRecord m;
  m.snapshot_id = 1;
  m.covered_sequence = 6;
  add(RecordType::kSnapshotMark, m.encode());

  EXPECT_TRUE(w.commit().ok());
  return out;
}

void expect_prefix(const std::vector<Record>& got,
                   const std::vector<Record>& full, const char* what) {
  ASSERT_LE(got.size(), full.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint32_t>(got[i].type),
              static_cast<std::uint32_t>(full[i].type))
        << what << " record " << i;
    EXPECT_EQ(got[i].sequence, full[i].sequence) << what << " record " << i;
    EXPECT_EQ(got[i].payload, full[i].payload) << what << " record " << i;
  }
}

// --- round-trips -----------------------------------------------------------

TEST_F(JournalTest, CommittedRecordsRecoverExactly) {
  const std::string p = path("j.mjnl");
  const std::vector<Record> written = build_journal(p, 42);

  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value()) << rec.error().message;
  EXPECT_EQ(rec.value().user, 42u);
  EXPECT_EQ(rec.value().dropped_bytes, 0u);
  EXPECT_TRUE(rec.value().tail_note.empty());
  EXPECT_FALSE(rec.value().sealed);
  EXPECT_EQ(rec.value().records.size(), written.size());
  expect_prefix(rec.value().records, written, "clean recovery");
  EXPECT_EQ(rec.value().next_sequence, written.size() + 1);
  EXPECT_EQ(rec.value().valid_bytes, fs::file_size(p));
}

TEST_F(JournalTest, SealMarksCleanShutdown) {
  const std::string p = path("j.mjnl");
  (void)build_journal(p, 1);
  {
    auto rec = recover_journal(p);
    ASSERT_TRUE(rec.has_value());
    auto w = JournalWriter::reopen(p, rec.value().valid_bytes,
                                   rec.value().next_sequence);
    ASSERT_TRUE(w.has_value()) << w.error().message;
    ASSERT_TRUE(w.value()->seal().ok());
    EXPECT_TRUE(w.value()->sealed());
  }
  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec.value().sealed);
  EXPECT_EQ(rec.value().records.back().type, RecordType::kSeal);
}

TEST_F(JournalTest, UncommittedTailIsACrashLoss) {
  // append() without commit() buffers in stdio; the destructor deliberately
  // closes without flushing semantics beyond what stdio forces. Whatever
  // survives must still recover to a clean PREFIX — the contract is that an
  // un-acked record may be lost, never that it may be mangled.
  const std::string p = path("j.mjnl");
  std::vector<Record> written;
  {
    auto writer = JournalWriter::create(p, 9);
    ASSERT_TRUE(writer.has_value());
    SubmissionRecord s;
    s.submission_id = 1;
    const std::uint64_t seq =
        writer.value()->append(RecordType::kSubmission, s.encode());
    written.push_back(Record{RecordType::kSubmission, seq, s.encode()});
    ASSERT_TRUE(writer.value()->commit().ok());
    SubmissionRecord s2;
    s2.submission_id = 2;
    (void)writer.value()->append(RecordType::kSubmission, s2.encode());
    EXPECT_EQ(writer.value()->uncommitted(), 1u);
    // destructor: no commit
  }
  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value()) << rec.error().message;
  ASSERT_GE(rec.value().records.size(), 1u);
  EXPECT_EQ(rec.value().records[0].payload, written[0].payload);
}

TEST_F(JournalTest, MissingFileIsATypedRefusal) {
  auto rec = recover_journal(path("nope.mjnl"));
  ASSERT_FALSE(rec.has_value());
  EXPECT_NE(rec.error().message.find("journal"), std::string::npos);
}

TEST_F(JournalTest, ForeignFileIsATypedRefusal) {
  const std::string p = path("not_a_journal.bin");
  write_file(p, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd', '!',
                 '!', '!', '!', '!', '!', '!', '!', '!', '!', '!'});
  auto rec = recover_journal(p);
  ASSERT_FALSE(rec.has_value());
}

TEST_F(JournalTest, PayloadDecodersRejectWrongSizes) {
  const std::vector<std::uint8_t> junk(7, 0xAB);
  EXPECT_FALSE(SubmissionRecord::decode(junk).has_value());
  EXPECT_FALSE(CompletionRecord::decode(junk).has_value());
  EXPECT_FALSE(ShedRecord::decode(junk).has_value());
  EXPECT_FALSE(SnapshotMarkRecord::decode(junk).has_value());

  SubmissionRecord s;
  s.submission_id = 77;
  s.arrival = 123;
  auto back = SubmissionRecord::decode(s.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().submission_id, 77u);
  EXPECT_EQ(back.value().arrival, 123u);
}

// --- registry metrics ------------------------------------------------------

TEST_F(JournalTest, WriterAndRecoveryAdvanceRegistryCounters) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& records = reg.counter("mcopt_journal_records_total",
                              "Records appended to the write-ahead job journal");
  auto& commits = reg.counter("mcopt_journal_commits_total",
                              "Journal group commits (the submission ack points)");
  auto& fsyncs = reg.counter("mcopt_journal_fsyncs_total",
                             "fsync calls issued by the journal writer");
  auto& recoveries = reg.counter("mcopt_journal_recoveries_total",
                                 "Journal recovery scans performed");
  auto& replayed = reg.counter("mcopt_journal_replayed_records_total",
                               "Intact records returned by journal recovery");
  auto& torn =
      reg.counter("mcopt_journal_truncated_tails_total",
                  "Recoveries that found and reported a torn/corrupt tail");
  const std::uint64_t records0 = records.value();
  const std::uint64_t commits0 = commits.value();
  const std::uint64_t fsyncs0 = fsyncs.value();
  const std::uint64_t recoveries0 = recoveries.value();
  const std::uint64_t replayed0 = replayed.value();
  const std::uint64_t torn0 = torn.value();

  const std::string p = path("metrics.mjnl");
  const std::vector<Record> written = build_journal(p, 9);  // 7 records
  EXPECT_EQ(records.value() - records0, written.size());
  EXPECT_EQ(commits.value() - commits0, 1u);
  // create() syncs the header, commit() syncs the batch: at least 2.
  EXPECT_GE(fsyncs.value() - fsyncs0, 2u);

  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(recoveries.value() - recoveries0, 1u);
  EXPECT_EQ(replayed.value() - replayed0, written.size());
  EXPECT_EQ(torn.value() - torn0, 0u);

  // A torn tail is counted as such on the next scan.
  std::vector<std::uint8_t> bytes = read_file(p);
  bytes.resize(bytes.size() - 3);
  write_file(p, bytes);
  ASSERT_TRUE(recover_journal(p).has_value());
  EXPECT_EQ(torn.value() - torn0, 1u);
  EXPECT_EQ(recoveries.value() - recoveries0, 2u);
}

// --- version compatibility (journal v2 trace context) ----------------------

/// Hand-built journal header with an arbitrary version stamp.
std::vector<std::uint8_t> make_header(std::uint32_t version,
                                      std::uint64_t user) {
  std::vector<std::uint8_t> h;
  wire::put_u32(h, kJournalMagic);
  wire::put_u32(h, version);
  wire::put_u64(h, user);
  wire::put_u32(h, util::crc32c(h.data(), h.size()));
  return h;
}

/// Hand-built record frame (prefix + payload + CRC), matching the writer's
/// on-disk layout byte for byte.
void append_frame(std::vector<std::uint8_t>& out, RecordType t,
                  std::uint64_t seq, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(frame, static_cast<std::uint32_t>(t));
  wire::put_u64(frame, seq);
  frame.insert(frame.end(), payload.begin(), payload.end());
  wire::put_u32(frame, util::crc32c(frame.data(), frame.size()));
  out.insert(out.end(), frame.begin(), frame.end());
}

TEST_F(JournalTest, SubmissionRecordRoundTripsTraceContext) {
  SubmissionRecord s;
  s.submission_id = 11;
  s.trace_id = 0xABCDEF0123456789ull;
  s.parent_span = 0x42;
  const std::vector<std::uint8_t> payload = s.encode();
  EXPECT_EQ(payload.size(), 80u);  // journal v2 layout
  auto back = SubmissionRecord::decode(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().trace_id, 0xABCDEF0123456789ull);
  EXPECT_EQ(back.value().parent_span, 0x42u);
}

TEST_F(JournalTest, V1SubmissionPayloadDecodesWithZeroTraceContext) {
  SubmissionRecord s;
  s.submission_id = 21;
  s.tenant = 3;
  s.n = 8192;
  s.arrival = 777;
  s.trace_id = 0x1111;  // must be SHED by the 64-byte truncation below
  std::vector<std::uint8_t> v1 = s.encode();
  v1.resize(64);  // exactly the v1 payload: v2 appended the context at the end
  auto back = SubmissionRecord::decode(v1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().submission_id, 21u);
  EXPECT_EQ(back.value().tenant, 3u);
  EXPECT_EQ(back.value().n, 8192u);
  EXPECT_EQ(back.value().arrival, 777u);
  EXPECT_EQ(back.value().trace_id, 0u);
  EXPECT_EQ(back.value().parent_span, 0u);
}

TEST_F(JournalTest, CompletionRecordRoundTripsPlanMask) {
  CompletionRecord c;
  c.submission_id = 5;
  c.served_bytes = 4096;
  c.plan_mask = 0b1010u;
  auto back = CompletionRecord::decode(c.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().plan_mask, 0b1010u);
  // v1 wrote the spare word as zero; the same 32 bytes decode to an empty
  // plan mask (replay charges the unknown-controller cell).
  c.plan_mask = 0;
  back = CompletionRecord::decode(c.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value().plan_mask, 0u);
}

TEST_F(JournalTest, V1JournalRecoversUnmodified) {
  // A journal exactly as a v1 writer left it: version 1 header, 64-byte
  // submission payloads, completion spare word zero.
  SubmissionRecord s;
  s.submission_id = 1;
  s.tenant = 2;
  s.n = 4096;
  std::vector<std::uint8_t> sub = s.encode();
  sub.resize(64);
  CompletionRecord c;
  c.submission_id = 1;
  c.served_bytes = 999;
  std::vector<std::uint8_t> bytes = make_header(1, 42);
  append_frame(bytes, RecordType::kSubmission, 1, sub);
  append_frame(bytes, RecordType::kCompletion, 2, c.encode());
  const std::string p = path("v1.mjnl");
  write_file(p, bytes);

  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value()) << rec.error().message;
  const JournalRecovery& r = rec.value();
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(r.dropped_bytes, 0u);
  ASSERT_EQ(r.records.size(), 2u);
  auto sback = SubmissionRecord::decode(r.records[0].payload);
  ASSERT_TRUE(sback.has_value());
  EXPECT_EQ(sback.value().tenant, 2u);
  EXPECT_EQ(sback.value().trace_id, 0u);
  auto cback = CompletionRecord::decode(r.records[1].payload);
  ASSERT_TRUE(cback.has_value());
  EXPECT_EQ(cback.value().served_bytes, 999u);
  EXPECT_EQ(cback.value().plan_mask, 0u);
}

TEST_F(JournalTest, VersionsOutsideTheReadRangeAreRefused) {
  for (const std::uint32_t bad :
       {0u, kJournalVersion + 1, kJournalVersion + 100}) {
    const std::string p = path("v" + std::to_string(bad) + ".mjnl");
    write_file(p, make_header(bad, 1));
    auto rec = recover_journal(p);
    EXPECT_FALSE(rec.has_value()) << "version " << bad << " accepted";
    if (!rec.has_value())
      EXPECT_NE(rec.error().message.find("version"), std::string::npos)
          << rec.error().message;
  }
  // Both ends of the supported range still open.
  for (const std::uint32_t good : {kJournalMinVersion, kJournalVersion}) {
    const std::string p = path("ok" + std::to_string(good) + ".mjnl");
    write_file(p, make_header(good, 1));
    EXPECT_TRUE(recover_journal(p).has_value()) << "version " << good;
  }
}

// --- fuzzing: truncation at every offset -----------------------------------

TEST_F(JournalTest, TruncationAtEveryOffsetIsRefusedOrCleanlyTruncated) {
  const std::string p = path("full.mjnl");
  const std::vector<Record> written = build_journal(p, 5);
  const std::vector<std::uint8_t> bytes = read_file(p);
  ASSERT_GT(bytes.size(), kJournalHeaderBytes);

  const std::string tp = path("trunc.mjnl");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(tp, {bytes.begin(), bytes.begin() + len});
    auto rec = recover_journal(tp);
    if (len < kJournalHeaderBytes) {
      EXPECT_FALSE(rec.has_value()) << "short header accepted at " << len;
      continue;
    }
    ASSERT_TRUE(rec.has_value())
        << "valid prefix refused at " << len << ": " << rec.error().message;
    const JournalRecovery& r = rec.value();
    expect_prefix(r.records, written,
                  ("truncate@" + std::to_string(len)).c_str());
    // Accounting must be exact and never silent: every byte is either in
    // the intact prefix or reported dropped.
    EXPECT_EQ(r.valid_bytes + r.dropped_bytes, len) << "at " << len;
    if (r.dropped_bytes > 0)
      EXPECT_FALSE(r.tail_note.empty()) << "silent drop at " << len;
    if (r.records.size() < written.size())
      EXPECT_LT(len, bytes.size());  // only a shorter file may lose records
  }
}

TEST_F(JournalTest, TruncateJournalDropsTheTailOnDisk) {
  const std::string p = path("j.mjnl");
  const std::vector<Record> written = build_journal(p, 5);
  const std::vector<std::uint8_t> bytes = read_file(p);

  // Cut mid-record, recover, physically truncate, re-recover: clean.
  const std::size_t cut = bytes.size() - 3;
  write_file(p, {bytes.begin(), bytes.begin() + cut});
  auto rec = recover_journal(p);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(rec.value().dropped_bytes, 0u);
  ASSERT_TRUE(truncate_journal(p, rec.value().valid_bytes).ok());
  EXPECT_EQ(fs::file_size(p), rec.value().valid_bytes);

  auto clean = recover_journal(p);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean.value().dropped_bytes, 0u);
  EXPECT_EQ(clean.value().records.size(), written.size() - 1);
}

// --- fuzzing: a single-bit flip at every bit -------------------------------

TEST_F(JournalTest, SingleBitFlipAtEveryOffsetNeverCorruptsSilently) {
  const std::string p = path("full.mjnl");
  const std::vector<Record> written = build_journal(p, 5);
  const std::vector<std::uint8_t> bytes = read_file(p);

  const std::string fp = path("flip.mjnl");
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mut = bytes;
      mut[byte] = static_cast<std::uint8_t>(mut[byte] ^ (1u << bit));
      write_file(fp, mut);
      auto rec = recover_journal(fp);
      const std::string where =
          "byte " + std::to_string(byte) + " bit " + std::to_string(bit);
      if (byte < kJournalHeaderBytes) {
        // Header damage: the file's identity is in doubt — typed refusal.
        EXPECT_FALSE(rec.has_value()) << "damaged header accepted at " << where;
        continue;
      }
      // Body damage: refusal is never the answer (the header is intact),
      // and whatever is recovered must be a byte-exact prefix with the
      // damage reported — never a silent full parse of altered history.
      ASSERT_TRUE(rec.has_value()) << "refused at " << where << ": "
                                   << rec.error().message;
      const JournalRecovery& r = rec.value();
      expect_prefix(r.records, written, where.c_str());
      EXPECT_LT(r.records.size(), written.size())
          << "flip at " << where << " survived a full parse";
      EXPECT_GT(r.dropped_bytes, 0u) << where;
      EXPECT_FALSE(r.tail_note.empty()) << where;
      EXPECT_EQ(r.valid_bytes + r.dropped_bytes, bytes.size()) << where;
    }
  }
}

// --- idempotent replay (scan level) ----------------------------------------

TEST_F(JournalTest, RecoveryIsIdempotent) {
  // recover_journal is read-only: scanning twice — or scanning, truncating
  // the reported tail, and scanning again — yields the same history.
  const std::string p = path("j.mjnl");
  (void)build_journal(p, 5);
  std::vector<std::uint8_t> bytes = read_file(p);
  bytes.resize(bytes.size() - 5);  // torn tail
  write_file(p, bytes);

  auto first = recover_journal(p);
  auto second = recover_journal(p);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first.value().records.size(), second.value().records.size());
  expect_prefix(first.value().records, second.value().records, "rescan");
  EXPECT_EQ(first.value().valid_bytes, second.value().valid_bytes);
  EXPECT_EQ(first.value().dropped_bytes, second.value().dropped_bytes);

  ASSERT_TRUE(truncate_journal(p, first.value().valid_bytes).ok());
  auto third = recover_journal(p);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third.value().records.size(), first.value().records.size());
  EXPECT_EQ(third.value().dropped_bytes, 0u);
  EXPECT_EQ(third.value().next_sequence, first.value().next_sequence);
}

}  // namespace
}  // namespace mcopt::runtime::durable
