#include "trace/virtual_arena.h"

#include <limits>
#include <stdexcept>

namespace mcopt::trace {

arch::Addr VirtualArena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("VirtualArena: alignment must be a power of two");
  constexpr arch::Addr kMax = std::numeric_limits<arch::Addr>::max();
  // Both the align round-up and the bump can wrap Addr; a wrapped arena would
  // hand out overlapping (or tiny) addresses and silently corrupt every
  // aliasing experiment built on top.
  if (next_ > kMax - (align - 1))
    throw std::overflow_error("VirtualArena: alignment round-up overflows the address space");
  const arch::Addr start = (next_ + align - 1) / align * align;
  if (bytes > kMax - start)
    throw std::overflow_error("VirtualArena: allocation of " +
                              std::to_string(bytes) +
                              " bytes overflows the address space");
  next_ = start + bytes;
  return start;
}

arch::Addr VirtualArena::malloc_like(std::size_t bytes) {
  // glibc: 8-byte header before a 16-byte-aligned block; usable sizes round
  // to 16. The net effect for back-to-back large mallocs: bases separated by
  // round16(bytes) + 16.
  if (bytes > std::numeric_limits<std::size_t>::max() - 32)
    throw std::overflow_error("VirtualArena: malloc_like size overflows the address space");
  const arch::Addr start = allocate(bytes + 16, 16) + 16;
  next_ = start + (bytes + 15) / 16 * 16;
  return start;
}

VirtualSegArray::VirtualSegArray(VirtualArena& arena,
                                 std::vector<std::size_t> segment_elems,
                                 std::size_t elem_bytes,
                                 const seg::LayoutSpec& spec)
    : elem_bytes_(elem_bytes), sizes_(std::move(segment_elems)) {
  if (elem_bytes_ == 0) throw std::invalid_argument("VirtualSegArray: zero elem size");
  std::vector<std::size_t> bytes(sizes_.size());
  for (std::size_t s = 0; s < sizes_.size(); ++s) bytes[s] = sizes_[s] * elem_bytes_;
  const seg::LayoutResult layout = seg::compute_layout(bytes, spec);
  base_ = arena.allocate(layout.total_bytes, spec.base_align);
  positions_ = layout.segment_pos;
  for (std::size_t n : sizes_) total_ += n;
}

VirtualSegArray VirtualSegArray::even(VirtualArena& arena, std::size_t n,
                                      std::size_t parts, std::size_t elem_bytes,
                                      const seg::LayoutSpec& spec) {
  return VirtualSegArray(arena, seg::split_even(n, parts), elem_bytes, spec);
}

}  // namespace mcopt::trace
