// runtime::Supervisor: fault diagnosis, debounce, backoff, and the replan
// idempotence guarantees (a cleared fault round-trips to the healthy plan;
// unchanged fault state never replans twice).

#include <gtest/gtest.h>

#include <vector>

#include "arch/address_map.h"
#include "runtime/supervisor.h"
#include "seg/planner.h"

namespace mcopt::runtime {
namespace {

const arch::InterleaveSpec kSpec{};  // 4 controllers

Sample sample_at(arch::Cycles begin, std::vector<double> util) {
  return Sample{begin, begin + 10000, std::move(util)};
}

DetectorConfig small_backoff() {
  DetectorConfig cfg;
  cfg.backoff = {.initial = 50000, .multiplier = 2.0, .cap = 1600000,
                 .jitter = 0.0};
  return cfg;
}

TEST(DetectorConfig, CheckAccumulatesEveryViolation) {
  DetectorConfig cfg;
  cfg.stable_window = 0;
  cfg.offline_threshold = 1.5;
  cfg.replan_gain = 0.5;
  const auto status = cfg.check();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("stable_window"), std::string::npos);
  EXPECT_NE(status.error().message.find("offline_threshold"), std::string::npos);
  EXPECT_NE(status.error().message.find("replan_gain"), std::string::npos);
  EXPECT_TRUE(DetectorConfig{}.check().ok());
}

TEST(SupervisorDiagnose, FlagsDeadController) {
  Supervisor sup(small_backoff(), kSpec);
  const auto diag = sup.diagnose({0.6, 0.01, 0.55, 0.58});
  EXPECT_TRUE(diag.is_offline(1));
  EXPECT_EQ(diag.offline_controllers.size(), 1u);
  EXPECT_TRUE(diag.derates.empty());
}

TEST(SupervisorDiagnose, FlagsSaturatedControllerAsDerated) {
  Supervisor sup(small_backoff(), kSpec);
  const auto diag = sup.diagnose({0.95, 0.4, 0.42, 0.38});
  EXPECT_TRUE(diag.offline_controllers.empty());
  ASSERT_EQ(diag.derates.size(), 1u);
  EXPECT_EQ(diag.derates[0].controller, 0u);
  EXPECT_LT(diag.derates[0].factor, 1.0);
}

TEST(SupervisorDiagnose, BalancedOrIdleIsHealthy) {
  Supervisor sup(small_backoff(), kSpec);
  EXPECT_FALSE(sup.diagnose({0.5, 0.52, 0.48, 0.51}).any());
  EXPECT_FALSE(sup.diagnose({0.001, 0.0, 0.001, 0.0}).any());  // idle
}

TEST(Supervisor, SingleAnomalousSampleIsDebounced) {
  Supervisor sup(small_backoff(), kSpec);
  const auto dec = sup.observe(sample_at(0, {0.6, 0.0, 0.55, 0.58}));
  EXPECT_EQ(dec.action, Action::kKeep);
  EXPECT_NE(dec.reason.find("unstable"), std::string::npos);
}

TEST(Supervisor, StableFaultChangeTriggersReplanOverSurvivors) {
  Supervisor sup(small_backoff(), kSpec);
  (void)sup.observe(sample_at(0, {0.6, 0.0, 0.55, 0.58}));
  const auto dec = sup.observe(sample_at(20000, {0.6, 0.0, 0.55, 0.58}));
  ASSERT_EQ(dec.action, Action::kReplan);
  EXPECT_TRUE(dec.diagnosis.is_offline(1));
  EXPECT_EQ(dec.plan_set, (std::vector<unsigned>{0, 2, 3}));
}

TEST(Supervisor, CommittedReplanIsIdempotentUntilStateChanges) {
  Supervisor sup(small_backoff(), kSpec);
  const Sample degraded = sample_at(0, {0.6, 0.0, 0.55, 0.58});
  (void)sup.observe(degraded);
  const auto dec = sup.observe(sample_at(20000, degraded.mc_utilization));
  ASSERT_EQ(dec.action, Action::kReplan);
  sup.commit(30000);
  EXPECT_EQ(sup.replans(), 1u);

  // Back-to-back identical fault state: strictly a no-op, forever.
  for (int i = 0; i < 6; ++i) {
    const auto again = sup.observe(
        sample_at(40000 + 10000 * i, degraded.mc_utilization));
    EXPECT_EQ(again.action, Action::kKeep) << "iteration " << i;
  }
  EXPECT_EQ(sup.replans(), 1u);
  EXPECT_EQ(sup.suppressed(), 0u);
}

TEST(Supervisor, ClearedFaultRoundTripsToHealthyPlan) {
  Supervisor sup(small_backoff(), kSpec);
  const std::vector<double> degraded = {0.6, 0.0, 0.55, 0.58};
  const std::vector<double> healthy = {0.5, 0.52, 0.48, 0.51};

  (void)sup.observe(sample_at(0, degraded));
  ASSERT_EQ(sup.observe(sample_at(20000, degraded)).action, Action::kReplan);
  sup.commit(30000);

  // Fault clears; wait out the backoff window, then the supervisor must
  // propose a plan over the full controller set again.
  (void)sup.observe(sample_at(200000, healthy));
  const auto dec = sup.observe(sample_at(220000, healthy));
  ASSERT_EQ(dec.action, Action::kReplan);
  EXPECT_FALSE(dec.diagnosis.any());
  EXPECT_EQ(dec.plan_set, (std::vector<unsigned>{0, 1, 2, 3}));

  // The proposed plan equals the healthy-chip plan exactly.
  const arch::AddressMap map(kSpec);
  const auto round_trip = seg::plan_stream_offsets(4, map, dec.plan_set);
  const auto healthy_plan = seg::plan_stream_offsets(4, map);
  EXPECT_EQ(round_trip.offsets, healthy_plan.offsets);
  EXPECT_EQ(round_trip.base_align, healthy_plan.base_align);
}

TEST(Supervisor, BackoffSuppressesFlappingController) {
  Supervisor sup(small_backoff(), kSpec);
  const std::vector<double> down = {0.6, 0.0, 0.55, 0.58};
  const std::vector<double> up = {0.5, 0.52, 0.48, 0.51};

  (void)sup.observe(sample_at(0, down));
  ASSERT_EQ(sup.observe(sample_at(10000, down)).action, Action::kReplan);
  sup.commit(20000);  // next replan allowed at 20000 + 50000

  // Controller flaps back up immediately: proposal lands inside the
  // backoff window and is suppressed, not executed.
  (void)sup.observe(sample_at(30000, up));
  const auto flap = sup.observe(sample_at(40000, up));
  EXPECT_EQ(flap.action, Action::kSuppressed);
  EXPECT_EQ(sup.suppressed(), 1u);
  EXPECT_EQ(sup.replans(), 1u);

  // Once the window passes the replan goes through.
  const auto late = sup.observe(sample_at(80000, up));
  EXPECT_EQ(late.action, Action::kReplan);
}

TEST(Supervisor, AbortedReplanBacksOffToo) {
  Supervisor sup(small_backoff(), kSpec);
  const std::vector<double> down = {0.6, 0.0, 0.55, 0.58};
  (void)sup.observe(sample_at(0, down));
  ASSERT_EQ(sup.observe(sample_at(10000, down)).action, Action::kReplan);
  sup.abort(20000);  // break-even gate declined the migration
  EXPECT_EQ(sup.replans(), 0u);

  const auto again = sup.observe(sample_at(30000, down));
  EXPECT_EQ(again.action, Action::kSuppressed);
  const auto late = sup.observe(sample_at(200000, down));
  EXPECT_EQ(late.action, Action::kReplan);
}

TEST(Supervisor, LayoutDeficitTriggersReplanWithoutFaultChange) {
  Supervisor sup(small_backoff(), kSpec);
  const std::vector<double> healthy = {0.2, 0.21, 0.2, 0.19};
  (void)sup.observe(sample_at(0, healthy), 2.0);
  const auto dec = sup.observe(sample_at(10000, healthy), 2.0);
  ASSERT_EQ(dec.action, Action::kReplan);
  EXPECT_NE(dec.reason.find("layout gain"), std::string::npos);
  EXPECT_FALSE(dec.diagnosis.any());

  // Gains below the threshold never trigger.
  Supervisor calm(small_backoff(), kSpec);
  (void)calm.observe(sample_at(0, healthy), 1.05);
  EXPECT_EQ(calm.observe(sample_at(10000, healthy), 1.05).action,
            Action::kKeep);
}

TEST(Supervisor, QuietStretchResetsBackoff) {
  DetectorConfig cfg = small_backoff();
  cfg.quiet_reset = 3;
  Supervisor sup(cfg, kSpec);
  const std::vector<double> down = {0.6, 0.0, 0.55, 0.58};
  const std::vector<double> healthy = {0.5, 0.52, 0.48, 0.51};

  (void)sup.observe(sample_at(0, down));
  (void)sup.observe(sample_at(10000, down));
  sup.commit(20000);
  EXPECT_EQ(sup.backoff().retries(), 1u);

  // Replan back to healthy, then a quiet stretch: backoff resets.
  (void)sup.observe(sample_at(80000, healthy));
  (void)sup.observe(sample_at(90000, healthy));
  sup.commit(100000);
  for (int i = 0; i < 4; ++i)
    (void)sup.observe(sample_at(110000 + 10000 * i, healthy));
  EXPECT_EQ(sup.backoff().retries(), 0u);
}

TEST(Supervisor, RejectsMismatchedUtilizationVector) {
  Supervisor sup(small_backoff(), kSpec);
  EXPECT_THROW((void)sup.diagnose({0.5, 0.5}), std::invalid_argument);
}

TEST(Supervisor, CorruptedReadsOrderAScrub) {
  Supervisor sup(small_backoff(), kSpec);
  Sample s = sample_at(0, {0.5, 0.5, 0.5, 0.5});
  s.corrupted_reads = 3;
  const Decision dec = sup.observe(s);
  EXPECT_EQ(dec.action, Action::kScrub);
  EXPECT_NE(dec.reason.find("3 corrupted reads"), std::string::npos);
  EXPECT_EQ(sup.scrubs(), 1u);
  EXPECT_EQ(sup.replans(), 0u);
}

TEST(Supervisor, ScrubBypassesDebounceBackoffAndIdleGate) {
  DetectorConfig cfg = small_backoff();
  cfg.stable_window = 3;  // replans need 3 stable samples; scrubs need none
  Supervisor sup(cfg, kSpec);

  // Even an idle sample (no utilization signal) must surface corruption.
  Sample idle = sample_at(0, {0.0, 0.0, 0.0, 0.0});
  idle.corrupted_reads = 1;
  EXPECT_EQ(sup.observe(idle).action, Action::kScrub);

  // Arm the backoff via a committed replan; a scrub still fires inside it.
  const std::vector<double> down{0.6, 0.01, 0.55, 0.58};
  (void)sup.observe(sample_at(10000, down));
  (void)sup.observe(sample_at(20000, down));
  const Decision replan = sup.observe(sample_at(30000, down));
  ASSERT_EQ(replan.action, Action::kReplan);
  sup.commit(40000);

  Sample inside_backoff = sample_at(41000, down);
  inside_backoff.corrupted_reads = 7;
  EXPECT_EQ(sup.observe(inside_backoff).action, Action::kScrub);
  EXPECT_EQ(sup.scrubs(), 2u);
}

TEST(Supervisor, ScrubDoesNotDisturbDiagnosisState) {
  Supervisor sup(small_backoff(), kSpec);  // stable_window = 2
  const std::vector<double> down{0.6, 0.01, 0.55, 0.58};
  (void)sup.observe(sample_at(0, down));  // 1/2 toward stability

  Sample corrupt = sample_at(10000, down);
  corrupt.corrupted_reads = 1;
  EXPECT_EQ(sup.observe(corrupt).action, Action::kScrub);

  // The interleaved scrub neither consumed nor reset the debounce window:
  // the next clean matching sample completes it.
  const Decision dec = sup.observe(sample_at(20000, down));
  EXPECT_EQ(dec.action, Action::kReplan);
  EXPECT_TRUE(dec.diagnosis.is_offline(1));
}

}  // namespace
}  // namespace mcopt::runtime
