// Tests of the NUMA stream sharder: local placement when a socket's own
// memory survives, priced remote rehoming when it doesn't, load spreading
// over equidistant survivors, distance-matrix awareness, and controller
// rotation between co-homed shards.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "seg/planner.h"

namespace mcopt::seg {
namespace {

const arch::AddressMap kMap;

TEST(NodePlanner, HealthyNodePlacesEveryShardLocally) {
  arch::NodeTopology node;
  node.num_sockets = 4;
  const NodeStreamPlan plan = plan_node_stream_shards(3, kMap, node);
  ASSERT_EQ(plan.shards.size(), 4u);
  EXPECT_DOUBLE_EQ(plan.remote_fraction, 0.0);
  for (unsigned s = 0; s < 4; ++s) {
    const auto& shard = plan.shards[s];
    EXPECT_EQ(shard.compute_socket, s);
    EXPECT_EQ(shard.home_socket, s);
    EXPECT_FALSE(shard.remote());
    EXPECT_EQ(shard.link_cycles, 0u);
    ASSERT_EQ(shard.bases.size(), 3u);
    for (const arch::Addr b : shard.bases)
      EXPECT_EQ(node.home_socket_of(b), s);
  }
  // Local shards carry the classic stream offsets: 0, 128, 256.
  EXPECT_EQ(plan.shards[0].streams.offsets,
            (std::vector<std::size_t>{0, 128, 256}));
}

TEST(NodePlanner, DeadMemoryRehomesToSurvivorAtLinkPrice) {
  arch::NodeTopology node;  // 2 sockets
  const std::vector<unsigned> compute = {0, 1};
  const std::vector<unsigned> memory = {0};  // socket 1's memory is gone
  const NodeStreamPlan plan =
      plan_node_stream_shards(3, kMap, node, compute, memory);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_FALSE(plan.shards[0].remote());
  EXPECT_TRUE(plan.shards[1].remote());
  EXPECT_EQ(plan.shards[1].home_socket, 0u);
  EXPECT_EQ(plan.shards[1].link_cycles, node.link_line_cycles);
  EXPECT_DOUBLE_EQ(plan.remote_fraction, 0.5);
  for (const arch::Addr b : plan.shards[1].bases)
    EXPECT_EQ(node.home_socket_of(b), 0u);
}

TEST(NodePlanner, OrphanedSocketsSpreadOverEquidistantSurvivors) {
  arch::NodeTopology node;
  node.num_sockets = 4;
  const std::vector<unsigned> compute = {0, 1, 2, 3};
  const std::vector<unsigned> memory = {0, 1};
  const NodeStreamPlan plan =
      plan_node_stream_shards(2, kMap, node, compute, memory);
  // Sockets 2 and 3 are equidistant from both survivors: the load tie-break
  // must split them instead of stacking both onto domain 0.
  EXPECT_EQ(plan.shards[2].home_socket, 0u);
  EXPECT_EQ(plan.shards[3].home_socket, 1u);
  EXPECT_DOUBLE_EQ(plan.remote_fraction, 0.5);
}

TEST(NodePlanner, DistanceMatrixSteersRemotePlacement) {
  arch::NodeTopology node;
  node.num_sockets = 4;
  // Make socket 2's link to 1 four times cheaper than to 0.
  node.latency_matrix.assign(16, node.remote_latency);
  node.link_cycle_matrix.assign(16, 32);
  for (unsigned i = 0; i < 4; ++i) {
    node.latency_matrix[i * 4 + i] = 0;
    node.link_cycle_matrix[i * 4 + i] = 0;
  }
  node.link_cycle_matrix[2 * 4 + 1] = 8;
  node.validate();
  const std::vector<unsigned> compute = {2};
  const std::vector<unsigned> memory = {0, 1};
  const NodeStreamPlan plan =
      plan_node_stream_shards(2, kMap, node, compute, memory);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].home_socket, 1u);
  EXPECT_EQ(plan.shards[0].link_cycles, 8u);
}

TEST(NodePlanner, CoHomedShardsRotateOffControllerZero) {
  arch::NodeTopology node;  // 2 sockets, only domain 0 survives
  const std::vector<unsigned> compute = {0, 1};
  const std::vector<unsigned> memory = {0};
  const NodeStreamPlan plan =
      plan_node_stream_shards(2, kMap, node, compute, memory);
  // Second shard on the same domain is rotated by one controller stride, so
  // the two shards' arrays do not alias pairwise.
  EXPECT_EQ(plan.shards[0].streams.offsets,
            (std::vector<std::size_t>{0, 128}));
  EXPECT_EQ(plan.shards[1].streams.offsets,
            (std::vector<std::size_t>{128, 256}));
  std::vector<arch::Addr> all;
  for (const auto& shard : plan.shards)
    all.insert(all.end(), shard.bases.begin(), shard.bases.end());
  const AliasReport report = diagnose_streams(all, kMap);
  EXPECT_FALSE(report.fully_aliased);
  // Unrotated, both shards would sit on {mc0, mc1} for balance 0.25; the
  // rotation yields {0,1} + {1,2} = one shared controller, balance 0.5.
  EXPECT_GE(report.balance, 0.5);
}

TEST(NodePlanner, ComposableOverloadRotatesAgainstCarriedLoad) {
  // Per-job planner calls must rotate against node-wide allocation state:
  // two successive one-socket plans sharing a domain_load vector get
  // distinct controller rotations, exactly as one combined plan would.
  arch::NodeTopology node;  // 2 sockets, only domain 0 survives
  const std::vector<unsigned> memory = {0};
  const std::vector<unsigned> job0 = {0};
  const std::vector<unsigned> job1 = {1};
  std::vector<unsigned> load(2, 0);
  const NodeStreamPlan first =
      plan_node_stream_shards(2, kMap, node, job0, memory, load);
  const NodeStreamPlan second =
      plan_node_stream_shards(2, kMap, node, job1, memory, load);
  EXPECT_EQ(load[0], 2u);
  EXPECT_EQ(first.shards[0].streams.offsets,
            (std::vector<std::size_t>{0, 128}));
  EXPECT_EQ(second.shards[0].streams.offsets,
            (std::vector<std::size_t>{128, 256}));
  // A fresh load vector would repeat the first rotation (the aliasing the
  // carried state exists to prevent).
  std::vector<unsigned> fresh(2, 0);
  const NodeStreamPlan repeat =
      plan_node_stream_shards(2, kMap, node, job1, memory, fresh);
  EXPECT_EQ(repeat.shards[0].streams.offsets, first.shards[0].streams.offsets);
  // The vector must match the node width.
  std::vector<unsigned> wrong(3, 0);
  EXPECT_THROW(
      (void)plan_node_stream_shards(2, kMap, node, job0, memory, wrong),
      std::invalid_argument);
}

TEST(NodePlanner, SplitShardCountsCoverAndBalance) {
  // total/parts with the remainder spread over the leading shards.
  EXPECT_EQ(split_shard_counts(10, 3),
            (std::vector<std::size_t>{4, 3, 3}));
  EXPECT_EQ(split_shard_counts(9, 3), (std::vector<std::size_t>{3, 3, 3}));
  EXPECT_EQ(split_shard_counts(1, 1), (std::vector<std::size_t>{1}));
  // parts clamps to total: no empty shards.
  EXPECT_EQ(split_shard_counts(2, 5), (std::vector<std::size_t>{1, 1}));
  // Exact cover, max spread 1 — for any draw.
  for (std::size_t total = 1; total < 40; ++total)
    for (std::size_t parts = 1; parts < 8; ++parts) {
      const auto counts = split_shard_counts(total, parts);
      std::size_t sum = 0;
      for (const std::size_t c : counts) sum += c;
      EXPECT_EQ(sum, total);
      const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
      EXPECT_LE(*hi - *lo, 1u);
    }
  EXPECT_THROW((void)split_shard_counts(0, 3), std::invalid_argument);
  EXPECT_THROW((void)split_shard_counts(3, 0), std::invalid_argument);
}

TEST(NodePlanner, RejectsDegenerateInput) {
  arch::NodeTopology node;
  const std::vector<unsigned> ok = {0};
  const std::vector<unsigned> empty;
  const std::vector<unsigned> oob = {2};
  const std::vector<unsigned> dup = {0, 0};
  EXPECT_THROW((void)plan_node_stream_shards(0, kMap, node, ok, ok),
               std::invalid_argument);
  EXPECT_THROW((void)plan_node_stream_shards(1, kMap, node, empty, ok),
               std::invalid_argument);
  EXPECT_THROW((void)plan_node_stream_shards(1, kMap, node, ok, oob),
               std::invalid_argument);
  EXPECT_THROW((void)plan_node_stream_shards(1, kMap, node, dup, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcopt::seg
