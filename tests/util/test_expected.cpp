#include "util/expected.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mcopt::util {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  ASSERT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  const Expected<int> e = Expected<int>::failure("bad input");
  ASSERT_FALSE(e.has_value());
  ASSERT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(e.error().message, "bad input");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, ValueOnFailureThrowsWithDiagnostic) {
  const Expected<std::string> e = Expected<std::string>::failure("no such file");
  try {
    (void)e.value();
    FAIL() << "value() must throw on a failed Expected";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "no such file");
  }
}

TEST(Expected, ImplicitConversionFromValueAndError) {
  const auto ok = []() -> Expected<std::vector<int>> { return std::vector<int>{1, 2}; }();
  EXPECT_TRUE(ok.has_value());
  const auto bad = []() -> Expected<std::vector<int>> { return Error{"nope"}; }();
  EXPECT_FALSE(bad.has_value());
}

TEST(Expected, MutableValueIsWritable) {
  Expected<std::vector<int>> e(std::vector<int>{1});
  e.value().push_back(2);
  EXPECT_EQ(e.value().size(), 2u);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_NO_THROW(s.throw_if_failed());
}

TEST(Status, FailureCarriesMessage) {
  const Status s = Status::failure("broken");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "broken");
  EXPECT_THROW(s.throw_if_failed(), std::invalid_argument);
}

TEST(Status, NotesAccumulate) {
  Status s;
  s.note("first");
  s.note("second");
  s.note("third");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "first; second; third");
}

TEST(Status, MergeCombinesDiagnostics) {
  Status a;
  a.note("a failed");
  Status b;
  b.note("b failed");
  a.merge(b);
  EXPECT_EQ(a.error().message, "a failed; b failed");

  Status ok;
  ok.merge(Status{});
  EXPECT_TRUE(ok.ok());
  ok.merge(a);
  EXPECT_FALSE(ok.ok());
  EXPECT_EQ(ok.error().message, "a failed; b failed");
}

TEST(Status, ThrowCarriesAllNotes) {
  Status s;
  s.note("one");
  s.note("two");
  try {
    s.throw_if_failed();
    FAIL() << "must throw";
  } catch (const std::invalid_argument& ex) {
    EXPECT_STREQ(ex.what(), "one; two");
  }
}

}  // namespace
}  // namespace mcopt::util
