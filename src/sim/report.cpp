#include "sim/report.h"

#include <algorithm>
#include <ostream>

#include "util/table.h"

namespace mcopt::sim {

UtilizationSummary summarize(const SimResult& result) {
  UtilizationSummary s;
  s.seconds = result.seconds();
  s.bandwidth_gbs = result.memory_bandwidth() / 1e9;
  const auto total_bytes =
      static_cast<double>(result.mem_read_bytes + result.mem_write_bytes);
  s.read_fraction = total_bytes == 0.0
                        ? 0.0
                        : static_cast<double>(result.mem_read_bytes) / total_bytes;
  s.l1_miss_ratio = result.l1.miss_ratio();
  s.l2_miss_ratio = result.l2.miss_ratio();
  if (!result.mc.empty() && result.total_cycles > 0) {
    s.mc_busy_min = 1.0;
    std::uint64_t conflicts = 0;
    std::uint64_t transfers = 0;
    for (const McStats& mc : result.mc) {
      const double busy = static_cast<double>(mc.busy_cycles) /
                          static_cast<double>(result.total_cycles);
      s.mc_busy_min = std::min(s.mc_busy_min, busy);
      s.mc_busy_max = std::max(s.mc_busy_max, busy);
      conflicts += mc.row_conflicts;
      transfers += mc.row_hits + mc.row_conflicts;
    }
    if (transfers != 0)
      s.row_conflict_ratio =
          static_cast<double>(conflicts) / static_cast<double>(transfers);
  }
  if (!result.thread_finish.empty()) {
    const auto [lo, hi] =
        std::minmax_element(result.thread_finish.begin(), result.thread_finish.end());
    if (*hi != 0)
      s.thread_imbalance =
          static_cast<double>(*hi - *lo) / static_cast<double>(*hi);
  }
  if (s.seconds > 0.0)
    s.gflops = static_cast<double>(result.flops) / s.seconds / 1e9;
  return s;
}

void print_report(std::ostream& os, const SimResult& result) {
  const UtilizationSummary s = summarize(result);
  if (result.degraded)
    os << "DEGRADED run: hardware faults were injected (see SimConfig::faults)\n";
  os << "simulated " << util::fmt_fixed(s.seconds * 1e3, 3) << " ms ("
     << util::fmt_group(static_cast<long long>(result.total_cycles))
     << " cycles), " << util::fmt_fixed(s.bandwidth_gbs, 2)
     << " GB/s memory traffic (" << util::fmt_fixed(s.read_fraction * 100, 1)
     << "% reads)\n";
  os << "caches: L1 miss " << util::fmt_fixed(s.l1_miss_ratio * 100, 1)
     << "%, L2 miss " << util::fmt_fixed(s.l2_miss_ratio * 100, 1)
     << "%; thread imbalance " << util::fmt_fixed(s.thread_imbalance * 100, 1)
     << "%\n";
  util::Table table({"MC", "reads", "writes", "busy", "row conflicts"});
  for (std::size_t m = 0; m < result.mc.size(); ++m) {
    const McStats& mc = result.mc[m];
    const double busy =
        result.total_cycles == 0
            ? 0.0
            : static_cast<double>(mc.busy_cycles) /
                  static_cast<double>(result.total_cycles);
    const auto transfers = mc.row_hits + mc.row_conflicts;
    table.add_row({std::to_string(m),
                   util::fmt_group(static_cast<long long>(mc.reads)),
                   util::fmt_group(static_cast<long long>(mc.writes)),
                   util::fmt_fixed(busy * 100, 1) + "%",
                   util::fmt_fixed(transfers == 0
                                       ? 0.0
                                       : 100.0 * static_cast<double>(mc.row_conflicts) /
                                             static_cast<double>(transfers),
                                   1) +
                       "%"});
  }
  table.print(os);
}

std::string brief(const SimResult& result) {
  const UtilizationSummary s = summarize(result);
  return util::fmt_fixed(s.bandwidth_gbs, 2) + " GB/s, MC busy " +
         util::fmt_fixed(s.mc_busy_min * 100, 0) + "-" +
         util::fmt_fixed(s.mc_busy_max * 100, 0) + "%, imbalance " +
         util::fmt_fixed(s.thread_imbalance * 100, 1) + "%";
}

}  // namespace mcopt::sim
