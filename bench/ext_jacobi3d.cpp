// Extension bench (paper Sect. 2.3, last paragraph): the 3D Jacobi
// seven-point solver. The paper predicts the row-count-vs-thread-count
// "modulo" jitter becomes more pronounced in 3D and that the same planner
// layout (512 B rows, 128 B shift, static,1) applies. The (z,y) row loop is
// naturally coalesced, so the modulo effect is mild — confirming the
// paper's coalescing recommendation.

#include "common.h"
#include "kernels/jacobi3d.h"

namespace {

using namespace mcopt;

double jacobi3d_mlups(std::size_t n, const seg::LayoutSpec& spec,
                      const sched::Schedule& schedule, unsigned threads) {
  trace::VirtualArena arena;
  const auto grids = kernels::make_virtual_jacobi3d(arena, n, spec);
  auto wl = kernels::make_jacobi3d_workload(grids, threads, schedule, 1);
  sim::SimConfig cfg;
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return static_cast<double>(kernels::jacobi3d_updates_per_sweep(n)) /
         res.seconds() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Extension: 3D Jacobi MLUPs/s vs N, optimal vs plain layout");
  cli.flag("full", "N up to 192")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const arch::AddressMap map;
  const auto optimal = kernels::jacobi_optimal_spec(map);
  const auto plain = kernels::jacobi_plain_spec();
  const auto static1 = sched::Schedule::static_chunk(1);

  std::vector<std::size_t> sizes = {32, 48, 64, 66, 96, 128};
  if (cli.get_flag("full")) sizes = {32, 48, 64, 66, 80, 96, 112, 128, 160, 192};

  std::printf("# 3D Jacobi (7-point), one sweep, MLUPs/s\n\n");
  const std::vector<std::string> header = {"N", "16T opt", "32T opt", "64T opt",
                                           "64T plain"};
  std::vector<std::vector<std::string>> rows;
  for (std::size_t n : sizes) {
    rows.push_back(
        {std::to_string(n),
         util::fmt_fixed(jacobi3d_mlups(n, optimal, static1, 16), 1),
         util::fmt_fixed(jacobi3d_mlups(n, optimal, static1, 32), 1),
         util::fmt_fixed(jacobi3d_mlups(n, optimal, static1, 64), 1),
         util::fmt_fixed(
             jacobi3d_mlups(n, plain, sched::Schedule::static_block(), 64), 1)});
  }
  mcopt::bench::emit(header, rows, cli.get_str("csv"));
  return 0;
}
