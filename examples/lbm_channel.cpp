// Example: lattice-Boltzmann channel flow with an obstacle — the Sect. 2.4
// workload as a small CFD application.
//
// A body force drives fluid along x through a channel bounded by bounce-back
// walls in z, with an optional square obstacle. The solver validates itself:
// mass is conserved to machine precision, and without an obstacle the
// steady-state profile converges to the analytic Poiseuille parabola.
//
// Usage: lbm_channel [--n 24] [--steps 2000] [--layout IvJK] [--obstacle]

#include <cmath>
#include <cstdio>

#include "kernels/lbm/solver.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  util::Cli cli("D3Q19 channel flow demo");
  cli.option_int("n", 24, "cubic domain edge")
      .option_int("steps", 2000, "time steps")
      .option_double("tau", 0.8, "BGK relaxation time")
      .option_str("layout", "IvJK", "data layout: IJKv or IvJK")
      .flag("fused", "coalesce the z,y loops")
      .flag("obstacle", "place a square obstacle in the channel");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto steps = static_cast<unsigned>(cli.get_int("steps"));
  const double g = 1e-6;

  Solver::Params params;
  params.geometry =
      Geometry{n, n, n, 0,
               cli.get_str("layout") == "IJKv" ? DataLayout::kIJKv
                                               : DataLayout::kIvJK};
  params.tau = cli.get_double("tau");
  params.force = {g, 0.0, 0.0};
  params.fused_zy = cli.get_flag("fused");

  Solver solver(params);
  solver.make_channel_walls_z();
  if (cli.get_flag("obstacle"))
    for (std::size_t z = n / 2 - 2; z <= n / 2 + 2; ++z)
      for (std::size_t y = n / 2 - 2; y <= n / 2 + 2; ++y)
        for (std::size_t x = n / 2 - 2; x <= n / 2 + 2; ++x)
          solver.set_solid(x, y, z);
  solver.initialize(1.0);

  std::printf("domain %zu^3, layout %s%s, tau=%.2f, %llu fluid cells\n", n,
              to_string(params.geometry.layout),
              params.fused_zy ? " (fused z,y)" : "", params.tau,
              static_cast<unsigned long long>(solver.fluid_cells()));

  const double mass0 = solver.total_mass();
  util::Timer timer;
  double kernel_seconds = 0.0;
  for (unsigned step = 0; step < steps; ++step) kernel_seconds += solver.step();
  const double wall = timer.seconds();

  const double mlups = static_cast<double>(solver.fluid_cells()) *
                       static_cast<double>(steps) / kernel_seconds / 1e6;
  std::printf("%u steps in %.2fs wall (%.2f native MLUPs/s)\n", steps, wall, mlups);
  std::printf("mass drift: %.2e (relative)\n",
              std::abs(solver.total_mass() - mass0) / mass0);

  // Velocity profile across the channel at the domain centre.
  const double nu = viscosity(params.tau);
  const double h = static_cast<double>(n) - 2.0;
  std::printf("\n  z    u_x(z)      analytic (no obstacle)\n");
  for (std::size_t z = 2; z <= n - 1; z += (n > 16 ? 2 : 1)) {
    const double zeta = static_cast<double>(z) - 1.5;
    const double analytic = g / (2.0 * nu) * zeta * (h - zeta);
    std::printf("  %2zu  %.3e   %.3e\n", z, solver.velocity(n / 2, n / 2, z)[0],
                analytic);
  }
  if (!cli.get_flag("obstacle")) {
    double err = 0.0;
    for (std::size_t z = 2; z <= n - 1; ++z) {
      const double zeta = static_cast<double>(z) - 1.5;
      const double analytic = g / (2.0 * nu) * zeta * (h - zeta);
      err = std::max(err, std::abs(solver.velocity(n / 2, n / 2, z)[0] - analytic) /
                              analytic);
    }
    std::printf("\nmax relative error vs Poiseuille: %.1f%%\n", err * 100.0);
  }
  return 0;
}
