#pragma once
// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with quantile estimation. Instruments are registered once by
// name (stable addresses, lock on registration only) and updated with
// relaxed atomics — cheap enough for the executor's per-job paths.
//
// Export formats:
//  * prometheus_text(): the text exposition format (one # TYPE block per
//    instrument, cumulative le-buckets for histograms);
//  * json(): a compact one-line JSON object for embedding into the
//    BENCH_*.json snapshots the benches already write.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mcopt::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `upper_bounds` must be finite and strictly
/// increasing; an overflow (+Inf) bucket is implicit. observe() is a binary
/// search plus two relaxed atomic updates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Quantile estimate by linear interpolation inside the containing
  /// bucket. The estimate is always within that bucket's bounds; the
  /// overflow bucket clamps to the largest finite bound. q outside [0, 1]
  /// is clamped; an empty histogram returns 0.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Raw (non-cumulative) count of bucket i; i == bounds().size() is the
  /// overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name-keyed registry. counter()/gauge()/histogram() return a stable
/// reference, creating the instrument on first use (a histogram's bounds
/// are fixed by its first registration; later calls ignore theirs).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance() noexcept;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition of every registered instrument.
  [[nodiscard]] std::string prometheus_text() const;

  /// Compact one-line JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{"h":{"count":..,"sum":..,
  ///  "p50":..,"p95":..,"p99":..}}}
  [[nodiscard]] std::string json() const;

  /// Zeroes every instrument's value; registrations (names, help, bucket
  /// bounds) survive. Test/bench use.
  void reset_values() noexcept;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace mcopt::obs
