#include "kernels/jacobi.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/timer.h"

namespace mcopt::kernels {

void relax_line(double* dl, const double* sa, const double* sb,
                const double* sl, std::size_t n) noexcept {
  for (std::size_t j = 1; j + 1 < n; ++j)
    dl[j] = (sa[j] + sb[j] + sl[j - 1] + sl[j + 1]) * 0.25;
}

seg::seg_array<double> make_jacobi_grid(std::size_t n, const seg::LayoutSpec& spec) {
  if (n < 3) throw std::invalid_argument("make_jacobi_grid: n < 3");
  return seg::seg_array<double>(std::vector<std::size_t>(n, n), spec);
}

void init_jacobi(seg::seg_array<double>& grid) {
  const std::size_t n = grid.num_segments();
  for (std::size_t i = 0; i < n; ++i) {
    auto& row = grid.segment(i);
    const bool edge_row = (i == 0 || i + 1 == n);
    for (std::size_t j = 0; j < n; ++j)
      row[j] = (edge_row || j == 0 || j + 1 == n) ? 1.0 : 0.0;
  }
}

namespace {

void apply_omp_schedule(const sched::Schedule& schedule) {
#ifdef _OPENMP
  switch (schedule.kind) {
    case sched::ScheduleKind::kStatic:
      omp_set_schedule(omp_sched_static, 0);
      break;
    case sched::ScheduleKind::kStaticChunk:
      omp_set_schedule(omp_sched_static, static_cast<int>(schedule.chunk));
      break;
    case sched::ScheduleKind::kDynamic:
      omp_set_schedule(omp_sched_dynamic, static_cast<int>(schedule.chunk));
      break;
  }
#else
  (void)schedule;
#endif
}

}  // namespace

double jacobi_sweep_seconds(const seg::seg_array<double>& src,
                            seg::seg_array<double>& dst,
                            const sched::Schedule& schedule) {
  const std::size_t n = src.num_segments();
  if (dst.num_segments() != n)
    throw std::invalid_argument("jacobi_sweep: grid size mismatch");
  apply_omp_schedule(schedule);
  const auto rows = static_cast<std::ptrdiff_t>(n) - 1;
  util::Timer timer;
#pragma omp parallel for schedule(runtime)
  for (std::ptrdiff_t i = 1; i < rows; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    relax_line(dst.segment(ui).begin(), src.segment(ui - 1).begin(),
               src.segment(ui + 1).begin(), src.segment(ui).begin(), n);
  }
  return timer.seconds();
}

void jacobi_rebuild_row(seg::seg_array<double>& field,
                        const seg::seg_array<double>& prev, std::size_t s) {
  const std::size_t n = field.num_segments();
  if (prev.num_segments() != n)
    throw std::invalid_argument("jacobi_rebuild_row: grid size mismatch");
  if (s >= n) throw std::out_of_range("jacobi_rebuild_row: row out of range");
  auto& row = field.segment(s);
  if (s == 0 || s + 1 == n) {
    for (std::size_t j = 0; j < n; ++j) row[j] = 1.0;
    return;
  }
  // Same call the sweep made for this row (relax_line touches only
  // j in [1, n-1)), so the rebuilt values are bit-identical; the boundary
  // columns are the Dirichlet condition.
  row[0] = 1.0;
  row[n - 1] = 1.0;
  relax_line(row.begin(), prev.segment(s - 1).begin(),
             prev.segment(s + 1).begin(), prev.segment(s).begin(), n);
}

double jacobi_max_delta(const seg::seg_array<double>& a,
                        const seg::seg_array<double>& b) {
  if (a.num_segments() != b.num_segments())
    throw std::invalid_argument("jacobi_max_delta: grid size mismatch");
  double delta = 0.0;
  for (std::size_t i = 0; i < a.num_segments(); ++i) {
    const auto& ra = a.segment(i);
    const auto& rb = b.segment(i);
    for (std::size_t j = 0; j < ra.size(); ++j)
      delta = std::max(delta, std::abs(ra[j] - rb[j]));
  }
  return delta;
}

void jacobi_reference_sweep(const std::vector<double>& src,
                            std::vector<double>& dst, std::size_t n) {
  if (src.size() != n * n || dst.size() != n * n)
    throw std::invalid_argument("jacobi_reference_sweep: bad sizes");
  for (std::size_t i = 1; i + 1 < n; ++i)
    for (std::size_t j = 1; j + 1 < n; ++j)
      dst[i * n + j] = (src[(i - 1) * n + j] + src[(i + 1) * n + j] +
                        src[i * n + j - 1] + src[i * n + j + 1]) *
                       0.25;
}

VirtualJacobi make_virtual_jacobi(trace::VirtualArena& arena, std::size_t n,
                                  const seg::LayoutSpec& spec) {
  if (n < 3) throw std::invalid_argument("make_virtual_jacobi: n < 3");
  const std::vector<std::size_t> rows(n, n);
  return VirtualJacobi{
      trace::VirtualSegArray(arena, rows, sizeof(double), spec),
      trace::VirtualSegArray(arena, rows, sizeof(double), spec), n};
}

seg::LayoutSpec jacobi_plain_spec() {
  seg::LayoutSpec spec;
  spec.base_align = 16;  // whatever malloc gives
  spec.segment_align = 0;
  spec.shift = 0;
  spec.offset = 0;
  return spec;
}

seg::LayoutSpec jacobi_optimal_spec(const arch::AddressMap& map) {
  return seg::plan_row_layout(map).spec();
}

}  // namespace mcopt::kernels
