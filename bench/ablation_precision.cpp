// Sect. 2.4 precision ablation: "LBM performance does not change if the
// benchmark is carried out in single precision" — the paper's evidence that
// the kernel is FPU-bound rather than memory-bound on T2 (the SPARC core's
// peak is identical for SP and DP, while SP halves the memory traffic).
//
// This bench reruns the LBM workload with 4-byte distribution values and
// with the FPU model switched off, separating the two effects:
//   * memory-bound regime (no FPU model): SP is ~2x faster;
//   * FPU-bound regime (FPU modeled): SP gains little — the paper's case.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  using namespace mcopt::kernels::lbm;
  util::Cli cli("LBM single vs double precision (FPU-bound diagnosis)");
  cli.flag("full", "larger domains")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  auto run = [&](std::size_t n, std::size_t elem_bytes, bool model_fpu) {
    const Geometry g{n, n, n, 0, DataLayout::kIvJK};
    trace::VirtualArena arena;
    LbmAddresses addr;
    addr.f_base = arena.allocate(g.f_elems() * elem_bytes, 8192);
    addr.mask_base = arena.allocate(g.cells(), 8192);
    addr.elem_bytes = elem_bytes;
    auto wl = make_lbm_workload(g, addr, LoopOrder::kCoalescedZY, 64,
                                sched::Schedule::static_block(), 1);
    sim::SimConfig cfg;
    cfg.model_fpu = model_fpu;
    sim::Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
    const sim::SimResult res = chip.run(wl);
    return static_cast<double>(g.interior_cells()) / res.seconds() / 1e6;
  };

  const std::size_t n = cli.get_flag("full") ? 78 : 46;
  std::printf("# D3Q19 LBM IvJK fused, 64 threads, N=%zu, MLUPs/s\n\n", n);
  const std::vector<std::string> header = {"FPU model", "DP (8B)", "SP (4B)",
                                           "SP speedup"};
  std::vector<std::vector<std::string>> rows;
  for (bool fpu : {true, false}) {
    const double dp = run(n, 8, fpu);
    const double sp = run(n, 4, fpu);
    rows.push_back({fpu ? "on (T2: 1 FPU/core)" : "off (flops free)",
                    util::fmt_fixed(dp, 2), util::fmt_fixed(sp, 2),
                    util::fmt_fixed(sp / dp, 2) + "x"});
  }
  mcopt::bench::emit(header, rows, cli.get_str("csv"));
  std::printf(
      "\nshape check: with the FPU modeled, SP gains little (paper: none) — "
      "the kernel is not purely memory-bound on this chip.\n");
  return 0;
}
