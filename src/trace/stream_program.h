#pragma once
// Access-program generator for lock-step multi-stream kernels: STREAM
// copy/scale/add/triad and the Schönauer vector triad. One program instance
// is one software thread's share of the loop under a given OpenMP schedule.

#include <cstdint>
#include <vector>

#include "sched/schedule.h"
#include "sim/program.h"

namespace mcopt::trace {

/// One operand stream of a lock-step loop: at iteration i the thread touches
/// base + i*elem_bytes.
struct StreamDesc {
  arch::Addr base = 0;
  bool write = false;
  /// FP work the thread performs right before this access at each iteration
  /// (e.g. the triad's multiply-add attaches to the store).
  std::uint16_t flops_before = 0;
};

/// Per-thread program: for each chunk, for each iteration, touch every
/// stream in order. `sweeps` repeats the whole chunk list (STREAM runs the
/// kernel ntimes).
class LockstepStreamProgram final : public sim::AccessProgram {
 public:
  LockstepStreamProgram(std::vector<StreamDesc> streams, std::size_t elem_bytes,
                        std::vector<sched::IterRange> chunks, unsigned sweeps = 1);

  std::size_t next_batch(std::span<sim::Access> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t total_accesses() const override;

 private:
  std::vector<StreamDesc> streams_;
  std::size_t elem_bytes_;
  std::vector<sched::IterRange> chunks_;
  unsigned sweeps_;

  // Cursor: sweep -> chunk -> iteration -> stream.
  unsigned sweep_ = 0;
  std::size_t chunk_ = 0;
  std::size_t iter_ = 0;
  std::size_t stream_ = 0;
};

/// Builds the whole-chip workload for a lock-step kernel: each software
/// thread gets the chunks `schedule` assigns it over `n` iterations.
[[nodiscard]] sim::Workload make_lockstep_workload(
    const std::vector<StreamDesc>& streams, std::size_t elem_bytes,
    std::size_t n, unsigned num_threads, const sched::Schedule& schedule,
    unsigned sweeps = 1);

}  // namespace mcopt::trace
