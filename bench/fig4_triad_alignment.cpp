// Fig. 4 reproduction: vector triad A=B+C*D performance (actual-traffic
// GB/s) versus array length N for different alignment strategies.
//
// Paper shape (Sect. 2.2): "plain" malloc'd arrays swing erratically between
// hard limits of ~3.7 and ~16 GB/s with a 64-DP-word periodicity in N;
// aligning everything to 8 kB pages forces the pessimal case (flat bottom
// line); adding planner offsets of 128/256/384 bytes for B, C, D removes
// all breakdowns (flat top line). Offsets of 32 or 64 bytes are not enough
// to separate the controllers.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Fig. 4: vector triad vs N for plain/aligned/offset layouts");
  cli.flag("full", "paper-style window: 200 consecutive N values")
      .option_int("n-center", 1 << 18,
                  "window centre in DP words (paper: ~9,990,150)")
      .option_int("points", 48, "N values scanned (200 with --full)")
      .option_int("threads", 64, "software threads")
      .option_str("fault", "",
                  "inject hardware faults, e.g. mc0:off,mc1:derate=0.5 "
                  "(see sim::FaultSpec::parse); adds a replan column")
      .option_str("csv", "", "mirror results to this CSV file");
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  const bool full = cli.get_flag("full");
  const auto center = static_cast<std::size_t>(cli.get_int("n-center"));
  const std::size_t points = full ? 200 : static_cast<std::size_t>(cli.get_int("points"));
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));

  sim::SimConfig cfg;
  cfg.faults = bench::parse_fault_knob(cli.get_str("fault"), cfg);
  const arch::AddressMap map(cfg.interleave);
  const auto surviving = cfg.faults.surviving_controllers(cfg.interleave);
  if (cfg.faults.any())
    std::printf("# DEGRADED chip: %s (surviving controllers: %zu)\n",
                cfg.faults.describe().c_str(), surviving.size());

  std::printf(
      "# Vector triad A=B+C*D, %u threads, actual traffic GB/s (5 words per "
      "update incl. RFO)\n# window: N in [%zu, %zu]\n\n",
      threads, center - points / 2, center + points / 2);

  auto run = [&](kernels::TriadLayout layout, std::size_t n,
                 std::size_t offset_scale) {
    trace::VirtualArena arena;
    const auto bases =
        kernels::triad_layout_bases(arena, layout, n, map, offset_scale);
    return bench::triad_actual_gbs(bases, n, threads, cfg);
  };
  // Replanned layout for the degraded chip: offsets chosen over the
  // surviving-controller subset instead of the full complement.
  auto run_replanned = [&](std::size_t n) {
    const auto plan = seg::plan_stream_offsets(4, map, surviving);
    trace::VirtualArena arena;
    std::vector<arch::Addr> bases;
    for (std::size_t k = 0; k < 4; ++k)
      bases.push_back(arena.allocate(n * 8 + plan.offsets[k], plan.base_align) +
                      plan.offsets[k]);
    return bench::triad_actual_gbs(bases, n, threads, cfg);
  };

  std::vector<std::string> header = {
      "N", "plain", "align8k", "off32", "off64", "off128"};
  if (cfg.faults.any()) header.push_back("replan");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t n = center - points / 2 + i;
    rows.push_back(
        {std::to_string(n),
         util::fmt_fixed(run(kernels::TriadLayout::kPlain, n, 0), 2),
         util::fmt_fixed(run(kernels::TriadLayout::kAligned8k, n, 0), 2),
         util::fmt_fixed(run(kernels::TriadLayout::kPlannedOffsets, n, 32), 2),
         util::fmt_fixed(run(kernels::TriadLayout::kPlannedOffsets, n, 64), 2),
         util::fmt_fixed(run(kernels::TriadLayout::kPlannedOffsets, n, 128), 2)});
    if (cfg.faults.any())
      rows.back().push_back(util::fmt_fixed(run_replanned(n), 2));
  }
  bench::emit(header, rows, cli.get_str("csv"));

  // Shape summary over the window.
  double plain_min = 1e99, plain_max = 0, off128_min = 1e99, align_max = 0;
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t n = center - points / 2 + i;
    const double p = run(kernels::TriadLayout::kPlain, n, 0);
    plain_min = std::min(plain_min, p);
    plain_max = std::max(plain_max, p);
    off128_min =
        std::min(off128_min, run(kernels::TriadLayout::kPlannedOffsets, n, 128));
    align_max = std::max(align_max, run(kernels::TriadLayout::kAligned8k, n, 0));
  }
  std::printf(
      "\nshape check: plain swings %.2f..%.2f GB/s (paper: ~3.7..16); "
      "planned-offset floor %.2f stays above align8k ceiling %.2f\n",
      plain_min, plain_max, off128_min, align_max);
  return 0;
}
