#include "sim/node.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "arch/topology.h"

namespace mcopt::sim {

namespace {

SimConfig socket_config(const NodeConfig& cfg, unsigned socket) {
  SimConfig sc = cfg.sim;
  sc.numa.enabled = !cfg.node.single_socket();
  sc.numa.socket = socket;
  sc.numa.node = cfg.node;
  return sc;
}

}  // namespace

util::Status NodeConfig::check() const {
  util::Status status = node.check();
  if (!status.ok()) return status;
  // The per-socket view carries every cross-layer constraint (fault classes
  // against num_sockets, connectivity, schedule epochs); socket 0's view is
  // representative since the sockets are identical.
  status.merge(socket_config(*this, 0).check());
  return status;
}

void NodeConfig::validate() const { check().throw_if_failed(); }

Node::Node(NodeConfig config) : cfg_(std::move(config)) {
  cfg_.validate();
}

NodeResult Node::run(std::vector<Workload>& workloads) {
  util::Expected<NodeResult> result = try_run(workloads);
  if (!result) throw std::runtime_error(result.error().message);
  return std::move(result.value());
}

util::Expected<NodeResult> Node::try_run(std::vector<Workload>& workloads) {
  const unsigned n = cfg_.node.num_sockets;
  if (workloads.size() != n)
    throw std::invalid_argument(
        "Node::run: expected one workload per socket (" + std::to_string(n) +
        "), got " + std::to_string(workloads.size()));

  NodeResult result;
  result.sockets.resize(n);
  result.socket_utilization.assign(n, 0.0);
  result.clock_ghz = cfg_.sim.topology.clock_ghz;
  for (unsigned s = 0; s < n; ++s) {
    if (workloads[s].empty()) continue;  // idle socket
    const SimConfig sc = socket_config(cfg_, s);
    Chip chip(sc, arch::equidistant_placement(
                      static_cast<unsigned>(workloads[s].size()), sc.topology));
    util::Expected<SimResult> res = chip.try_run(workloads[s]);
    if (!res)
      return util::Expected<NodeResult>::failure(
          "socket " + std::to_string(s) + ": " + res.error().message);
    result.sockets[s] = std::move(res.value());
    const SimResult& sr = result.sockets[s];
    result.total_cycles = std::max(result.total_cycles, sr.total_cycles);
    result.mem_read_bytes += sr.mem_read_bytes;
    result.mem_write_bytes += sr.mem_write_bytes;
    result.remote_read_bytes += sr.remote_read_bytes;
    result.remote_write_bytes += sr.remote_write_bytes;
    result.degraded = result.degraded || sr.degraded;
  }
  if (result.total_cycles != 0) {
    for (unsigned s = 0; s < n; ++s) {
      const SimResult& sr = result.sockets[s];
      if (sr.mc.empty()) continue;
      arch::Cycles busy = 0;
      for (const McStats& mc : sr.mc) busy += mc.busy_cycles;
      result.socket_utilization[s] =
          static_cast<double>(busy) /
          (static_cast<double>(sr.mc.size()) *
           static_cast<double>(result.total_cycles));
    }
  }
  return result;
}

}  // namespace mcopt::sim
