#pragma once
// RAII wrapper over posix_memalign, the allocation primitive the paper uses
// to pin array base addresses to definite boundaries (Sect. 2.2).

#include <cstddef>

namespace mcopt::seg {

/// Owning, alignment-guaranteed, zero-initialized byte buffer.
///
/// Move-only. The alignment must be a power of two and a multiple of
/// sizeof(void*), per posix_memalign's contract; smaller requests are
/// rounded up to sizeof(void*).
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  /// Allocates `bytes` bytes aligned to `alignment`. Throws std::bad_alloc
  /// on allocation failure, std::invalid_argument on bad alignment.
  AlignedBuffer(std::size_t bytes, std::size_t alignment);

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t alignment() const noexcept { return alignment_; }
  [[nodiscard]] bool empty() const noexcept { return bytes_ == 0; }

 private:
  std::byte* data_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t alignment_ = 0;
};

}  // namespace mcopt::seg
