#include "util/crc.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/prng.h"

namespace mcopt::util {
namespace {

TEST(Crc32c, KnownVectors) {
  // RFC 3720 appendix + common published CRC32C vectors.
  EXPECT_EQ(crc32c("", 0), 0u);
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(crc32c("abc", 3), 0x364B3FB7u);
  EXPECT_EQ(crc32c("The quick brown fox jumps over the lazy dog", 43),
            0x22620404u);
  std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32c, SoftwarePathMatchesKnownVectors) {
  EXPECT_EQ(crc32c_sw("", 0), 0u);
  EXPECT_EQ(crc32c_sw("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, HardwareAndSoftwareAgree) {
  if (!crc32c_hw_available()) GTEST_SKIP() << "no SSE4.2 on this host";
  Xoshiro256 rng(0xC4C1u);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{9}, std::size_t{63},
                          std::size_t{64}, std::size_t{1000},
                          std::size_t{4096}, std::size_t{4099},
                          // Around and across the 3-lane interleaved
                          // hardware loop (3 x 512-byte lanes per block).
                          std::size_t{1535}, std::size_t{1536},
                          std::size_t{1537}, std::size_t{3072},
                          std::size_t{8192}, std::size_t{12289},
                          std::size_t{40000}, std::size_t{100000}}) {
    std::vector<unsigned char> buf(len);
    for (auto& b : buf) b = static_cast<unsigned char>(rng());
    EXPECT_EQ(crc32c(buf.data(), buf.size()), crc32c_sw(buf.data(), buf.size()))
        << "len=" << len;
    // Misaligned start exercises the byte-alignment prologues of both paths.
    if (len > 3) {
      EXPECT_EQ(crc32c(buf.data() + 3, buf.size() - 3),
                crc32c_sw(buf.data() + 3, buf.size() - 3))
          << "misaligned len=" << len;
    }
  }
}

TEST(Crc32c, SeedChainsAcrossCalls) {
  const std::string msg = "0123456789abcdefghijklmnopqrstuvwxyz";
  const std::uint32_t whole = crc32c(msg.data(), msg.size());
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    std::uint32_t head = crc32c(msg.data(), cut);
    EXPECT_EQ(crc32c(msg.data() + cut, msg.size() - cut, head), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32c, SeedChainsAcrossTheInterleavedBlocks) {
  // Chain cuts landing inside, on, and across 3-lane block boundaries must
  // compose exactly like the byte-at-a-time path.
  Xoshiro256 rng(0x3AAEu);
  std::vector<unsigned char> buf(3 * 12288 + 1234);
  for (auto& b : buf) b = static_cast<unsigned char>(rng());
  const std::uint32_t whole = crc32c(buf.data(), buf.size());
  for (std::size_t cut : {std::size_t{1}, std::size_t{1535}, std::size_t{1536},
                          std::size_t{1537}, std::size_t{4096},
                          std::size_t{24576}, buf.size() - 1}) {
    const std::uint32_t head = crc32c(buf.data(), cut);
    EXPECT_EQ(crc32c(buf.data() + cut, buf.size() - cut, head), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Xoshiro256 rng(0xABCDu);
  std::vector<unsigned char> buf(10000);
  for (auto& b : buf) b = static_cast<unsigned char>(rng());
  const std::uint32_t whole = crc32c(buf.data(), buf.size());

  Crc32c inc;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    std::size_t chunk = 1 + rng() % 257;
    if (chunk > buf.size() - pos) chunk = buf.size() - pos;
    inc.update(buf.data() + pos, chunk);
    pos += chunk;
  }
  EXPECT_EQ(inc.value(), whole);

  inc.reset();
  EXPECT_EQ(inc.value(), 0u);
  inc.update(buf.data(), buf.size());
  EXPECT_EQ(inc.value(), whole);
}

TEST(Crc32c, SingleBitFlipsAlwaysChangeChecksum) {
  // The property the integrity layer leans on: any single flipped bit in a
  // segment-sized payload is detected.
  std::vector<unsigned char> buf(512);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>(i * 131u);
  const std::uint32_t clean = crc32c(buf.data(), buf.size());
  for (std::size_t byte = 0; byte < buf.size(); byte += 17) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(crc32c(buf.data(), buf.size()), clean)
          << "byte=" << byte << " bit=" << bit;
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
  EXPECT_EQ(crc32c(buf.data(), buf.size()), clean);
}

}  // namespace
}  // namespace mcopt::util
