#pragma once
// Simulator access program for the D3Q19 LBM kernel (Fig. 7): per fluid
// site, one obstacle-mask byte load, 19 distribution loads from the local
// cell, then 19 stores to the neighbour cells in the other toggle array,
// with the BGK collision flops serialized on the core FPU.

#include <cstdint>
#include <vector>

#include "kernels/lbm/geometry.h"
#include "sched/schedule.h"
#include "sim/program.h"

namespace mcopt::kernels::lbm {

/// Flop model of one site update: moments + equilibrium before the first
/// store, then per-direction collide/propagate work. Totals ~186 flops,
/// matching the paper's ~2.5 bytes/flop code balance at 456 bytes/site.
///
/// `fpu_slots_per_flop` converts flops into FPU-pipe occupancy: the T2 core
/// is in-order and single-issue per thread group, so dependent FP chains
/// leave bubbles in the shared FPU — one flop costs more than one issue
/// slot. The default 1.8 makes the D3Q19 kernel FPU-bound near the level
/// the paper measures (its evidence: single-precision LBM runs no faster,
/// Sect. 2.4; see bench/ablation_precision).
struct FlopModel {
  std::uint16_t before_first_store = 60;
  std::uint16_t per_store = 7;
  double fpu_slots_per_flop = 1.8;

  [[nodiscard]] std::uint16_t first_store_slots() const {
    return static_cast<std::uint16_t>(
        static_cast<double>(before_first_store) * fpu_slots_per_flop + 0.5);
  }
  [[nodiscard]] std::uint16_t per_store_slots() const {
    return static_cast<std::uint16_t>(static_cast<double>(per_store) *
                                          fpu_slots_per_flop +
                                      0.5);
  }
};

/// Address bases of the simulated arrays.
struct LbmAddresses {
  arch::Addr f_base = 0;     ///< distribution array (both toggles)
  arch::Addr mask_base = 0;  ///< one byte per cell
  /// Bytes per distribution value: 8 = double precision, 4 = single.
  /// Sect. 2.4 observes LBM performance is precision-independent on T2
  /// because the kernel is FPU-bound — an ablation this knob reproduces.
  std::size_t elem_bytes = 8;
};

/// How the outer loops are parallelized.
enum class LoopOrder {
  kOuterZ,       ///< "!$OMP PARALLEL DO" over z, serial y and x
  kCoalescedZY,  ///< z and y fused into one parallel loop (paper's fix)
};

/// One thread's share of `steps` LBM time steps.
class LbmProgram final : public sim::AccessProgram {
 public:
  /// `chunks` partition the parallel iteration space: nz iterations for
  /// kOuterZ, nz*ny for kCoalescedZY (flat index -> (z, y)).
  LbmProgram(Geometry geometry, LbmAddresses addresses, LoopOrder order,
             std::vector<sched::IterRange> chunks, unsigned steps = 1,
             FlopModel flops = {});

  std::size_t next_batch(std::span<sim::Access> out) override;
  void reset() override;
  [[nodiscard]] std::uint64_t total_accesses() const override;

 private:
  /// Decodes the current parallel iteration into ghost-inclusive (z, y)
  /// ranges; for kOuterZ the iteration is a z-plane, y loops inside.
  void begin_iteration();

  Geometry geo_;
  LbmAddresses addr_;
  LoopOrder order_;
  std::vector<sched::IterRange> chunks_;
  unsigned steps_;
  FlopModel flops_;

  unsigned step_ = 0;
  std::size_t chunk_ = 0;
  std::size_t iter_ = 0;
  std::size_t y_ = 1;      ///< only advanced in kOuterZ mode
  std::size_t x_ = 1;
  unsigned phase_ = 0;     ///< 0: mask; 1..19: loads; 20..38: stores
};

/// Whole-chip LBM workload.
[[nodiscard]] sim::Workload make_lbm_workload(const Geometry& geometry,
                                              const LbmAddresses& addresses,
                                              LoopOrder order,
                                              unsigned num_threads,
                                              const sched::Schedule& schedule,
                                              unsigned steps = 1);

}  // namespace mcopt::kernels::lbm
