#pragma once
// Shared plumbing for the figure-reproduction benches: canonical simulator
// runners for each kernel plus output helpers. Every bench prints a paper-
// style table on stdout and optionally mirrors it to CSV (--csv <path>).

#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/jacobi.h"
#include "kernels/lbm/trace_program.h"
#include "kernels/stream.h"
#include "kernels/triad.h"
#include "sim/analytic.h"
#include "sim/chip.h"
#include "sim/faults.h"
#include "trace/virtual_arena.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace mcopt::bench {

/// Guards every number a bench reports: a NaN/inf/negative rate means the
/// simulator or the harness itself is broken, and a poisoned cell must fail
/// the run, not ship in a results table.
inline double checked_rate(double value, const char* what) {
  if (!std::isfinite(value) || value < 0.0)
    throw std::runtime_error(std::string("bench: non-finite ") + what +
                             " value " + std::to_string(value) +
                             " (simulator or harness bug)");
  return value;
}

/// Parses a --fault CLI string into a SimConfig fault set, validating it
/// against the config's interleave. Exits with a diagnostic on bad specs.
inline sim::FaultSpec parse_fault_knob(const std::string& text,
                                       const sim::SimConfig& cfg) {
  auto parsed = sim::FaultSpec::parse(text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  parsed.value().check(cfg.interleave).throw_if_failed();
  if (parsed.value().any())
    util::log_info("fault injection: " + parsed.value().describe());
  return parsed.value();
}

/// Parses the --schedule CLI grammar (timed fault intervals, see
/// sim::FaultSchedule::parse) and resolves percent-relative bounds against
/// `horizon` (the estimated run length in cycles). Validates against the
/// config's interleave; throws with a diagnostic on bad schedules.
inline sim::FaultSchedule parse_schedule_knob(const std::string& text,
                                              const sim::SimConfig& cfg,
                                              arch::Cycles horizon) {
  auto parsed = sim::FaultSchedule::parse(text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  const sim::FaultSchedule sched = parsed.value().resolved(horizon);
  sched.check(cfg.interleave).throw_if_failed();
  if (!sched.empty()) util::log_info("fault schedule: " + sched.describe());
  return sched;
}

/// Runs one simulated STREAM configuration; returns reported GB/s (STREAM
/// convention, RFO not counted).
inline double stream_reported_gbs(kernels::StreamOp op, std::size_t n,
                                  std::size_t offset_dp, unsigned threads,
                                  const sim::SimConfig& cfg = {}) {
  trace::VirtualArena arena;
  const arch::Addr block = arena.allocate(3 * (n + offset_dp) * 8, 8192);
  const auto bases = kernels::common_block_bases(block, n, offset_dp);
  auto wl = kernels::make_stream_workload(op, bases, n, threads,
                                          sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return checked_rate(static_cast<double>(kernels::stream_reported_bytes(op, n)) /
                          res.seconds() / 1e9,
                      "STREAM GB/s");
}

/// Analytic-model prediction for the same configuration (instant).
inline double stream_analytic_gbs(kernels::StreamOp op, std::size_t n,
                                  std::size_t offset_dp, unsigned threads,
                                  const sim::SimConfig& cfg = {}) {
  const auto bases =
      kernels::common_block_bases(arch::Addr{1} << 32, n, offset_dp);
  const auto descs = kernels::stream_descs(op, bases);
  std::vector<sim::AnalyticStream> streams;
  for (const auto& d : descs) streams.push_back({d.base, d.write});
  const arch::AddressMap map(cfg.interleave);
  const auto est = sim::estimate_bandwidth(sim::expand_rfo(streams), threads,
                                           cfg.calibration, map,
                                           cfg.topology.clock_ghz, cfg.faults);
  // Convert actual-traffic prediction back to the STREAM convention.
  const double convention =
      static_cast<double>(kernels::stream_reported_bytes(op, n)) /
      static_cast<double>(kernels::stream_actual_bytes(op, n));
  return checked_rate(est.bandwidth * convention / 1e9, "analytic GB/s");
}

/// Simulated vector triad in actual-traffic GB/s (Fig. 4 convention).
inline double triad_actual_gbs(const std::vector<arch::Addr>& bases,
                               std::size_t n, unsigned threads,
                               const sim::SimConfig& cfg = {}) {
  auto wl = kernels::make_triad_workload(bases, n, threads,
                                         sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return checked_rate(
      static_cast<double>(kernels::triad_actual_bytes(n)) / res.seconds() / 1e9,
      "triad GB/s");
}

/// Simulated Jacobi sweep in MLUPs/s.
inline double jacobi_mlups(std::size_t n, const seg::LayoutSpec& spec,
                           const sched::Schedule& schedule, unsigned threads,
                           const sim::SimConfig& cfg = {}) {
  trace::VirtualArena arena;
  const auto grids = kernels::make_virtual_jacobi(arena, n, spec);
  auto wl = trace::make_jacobi_workload(grids.grids(), threads, schedule, 1);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return checked_rate(static_cast<double>(trace::jacobi_updates_per_sweep(n)) /
                          res.seconds() / 1e6,
                      "Jacobi MLUPs");
}

/// Simulated D3Q19 LBM step: the full simulator result (cycle counts for
/// schedule horizons, corrupted-read counters for the flip fault class).
inline sim::SimResult lbm_sim_result(std::size_t n,
                                     kernels::lbm::DataLayout layout,
                                     kernels::lbm::LoopOrder order,
                                     unsigned threads, std::size_t pad_x = 0,
                                     const sim::SimConfig& cfg = {}) {
  using namespace kernels::lbm;
  const Geometry g{n, n, n, pad_x, layout};
  trace::VirtualArena arena;
  LbmAddresses addr;
  addr.f_base = arena.allocate(g.f_elems() * 8, 8192);
  addr.mask_base = arena.allocate(g.cells(), 8192);
  auto wl = make_lbm_workload(g, addr, order, threads,
                              sched::Schedule::static_block(), 1);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  return chip.run(wl);
}

/// Simulated D3Q19 LBM step in MLUPs/s.
inline double lbm_mlups(std::size_t n, kernels::lbm::DataLayout layout,
                        kernels::lbm::LoopOrder order, unsigned threads,
                        std::size_t pad_x = 0, const sim::SimConfig& cfg = {}) {
  const sim::SimResult res = lbm_sim_result(n, layout, order, threads, pad_x, cfg);
  const kernels::lbm::Geometry g{n, n, n, pad_x, layout};
  return checked_rate(
      static_cast<double>(g.interior_cells()) / res.seconds() / 1e6,
      "LBM MLUPs");
}

/// Prints an aligned table to stdout and mirrors it to CSV when a path was
/// given (--csv).
inline void emit(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows,
                 const std::string& csv_path) {
  util::Table table(header);
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path, header);
    for (const auto& row : rows) csv.add_row(row);
    csv.close().throw_if_failed();
    util::log_info("wrote " + std::to_string(rows.size()) + " rows to " + csv_path);
  }
}

}  // namespace mcopt::bench
