#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcopt::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("harmonic_mean: empty input");
  double inv = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("harmonic_mean: non-positive value");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("geometric_mean: empty input");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = median(xs);
  return s;
}

}  // namespace mcopt::util
