// Unit tests for the per-tenant bandwidth attribution ledger: byte-exact
// spread semantics, socket derivation, export content, and the snapshot
// encode/restore round-trip the durable StateImage depends on.

#include "obs/attribution.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/csv.h"

namespace mcopt::obs {
namespace {

/// The ledger is process-global; each test starts from an empty one with the
/// default T2 socket width and leaves it that way.
class AttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Attribution::instance().reset();
    Attribution::instance().set_controllers_per_socket(4);
  }
  void TearDown() override {
    Attribution::instance().reset();
    Attribution::instance().set_controllers_per_socket(4);
  }
};

TEST_F(AttributionTest, ChargeAccumulatesIntoOneCell) {
  auto& a = Attribution::instance();
  a.charge(7, 2, Charge::kServed, 0, 100);
  a.charge(7, 2, Charge::kServed, 0, 50);
  const auto cells = a.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.tenant, 7u);
  EXPECT_EQ(cells[0].key.controller, 2);
  EXPECT_EQ(cells[0].key.socket, 0);
  EXPECT_EQ(cells[0].bytes, 150u);
  EXPECT_EQ(cells[0].count, 2u);
}

TEST_F(AttributionTest, SpreadIsByteExactWithRemainder) {
  auto& a = Attribution::instance();
  // 10 bytes over 3 controllers: 4 + 3 + 3, never 9 or 12.
  a.charge_spread(1, {0, 1, 2}, Charge::kServed, 0, 10);
  const auto cells = a.cells();
  ASSERT_EQ(cells.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto& c : cells) sum += c.bytes;
  EXPECT_EQ(sum, 10u);
  EXPECT_EQ(cells[0].bytes, 4u);  // first controller absorbs the remainder
  EXPECT_EQ(cells[1].bytes, 3u);
  EXPECT_EQ(cells[2].bytes, 3u);
  // The event is counted once, on the first cell — not once per controller.
  EXPECT_EQ(cells[0].count, 1u);
  EXPECT_EQ(cells[1].count, 0u);
  EXPECT_EQ(cells[2].count, 0u);
  EXPECT_EQ(a.tenant_bytes(1, Charge::kServed), 10u);
  EXPECT_EQ(a.tenant_count(1, Charge::kServed), 1u);
}

TEST_F(AttributionTest, EmptySpreadChargesTheUnplacedCell) {
  auto& a = Attribution::instance();
  a.charge_spread(3, {}, Charge::kShed, 7, 4096);
  const auto cells = a.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.controller, -1);
  EXPECT_EQ(cells[0].key.socket, -1);
  EXPECT_EQ(cells[0].key.reason, 7u);
  EXPECT_EQ(cells[0].bytes, 4096u);
  EXPECT_EQ(cells[0].count, 1u);
}

TEST_F(AttributionTest, ChargeMaskMatchesExplicitSpread) {
  auto& a = Attribution::instance();
  a.charge_mask(2, 0b101u, Charge::kServed, 0, 9);  // controllers 0 and 2
  EXPECT_EQ(a.tenant_bytes(2, Charge::kServed), 9u);
  const auto cells = a.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.controller, 0);
  EXPECT_EQ(cells[0].bytes, 5u);
  EXPECT_EQ(cells[1].key.controller, 2);
  EXPECT_EQ(cells[1].bytes, 4u);
}

TEST_F(AttributionTest, SocketDerivedFromControllerIndex) {
  auto& a = Attribution::instance();
  a.charge(1, 5, Charge::kServed, 0, 1);   // 5 / 4 = socket 1
  a.charge(1, 11, Charge::kServed, 0, 1);  // 11 / 4 = socket 2
  auto cells = a.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.socket, 1);
  EXPECT_EQ(cells[1].key.socket, 2);
  // A wider socket (8 controllers) folds controller 11 into socket 1.
  a.reset();
  a.set_controllers_per_socket(8);
  a.charge(1, 11, Charge::kServed, 0, 1);
  cells = a.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.socket, 1);
}

TEST_F(AttributionTest, TenantTotalsFilterByChargeKind) {
  auto& a = Attribution::instance();
  a.charge(4, 0, Charge::kServed, 0, 100);
  a.charge(4, -1, Charge::kShed, 2, 700);
  a.charge(0, 1, Charge::kScrub, 0, 50);
  EXPECT_EQ(a.tenant_bytes(4, Charge::kServed), 100u);
  EXPECT_EQ(a.tenant_bytes(4, Charge::kShed), 700u);
  EXPECT_EQ(a.tenant_bytes(4, Charge::kScrub), 0u);
  EXPECT_EQ(a.tenant_bytes(0, Charge::kScrub), 50u);
  EXPECT_EQ(a.tenant_count(4, Charge::kShed), 1u);
}

TEST_F(AttributionTest, JsonCarriesCellsRollupsAndTotals) {
  auto& a = Attribution::instance();
  a.charge(7, 2, Charge::kServed, 0, 100);
  a.charge(7, -1, Charge::kShed, 3, 40, 2);
  const std::string doc = a.json();
  EXPECT_NE(doc.find("\"cells\":["), std::string::npos) << doc;
  EXPECT_NE(doc.find("{\"tenant\":7,\"socket\":-1,\"controller\":-1,"
                     "\"charge\":\"shed\",\"reason\":3,\"bytes\":40,"
                     "\"count\":2}"),
            std::string::npos)
      << doc;
  // Rollup: served bytes from kServed cells, shed count from kShed cells.
  EXPECT_NE(doc.find("{\"tenant\":7,\"served_bytes\":100,\"sheds\":2}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"served\":{\"bytes\":100,\"count\":1}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"shed\":{\"bytes\":40,\"count\":2}"),
            std::string::npos)
      << doc;
}

TEST_F(AttributionTest, CsvExportIsSchemaStampedAndComplete) {
  auto& a = Attribution::instance();
  a.charge(1, 0, Charge::kMigration, 0, 12345);
  const std::string path = ::testing::TempDir() + "attr_export.csv";
  ASSERT_TRUE(a.write_csv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind(std::string("# ") + util::CsvWriter::kSchemaVersion, 0),
            0u)
      << line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "tenant,socket,controller,charge,reason,bytes,count");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,0,0,migration,0,12345,1");
}

TEST_F(AttributionTest, EncodeRestoreRoundTripsTheLedger) {
  auto& a = Attribution::instance();
  a.set_controllers_per_socket(8);
  a.charge(1, 9, Charge::kServed, 0, 111);
  a.charge(2, -1, Charge::kShed, 5, 222, 3);
  const std::vector<std::uint8_t> blob = a.encode();
  a.reset();
  a.set_controllers_per_socket(4);
  ASSERT_TRUE(a.restore(blob).ok());
  const auto cells = a.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.tenant, 1u);
  EXPECT_EQ(cells[0].key.socket, 1);  // 9 / 8 from the restored width
  EXPECT_EQ(cells[0].bytes, 111u);
  EXPECT_EQ(cells[1].key.reason, 5u);
  EXPECT_EQ(cells[1].count, 3u);
  // The snapshot carries the socket width too: new charges keep deriving
  // sockets the way the snapshotted process did.
  a.charge(3, 9, Charge::kProbe, 0, 1);
  const auto after = a.cells();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[2].key.socket, 1);
}

TEST_F(AttributionTest, RestoreReplacesExistingCellsWholesale) {
  auto& a = Attribution::instance();
  a.charge(9, 0, Charge::kServed, 0, 777);
  const std::vector<std::uint8_t> blob = a.encode();
  a.reset();
  a.charge(8, 1, Charge::kScrub, 0, 1);  // pre-restore state must vanish
  ASSERT_TRUE(a.restore(blob).ok());
  EXPECT_EQ(a.tenant_bytes(8, Charge::kScrub), 0u);
  EXPECT_EQ(a.tenant_bytes(9, Charge::kServed), 777u);
}

TEST_F(AttributionTest, RestoreRefusesCorruptBlobsTyped) {
  auto& a = Attribution::instance();
  a.charge(1, 0, Charge::kServed, 0, 10);
  std::vector<std::uint8_t> blob = a.encode();

  // Truncated header.
  EXPECT_FALSE(a.restore({blob.begin(), blob.begin() + 7}).ok());
  // Truncated mid-cell.
  EXPECT_FALSE(a.restore({blob.begin(), blob.end() - 5}).ok());
  // Trailing garbage.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(a.restore(padded).ok());
  // Unknown snapshot version.
  std::vector<std::uint8_t> vbad = blob;
  vbad[0] = 0xFF;
  const util::Status st = a.restore(vbad);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("version"), std::string::npos);
  // Zero controllers-per-socket would divide by zero on the next charge.
  std::vector<std::uint8_t> zps = blob;
  zps[4] = zps[5] = zps[6] = zps[7] = 0;
  EXPECT_FALSE(a.restore(zps).ok());
  // Charge ordinal past kMigration.
  std::vector<std::uint8_t> cbad = blob;
  cbad[16 + 12] = 0x09;  // header(16) + tenant/socket/controller(12) = charge
  EXPECT_FALSE(a.restore(cbad).ok());

  // A refused restore must not have clobbered the live ledger.
  EXPECT_EQ(a.tenant_bytes(1, Charge::kServed), 10u);
}

TEST_F(AttributionTest, ChargesMirrorIntoRegistryCounters) {
  auto& served = MetricsRegistry::instance().counter(
      "mcopt_attr_served_bytes_total",
      "bytes served, attributed to (tenant, socket, controller)");
  auto& sheds = MetricsRegistry::instance().counter(
      "mcopt_attr_shed_events_total",
      "shed verdicts attributed to (tenant, shed reason)");
  const std::uint64_t served0 = served.value();
  const std::uint64_t sheds0 = sheds.value();
  auto& a = Attribution::instance();
  a.charge_spread(1, {0, 1}, Charge::kServed, 0, 4096);
  a.charge(2, -1, Charge::kShed, 1, 128, 4);
  EXPECT_EQ(served.value() - served0, 4096u);
  EXPECT_EQ(sheds.value() - sheds0, 4u);
}

}  // namespace
}  // namespace mcopt::obs
