#include "seg/layout.h"

#include <stdexcept>

namespace mcopt::seg {
namespace {

constexpr bool is_pow2(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void LayoutSpec::validate() const {
  if (!is_pow2(base_align))
    throw std::invalid_argument("LayoutSpec: base_align must be a power of two");
  if (segment_align > 1 && !is_pow2(segment_align))
    throw std::invalid_argument("LayoutSpec: segment_align must be 0, 1 or a power of two");
}

LayoutResult compute_layout(const std::vector<std::size_t>& segment_bytes,
                            const LayoutSpec& spec) {
  spec.validate();
  LayoutResult result;
  result.segment_pos.resize(segment_bytes.size());
  if (segment_bytes.empty()) {
    result.total_bytes = spec.offset;
    return result;
  }

  // Pass 1: aligned (pre-shift) positions.
  std::size_t pos = 0;
  for (std::size_t s = 0; s < segment_bytes.size(); ++s) {
    if (s != 0) pos = align_up(pos, spec.segment_align);
    result.segment_pos[s] = pos;
    pos += segment_bytes[s];
  }

  // Pass 2: displace segment s by s*shift, the whole block by offset.
  std::size_t end = 0;
  for (std::size_t s = 0; s < segment_bytes.size(); ++s) {
    result.segment_pos[s] += s * spec.shift + spec.offset;
    end = result.segment_pos[s] + segment_bytes[s];
  }
  result.total_bytes = end;
  return result;
}

std::vector<std::size_t> split_even(std::size_t n, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("split_even: zero parts");
  std::vector<std::size_t> sizes(parts, n / parts);
  const std::size_t remainder = n % parts;
  for (std::size_t s = 0; s < remainder; ++s) ++sizes[s];
  return sizes;
}

}  // namespace mcopt::seg
