#pragma once
// Synthetic address-space allocator for simulator workloads.
//
// The simulator consumes addresses, not data, so paper-scale arrays (hundreds
// of MiB) are "allocated" as address ranges only. The arena mimics a bump
// allocator over a clean region of the virtual address space; alignment
// semantics match posix_memalign. A `gap` models the malloc bookkeeping that
// makes consecutive "plain" allocations non-adjacent (Sect. 2.2's plain
// vector triad depends on consecutive mallocs landing at N-dependent bases).

#include <cstddef>
#include <vector>

#include "arch/address_map.h"
#include "seg/layout.h"

namespace mcopt::trace {

/// Bump allocator over synthetic addresses.
class VirtualArena {
 public:
  /// `base` is the first address handed out (default: 4 GiB mark, page
  /// aligned, far from zero so address arithmetic bugs surface).
  explicit VirtualArena(arch::Addr base = arch::Addr{1} << 32) : next_(base) {}

  /// Returns `bytes` bytes aligned to `align` (power of two).
  arch::Addr allocate(std::size_t bytes, std::size_t align);

  /// Mimics glibc malloc for large blocks: 16-byte alignment plus a
  /// header-sized displacement, so consecutive allocations are contiguous
  /// up to a 16-byte-rounded size (what "plain arrays with no restrictions"
  /// get in the paper).
  arch::Addr malloc_like(std::size_t bytes);

  [[nodiscard]] arch::Addr next() const noexcept { return next_; }

 private:
  arch::Addr next_;
};

/// Address-only counterpart of seg::seg_array: applies a seg::LayoutSpec to
/// arena-allocated storage and exposes element addresses.
class VirtualSegArray {
 public:
  VirtualSegArray(VirtualArena& arena, std::vector<std::size_t> segment_elems,
                  std::size_t elem_bytes, const seg::LayoutSpec& spec);

  /// Even split of n elements over `parts` segments (paper's rule).
  static VirtualSegArray even(VirtualArena& arena, std::size_t n,
                              std::size_t parts, std::size_t elem_bytes,
                              const seg::LayoutSpec& spec);

  [[nodiscard]] std::size_t num_segments() const noexcept { return sizes_.size(); }
  [[nodiscard]] std::size_t segment_size(std::size_t s) const { return sizes_.at(s); }
  [[nodiscard]] std::size_t size() const noexcept { return total_; }

  [[nodiscard]] arch::Addr segment_base(std::size_t s) const {
    return base_ + positions_.at(s);
  }
  [[nodiscard]] arch::Addr address_of(std::size_t s, std::size_t i) const {
    return segment_base(s) + i * elem_bytes_;
  }
  [[nodiscard]] std::size_t elem_bytes() const noexcept { return elem_bytes_; }
  [[nodiscard]] arch::Addr base() const noexcept { return base_; }

 private:
  arch::Addr base_ = 0;
  std::size_t elem_bytes_ = 0;
  std::size_t total_ = 0;
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> positions_;
};

}  // namespace mcopt::trace
