#pragma once
// Closed-form controller-balance bandwidth model.
//
// For streaming kernels the DES in chip.h reduces, in steady state, to a
// small queueing computation: all concurrently active line streams advance
// in lock-step, the address map assigns every step's lines to controllers,
// lines on the same controller serialize while controllers work in parallel,
// and the whole pattern repeats with the 512-byte interleave period. This
// model evaluates that computation directly — an offset sweep that takes the
// DES minutes takes microseconds here. Tests cross-validate the two (the
// model tracks DES bandwidth shapes; absolute agreement is bounded but not
// exact since the DES also models latency jitter, L1 effects and banking).

#include <cstdint>
#include <span>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "sim/fault_schedule.h"
#include "sim/faults.h"

namespace mcopt::sim {

/// One concurrently advancing line stream (e.g. one array operand of one
/// thread's current chunk).
struct AnalyticStream {
  arch::Addr base = 0;
  bool write = false;
};

/// Expands logical store streams into their physical traffic: a write-
/// allocate cache turns every stored line into an RFO read plus an eventual
/// write-back, both on the store stream's addresses.
[[nodiscard]] std::vector<AnalyticStream> expand_rfo(
    std::span<const AnalyticStream> logical);

struct AnalyticEstimate {
  /// Bytes/s permitted by controller service under this stream placement.
  double service_bandwidth = 0.0;
  /// Bytes/s permitted by (threads x 1 outstanding read miss) concurrency.
  double latency_bandwidth = 0.0;
  /// min(service, latency): the model's prediction of actual traffic.
  double bandwidth = 0.0;
  /// Controller balance in (0,1]; 1/num_controllers is full aliasing.
  double balance = 0.0;
  /// Predicted busy fraction of each controller relative to the service
  /// critical path (the same convention as SimResult::mc_utilization): an
  /// offline controller reads 0, the bottleneck controller reads ~1, and a
  /// derated controller saturates above its healthy peers. This is what the
  /// executor's workers feed the supervisor as measurement stand-ins.
  std::vector<double> mc_utilization;
};

/// Estimates sustainable memory traffic for `streams` advancing in
/// lock-step, with `num_threads` strands providing read concurrency.
/// `streams` should be pre-expanded with expand_rfo().
///
/// `faults` mirrors the chip model's controller faults: lines owned by an
/// offline controller are charged to its remap survivor, and a derated
/// controller's service cost is scaled by 1/factor. (Bank and straggler
/// faults are below this model's resolution and are ignored.) The balance
/// ideal is taken over the surviving controllers only.
[[nodiscard]] AnalyticEstimate estimate_bandwidth(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& faults = {});

/// Epoch-resolved composition of the analytic model over a transient-fault
/// schedule: the per-FaultSpec model is evaluated once per epoch (epoch
/// boundaries = fault transitions over [0, horizon)) and composed with
/// epoch-length weights — whole-run bytes are sum(bandwidth_e * length_e),
/// so `whole.bandwidth` is the time-weighted mean the DES should approach.
struct ScheduledEstimate {
  struct EpochEstimate {
    arch::Cycles begin = 0;
    arch::Cycles end = 0;
    std::string faults;  ///< merged active spec, FaultSpec::describe()
    AnalyticEstimate estimate;
  };
  std::vector<EpochEstimate> epochs;
  AnalyticEstimate whole;  ///< epoch-length-weighted composition
};

/// `schedule` must be resolved (no percent bounds); `horizon` is the run
/// length in cycles the weights are taken over. `baseline` faults apply to
/// every epoch (FaultSpec::merged semantics, mirroring the chip).
[[nodiscard]] ScheduledEstimate estimate_bandwidth_scheduled(
    std::span<const AnalyticStream> streams, unsigned num_threads,
    const arch::Calibration& cal, const arch::AddressMap& map,
    double clock_ghz, const FaultSpec& baseline, const FaultSchedule& schedule,
    arch::Cycles horizon);

}  // namespace mcopt::sim
