// Fig. 6 reproduction: 2D Jacobi five-point relaxation performance
// (MLUPs/s) versus problem size N for 8..64 threads with the optimal layout
// (rows aligned to 512 B, cumulative 128 B shift, OpenMP "static,1"), plus
// the unoptimized 64-thread baseline.
//
// Paper shape (Sect. 2.3): the optimized curves are smooth in N and scale
// with the thread count towards ~600 MLUPs/s; the plain 64-thread curve
// shows the usual period-64/32 collapses. The optimal parameters are
// derived analytically by the planner — no trial and error.

#include "common.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("Fig. 6: 2D Jacobi MLUPs/s vs N, optimal vs plain layout");
  cli.flag("full", "N = 64..2048 step 32 plus a fine window (paper range)")
      .option_int("max-n", 1024, "largest N (2048 with --full)")
      .option_int("step", 128, "N step (32 with --full)")
      .option_str("csv", "", "mirror results to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const bool full = cli.get_flag("full");
  const std::size_t max_n = full ? 2048 : static_cast<std::size_t>(cli.get_int("max-n"));
  const std::size_t step = full ? 32 : static_cast<std::size_t>(cli.get_int("step"));

  const arch::AddressMap map;
  const seg::LayoutSpec optimal = kernels::jacobi_optimal_spec(map);
  const seg::LayoutSpec plain = kernels::jacobi_plain_spec();
  const auto static1 = sched::Schedule::static_chunk(1);
  const auto static_block = sched::Schedule::static_block();

  std::printf(
      "# 2D Jacobi heat solver, one sweep, MLUPs/s\n"
      "# optimal: rows 512B-aligned, shift=128B, schedule static,1 "
      "(planner-derived)\n# plain: dense rows, default static schedule\n\n");

  const std::vector<std::string> header = {"N",       "8T opt",  "16T opt",
                                           "32T opt", "64T opt", "64T plain"};
  std::vector<std::vector<std::string>> rows;

  auto add_row = [&](std::size_t n) {
    std::vector<std::string> row{std::to_string(n)};
    for (unsigned threads : {8u, 16u, 32u, 64u})
      row.push_back(
          util::fmt_fixed(bench::jacobi_mlups(n, optimal, static1, threads), 1));
    row.push_back(
        util::fmt_fixed(bench::jacobi_mlups(n, plain, static_block, 64), 1));
    rows.push_back(std::move(row));
  };

  for (std::size_t n = 128; n <= max_n; n += step) add_row(n);
  // Fine window like the paper's inset (1200..1300), scaled to the sweep.
  if (full)
    for (std::size_t n = 1200; n <= 1300; n += 4) add_row(n);

  bench::emit(header, rows, cli.get_str("csv"));

  const double opt512 = bench::jacobi_mlups(512, optimal, static1, 64);
  const double plain512 = bench::jacobi_mlups(512, plain, static_block, 64);
  std::printf(
      "\nshape check at N=512 (power-of-two rows): optimal %.1f vs plain "
      "%.1f MLUPs/s — the planner layout removes the collapse (paper: "
      "~600 vs wildly swinging).\n",
      opt512, plain512);
  return 0;
}
