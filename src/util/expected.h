#pragma once
// Minimal expected/status types for recoverable errors — the guardrail layer
// of the toolkit. Configuration validation and the simulator watchdog return
// these instead of throwing, so long-running harnesses can report a precise
// diagnostic and keep sweeping instead of dying mid-table. Throwing wrappers
// remain for callers that prefer exceptions (the historical API).

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mcopt::util {

/// A diagnostic carried by a failed Expected/Status.
struct Error {
  std::string message;
};

/// Result of a fallible operation: either a T or an Error diagnostic.
/// Deliberately tiny (no monadic combinators) — the codebase needs exactly
/// "did it work, and if not, why" at validation boundaries.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Expected failure(std::string message) {
    return Expected(Error{std::move(message)});
  }

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  /// The value; throws std::runtime_error carrying the diagnostic on failure.
  [[nodiscard]] T& value() {
    if (!has_value()) throw std::runtime_error(error().message);
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const {
    if (!has_value()) throw std::runtime_error(error().message);
    return std::get<T>(state_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

  /// The diagnostic; only meaningful when !has_value().
  [[nodiscard]] const Error& error() const { return std::get<Error>(state_); }

 private:
  std::variant<T, Error> state_;
};

/// Expected<void>: success or a diagnostic. Also usable as an accumulator —
/// note() keeps the first failure and appends subsequent ones, so validators
/// can report every problem at once.
class Status {
 public:
  Status() = default;

  [[nodiscard]] static Status failure(std::string message) {
    Status s;
    s.ok_ = false;
    s.error_.message = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] const Error& error() const noexcept { return error_; }

  /// Records a failure; multiple notes concatenate with "; ".
  void note(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_.message = message;
    } else {
      error_.message += "; " + message;
    }
  }

  /// Merges another status' diagnostics into this one.
  void merge(const Status& other) {
    if (!other.ok()) note(other.error().message);
  }

  /// Throws std::invalid_argument on failure (bridge to the throwing API).
  void throw_if_failed() const {
    if (!ok_) throw std::invalid_argument(error_.message);
  }

 private:
  bool ok_ = true;
  Error error_;
};

}  // namespace mcopt::util
