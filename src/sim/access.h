#pragma once
// The unit of work threads feed to the simulator: one 8-byte-or-smaller
// memory operation plus the floating-point work preceding it.

#include <cstdint>

#include "arch/address_map.h"

namespace mcopt::sim {

enum class Op : std::uint8_t { kLoad, kStore };

/// One memory access in program order on one thread.
struct Access {
  arch::Addr addr = 0;
  Op op = Op::kLoad;
  /// True when this access is the first of a new loop iteration of roughly
  /// uniform cost (an element for streaming kernels, a row for stencils).
  /// The chip's lockstep model uses these markers to bound how far threads
  /// of a worksharing loop may drift apart.
  bool begins_iteration = false;
  /// Floating-point operations the thread executes before this access;
  /// they reserve time on the core's shared FPU.
  std::uint16_t flops_before = 0;
};

}  // namespace mcopt::sim
