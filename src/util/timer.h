#pragma once
// Wall-clock timing helpers for native benchmark kernels.

#include <chrono>

namespace mcopt::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mcopt::util
