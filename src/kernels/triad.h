#pragma once
// Schönauer vector triad A(:) = B(:) + C(:)*D(:) (Sect. 2.2), the paper's
// vehicle for the seg_array framework:
//
//  * triad() is the generic dispatching algorithm from the paper: it accepts
//    either segmented iterators (recursing into raw local loops) or plain
//    pointers/iterators, with identical inner-loop code generation — the
//    claim Fig. 5 substantiates;
//  * run_triad_* are OpenMP drivers for the plain and segmented variants;
//  * make_triad_workload / triad_layout_bases reproduce the Fig. 4 layout
//    experiments on the simulator (plain malloc, page-aligned pessimal,
//    page-aligned with planned offsets).

#include <cstddef>
#include <vector>

#include "seg/algorithms.h"
#include "seg/planner.h"
#include "seg/seg_array.h"
#include "sched/schedule.h"
#include "sim/program.h"
#include "trace/stream_program.h"
#include "trace/virtual_arena.h"

namespace mcopt::kernels {

/// Serial triad over raw local ranges: a[i] = b[i] + c[i]*d[i].
/// This is the separately compilable low-level kernel of the paper.
void triad_local(double* a, const double* b, const double* c, const double* d,
                 std::size_t n) noexcept;

/// Generic dispatching triad: segmented overload recurses segment-wise into
/// triad_local; all four sequences must be segment-compatible (equal segment
/// sizes), which seg_array::even guarantees for equal (n, parts, ...).
template <seg::SegmentedIterator It, typename CIt>
void triad(It a_first, It a_last, CIt b_first, CIt c_first, CIt d_first) {
  auto bs = b_first.segment();
  auto cs = c_first.segment();
  auto ds = d_first.segment();
  seg::for_each_local_range(a_first, a_last, [&](double* lo, double* hi) {
    triad_local(lo, bs->begin(), cs->begin(), ds->begin(),
                static_cast<std::size_t>(hi - lo));
    ++bs;
    ++cs;
    ++ds;
  });
}

/// Plain-iterator overload: one tight loop.
inline void triad(double* a_first, double* a_last, const double* b_first,
                  const double* c_first, const double* d_first) {
  triad_local(a_first, b_first, c_first, d_first,
              static_cast<std::size_t>(a_last - a_first));
}

/// One OpenMP-parallel sweep over plain arrays; returns wall seconds.
double triad_plain_sweep_seconds(double* a, const double* b, const double* c,
                                 const double* d, std::size_t n);

/// One OpenMP-parallel sweep over seg_arrays, parallelized over segments the
/// paper's way (one segment per thread, manual scheduling); returns seconds.
double triad_segmented_sweep_seconds(seg::seg_array<double>& a,
                                     const seg::seg_array<double>& b,
                                     const seg::seg_array<double>& c,
                                     const seg::seg_array<double>& d);

/// Bytes of actual memory traffic per sweep (3 reads + RFO + write = 5 words
/// per iteration; the paper's Fig. 4 GB/s counts this traffic).
[[nodiscard]] std::uint64_t triad_actual_bytes(std::size_t n);

/// Layout presets of Fig. 4.
enum class TriadLayout {
  kPlain,          ///< consecutive malloc-like allocations, no constraints
  kAligned8k,      ///< all four arrays page-aligned (pessimal, full aliasing)
  kPlannedOffsets  ///< page-aligned plus planner offsets k*(period/4)
};

/// Base addresses of arrays A, B, C, D under a Fig. 4 layout preset.
/// `offset_scale` multiplies the planned offsets (Fig. 4 also shows 32 B and
/// 64 B variants; 128 B = period/4 is the optimum).
[[nodiscard]] std::vector<arch::Addr> triad_layout_bases(
    trace::VirtualArena& arena, TriadLayout layout, std::size_t n,
    const arch::AddressMap& map, std::size_t offset_scale_bytes = 128);

/// Simulator workload for the vector triad with the given array bases
/// (order A, B, C, D).
[[nodiscard]] sim::Workload make_triad_workload(const std::vector<arch::Addr>& bases,
                                                std::size_t n, unsigned num_threads,
                                                const sched::Schedule& schedule,
                                                unsigned sweeps = 1);

}  // namespace mcopt::kernels
