#include "runtime/executor/executor.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "kernels/jacobi.h"
#include "kernels/lbm/solver.h"
#include "kernels/triad.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc.h"
#include "util/log.h"

namespace mcopt::runtime::exec {
namespace {

constexpr std::size_t shed_index(ShedReason r) noexcept {
  return static_cast<std::size_t>(r);
}

std::uint32_t crc_grid(const seg::seg_array<double>& g) {
  util::Crc32c crc;
  for (std::size_t i = 0; i < g.num_segments(); ++i)
    crc.update(g.segment(i).begin(), g.segment(i).size() * sizeof(double));
  return crc.value();
}

/// Typed shed-event names: one literal per reason so a trace consumer can
/// classify sheds without parsing args (the recorder stores pointers, so
/// these must be literals).
const char* shed_event_name(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kQueueFull: return "job.shed.queue-full";
    case ShedReason::kWouldMissDeadline: return "job.shed.would-miss-deadline";
    case ShedReason::kNoCapacity: return "job.shed.no-capacity";
    case ShedReason::kDeadlineExpiredInQueue: return "job.shed.deadline-expired";
    case ShedReason::kCancelled: return "job.shed.cancelled";
    case ShedReason::kShutdown: return "job.shed.shutdown";
    case ShedReason::kTenantThrottled: return "job.shed.tenant-throttled";
    case ShedReason::kNone: break;
  }
  return "job.shed";
}

/// Executor metrics, registered once; updates are relaxed atomics on the
/// submit/worker paths.
struct ExecMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& completed;
  obs::Counter& shed;
  obs::Counter& replans;
  obs::Counter& breaker_trips;
  obs::Histogram& sojourn;

  static ExecMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ExecMetrics m{
        reg.counter("mcopt_exec_jobs_submitted_total", "Jobs submitted"),
        reg.counter("mcopt_exec_jobs_admitted_total",
                    "Jobs past admission control"),
        reg.counter("mcopt_exec_jobs_completed_total", "Jobs completed"),
        reg.counter("mcopt_exec_jobs_shed_total",
                    "Jobs shed for any reason (admission or later)"),
        reg.counter("mcopt_exec_replans_total",
                    "Replans committed by the control step"),
        reg.counter("mcopt_exec_breaker_trips_total",
                    "Circuit-breaker arms on diagnosed-dead controllers"),
        reg.histogram("mcopt_exec_job_sojourn_cycles",
                      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9},
                      "Completed-job sojourn (finish - arrival), sim cycles")};
    return m;
  }
};

}  // namespace

Executor::Executor(ExecutorConfig cfg)
    : cfg_(std::move(cfg)),
      pricing_(cfg_.pricing),
      queue_(cfg_.lane_capacity, cfg_.queue_policy),
      supervisor_(cfg_.detector, cfg_.pricing.map.spec(), cfg_.seed) {
  if (cfg_.num_workers == 0)
    throw std::invalid_argument("Executor: num_workers must be >= 1");
  if (cfg_.truth.has_relative())
    throw std::invalid_argument(
        "Executor: truth schedule has unresolved percent bounds — call "
        "resolved(horizon) first");
  cfg_.truth.check(cfg_.pricing.map.spec()).throw_if_failed();

  const unsigned nc = cfg_.pricing.map.spec().num_controllers();
  breakers_.reserve(nc);
  for (unsigned c = 0; c < nc; ++c)
    breakers_.emplace_back(cfg_.breaker, cfg_.seed + c + 1);
  breaker_open_.assign(nc, false);

  workers_.reserve(cfg_.num_workers);
  for (unsigned i = 0; i < cfg_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() { shutdown(Drain::kShedQueued); }

void Executor::advance_arrival_clock(arch::Cycles to) noexcept {
  arch::Cycles seen = arrival_clock_.load(std::memory_order_relaxed);
  while (seen < to && !arrival_clock_.compare_exchange_weak(
                          seen, to, std::memory_order_relaxed)) {
  }
}

arch::Cycles Executor::virtual_now() const noexcept {
  return std::max(arrival_clock_.load(std::memory_order_relaxed),
                  service_tail_.load(std::memory_order_relaxed));
}

Executor::VirtualClocks Executor::virtual_clocks() const noexcept {
  return VirtualClocks{arrival_clock_.load(std::memory_order_relaxed),
                       service_tail_.load(std::memory_order_relaxed),
                       admit_tail_.load(std::memory_order_relaxed)};
}

void Executor::restore_virtual_clocks(const VirtualClocks& c) noexcept {
  arrival_clock_.store(c.arrival, std::memory_order_relaxed);
  service_tail_.store(c.service_tail, std::memory_order_relaxed);
  admit_tail_.store(c.admit_tail, std::memory_order_relaxed);
}

sim::FaultSpec Executor::believed_fault() const {
  const std::lock_guard<std::mutex> guard(believed_mu_);
  return believed_;
}

sim::FaultSpec Executor::effective_fault(arch::Cycles now) const {
  const std::lock_guard<std::mutex> guard(believed_mu_);
  return effective_fault_locked(now);
}

sim::FaultSpec Executor::effective_fault_locked(arch::Cycles now) const {
  sim::FaultSpec eff = believed_;
  for (unsigned c = 0; c < breakers_.size(); ++c)
    if (!eff.is_offline(c) && breakers_[c].ready_in(now) > 0)
      eff.offline_controllers.push_back(c);
  return eff;
}

std::vector<unsigned> Executor::broken_controllers(arch::Cycles now) const {
  const std::lock_guard<std::mutex> guard(believed_mu_);
  std::vector<unsigned> out;
  for (unsigned c = 0; c < breakers_.size(); ++c)
    if (breakers_[c].ready_in(now) > 0) out.push_back(c);
  return out;
}

SubmitResult Executor::submit(const JobSpec& spec) {
  if (!(spec.fair_weight > 0.0))
    throw std::invalid_argument("Executor: JobSpec::fair_weight must be > 0");
  SubmitResult out;
  out.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ExecMetrics::get().submitted.inc();
  obs::trace_instant("job.submit", "exec", out.id, spec.arrival);
  advance_arrival_clock(spec.arrival);

  JobReport rep;
  rep.id = out.id;
  rep.kind = spec.kind;
  rep.priority = spec.priority;
  rep.tenant = spec.tenant;
  rep.arrival = spec.arrival;
  rep.deadline = spec.deadline;
  rep.trace_id = spec.trace_id;

  const auto reject = [&](ShedReason r) {
    out.accepted = false;
    out.rejected = r;
    rep.shed = r;
    shed_[shed_index(r)].fetch_add(1, std::memory_order_relaxed);
    ExecMetrics::get().shed.inc();
    obs::trace_instant(shed_event_name(r), "exec", out.id, spec.arrival);
    if (spec.trace_id != 0)
      obs::trace_flow_end("job.flow.reject", "causal", spec.trace_id, out.id);
    finalize(std::move(rep));
    return out;
  };

  if (stopped_.load(std::memory_order_acquire)) return reject(ShedReason::kShutdown);

  const arch::Cycles vnow = virtual_now();
  auto quote = pricing_.price(spec, effective_fault(vnow));
  if (!quote) return reject(ShedReason::kNoCapacity);
  rep.quote = quote.value();

  // Serialized-server projection over admitted jobs, in submission order:
  // this job starts no earlier than its arrival and no earlier than the
  // projected finish of everything admitted before it (the bandwidth server
  // serves one job at a time). Earlier-admitted work queued "behind" in lane
  // order still serves within the same busy period, so the projection is
  // exact for the aggregate and conservative per job up to priority
  // overtake — which admission_margin absorbs and expiry-shedding bounds.
  const arch::Cycles service = quote.value().service_cycles;
  arch::Cycles tail = admit_tail_.load(std::memory_order_relaxed);
  for (;;) {
    const arch::Cycles start_est = std::max(tail, spec.arrival);
    const arch::Cycles finish_est = start_est + service;
    if (spec.deadline != kNoDeadline &&
        finish_est + cfg_.admission_margin > spec.deadline)
      return reject(ShedReason::kWouldMissDeadline);
    if (admit_tail_.compare_exchange_weak(tail, finish_est,
                                          std::memory_order_relaxed))
      break;
  }

  Pending p;
  p.spec = spec;
  p.id = out.id;
  p.quote = std::move(quote.value());

  CancellationSource source;
  p.token = source.token();
  {
    const std::lock_guard<std::mutex> guard(cancel_mu_);
    cancel_sources_.emplace(out.id, std::move(source));
  }

  // Under kWeightedFair the tenant is the flow and the quote's bytes are
  // the job's WFQ length — fairness is measured in bandwidth, not jobs.
  if (!queue_.try_push(spec.priority, spec.tenant, spec.fair_weight,
                       p.quote.bytes, std::move(p))) {
    // Return the projection the rejected job reserved.
    admit_tail_.fetch_sub(service, std::memory_order_relaxed);
    return reject(ShedReason::kQueueFull);
  }
  out.accepted = true;
  ExecMetrics::get().admitted.inc();
  obs::trace_instant("job.admit", "exec", out.id, spec.arrival);
  if (spec.trace_id != 0)
    obs::trace_flow_step("job.flow.admit", "causal", spec.trace_id, out.id);
  return out;
}

bool Executor::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> guard(cancel_mu_);
  const auto it = cancel_sources_.find(id);
  if (it == cancel_sources_.end()) return false;
  it->second.cancel();
  return true;
}

void Executor::worker_loop() {
  for (;;) {
    auto item = queue_.pop([this](Pending& p) {
      // Under the queue lock: reserve the service window against the
      // bandwidth server. Reservation order IS pop order.
      const arch::Cycles start =
          std::max(service_tail_.load(std::memory_order_relaxed),
                   p.spec.arrival);
      p.start = start;
      if (p.spec.deadline != kNoDeadline && start >= p.spec.deadline) {
        p.expired = true;  // shed: consumes no bandwidth, tail unchanged
        p.finish = start;
      } else {
        p.finish = start + p.quote.service_cycles;
        service_tail_.store(p.finish, std::memory_order_relaxed);
      }
    });
    if (!item) return;  // closed and drained
    process(std::move(*item));
  }
}

void Executor::process(Pending&& job) {
  JobReport rep;
  rep.id = job.id;
  rep.kind = job.spec.kind;
  rep.priority = job.spec.priority;
  rep.tenant = job.spec.tenant;
  rep.arrival = job.spec.arrival;
  rep.deadline = job.spec.deadline;
  rep.quote = job.quote;
  rep.start = job.start;
  rep.finish = job.finish;
  rep.trace_id = job.spec.trace_id;

  obs::trace_instant("job.start", "exec", job.id, job.start);
  if (job.spec.trace_id != 0)
    obs::trace_flow_step("job.flow.run", "causal", job.spec.trace_id, job.id);
  if (job.expired) {
    rep.shed = ShedReason::kDeadlineExpiredInQueue;
  } else if (job.token.cancelled()) {
    rep.shed = ShedReason::kCancelled;  // cancelled before the body started
  } else {
    const obs::TraceSpan span("job.run", "exec", job.id,
                              static_cast<std::uint64_t>(job.spec.kind));
    run_body(job, rep);
  }

  if (rep.shed == ShedReason::kNone) {
    rep.completed = true;
    completed_.fetch_add(1, std::memory_order_relaxed);
    goodput_bytes_.fetch_add(rep.quote.bytes, std::memory_order_relaxed);
    ExecMetrics& m = ExecMetrics::get();
    m.completed.inc();
    m.sojourn.observe(static_cast<double>(rep.finish - rep.arrival));
    if (job.spec.trace_id != 0)
      obs::trace_flow_end("job.flow.complete", "causal", job.spec.trace_id,
                          job.id);
    ingest_sample(job);
    control_step();
  } else {
    shed_[shed_index(rep.shed)].fetch_add(1, std::memory_order_relaxed);
    ExecMetrics::get().shed.inc();
    obs::trace_instant(shed_event_name(rep.shed), "exec", job.id, job.start);
    if (job.spec.trace_id != 0)
      obs::trace_flow_end("job.flow.shed", "causal", job.spec.trace_id,
                          job.id);
  }
  finalize(std::move(rep));
}

void Executor::run_body(Pending& job, JobReport& rep) {
  const unsigned iterations = job.spec.iterations;
  unsigned done = 0;
  bool cancelled = false;

  if (!cfg_.run_kernels) {
    for (unsigned it = 0; it < iterations; ++it) {
      if (job.token.cancelled()) {
        cancelled = true;
        break;
      }
      ++done;
      if (job.spec.on_generation) job.spec.on_generation(done);
    }
    rep.iterations_done = done;
    if (cancelled) rep.shed = ShedReason::kCancelled;
    return;
  }

  switch (job.spec.kind) {
    case JobKind::kTriad: {
      const std::size_t n = std::max<std::size_t>(job.spec.n, 1);
      std::vector<double> a(n, 0.0), b(n), c(n), d(n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto x = static_cast<double>(i);
        b[i] = 1.0 + 0.5 * x;
        c[i] = 2.0 - 1e-3 * x;
        d[i] = 0.25 + 1e-6 * x;
      }
      for (unsigned it = 0; it < iterations; ++it) {
        if (job.token.cancelled()) {
          cancelled = true;
          break;
        }
        kernels::triad_local(a.data(), b.data(), c.data(), d.data(), n);
        ++done;
        if (job.spec.on_generation) job.spec.on_generation(done);
      }
      if (done > 0) rep.field_crc = util::crc32c(a.data(), n * sizeof(double));
      break;
    }
    case JobKind::kJacobi: {
      const std::size_t n = std::max<std::size_t>(job.spec.n, 3);
      const seg::LayoutSpec spec = kernels::jacobi_plain_spec();
      seg::seg_array<double> g1 = kernels::make_jacobi_grid(n, spec);
      seg::seg_array<double> g2 = kernels::make_jacobi_grid(n, spec);
      kernels::init_jacobi(g1);
      kernels::init_jacobi(g2);
      seg::seg_array<double>* cur = &g1;
      seg::seg_array<double>* nxt = &g2;
      for (unsigned it = 0; it < iterations && !cancelled; ++it) {
        // Serial sweep, cancellation polled at row (segment) granularity:
        // observing the token mid-sweep abandons the in-progress destination
        // grid — the source grid, never written, IS the last completed
        // generation, bit-identically.
        for (std::size_t i = 1; i + 1 < n; ++i) {
          if (job.token.cancelled()) {
            cancelled = true;
            break;
          }
          kernels::relax_line(nxt->segment(i).begin(),
                              cur->segment(i - 1).begin(),
                              cur->segment(i + 1).begin(),
                              cur->segment(i).begin(), n);
        }
        if (cancelled) break;
        std::swap(cur, nxt);
        ++done;
        if (job.spec.on_generation) job.spec.on_generation(done);
      }
      rep.field_crc = crc_grid(*cur);
      break;
    }
    case JobKind::kLbm: {
      // NOTE: Solver::step() is OpenMP-parallel inside — LBM jobs are
      // excluded from TSan-filtered tests and from the soak's default mix.
      const std::size_t n = std::max<std::size_t>(job.spec.n, 4);
      kernels::lbm::Solver::Params params;
      params.geometry = kernels::lbm::Geometry{n, n, n, 0,
                                               kernels::lbm::DataLayout::kIJKv};
      kernels::lbm::Solver solver(params);
      solver.make_channel_walls_z();
      solver.initialize();
      for (unsigned it = 0; it < iterations; ++it) {
        if (job.token.cancelled()) {
          cancelled = true;
          break;
        }
        (void)solver.step();
        ++done;
        if (job.spec.on_generation) job.spec.on_generation(done);
      }
      const auto& f = solver.distributions();
      rep.field_crc = util::crc32c(f.data(), f.size() * sizeof(double));
      break;
    }
  }

  rep.iterations_done = done;
  if (cancelled) rep.shed = ShedReason::kCancelled;
}

void Executor::ingest_sample(const Pending& job) {
  // Measurement stand-in: what the hardware's counters would have read over
  // this job's service window is the analytic utilization under the GROUND
  // TRUTH fault state — not the believed one. This is the executor's only
  // window onto truth, and it flows through the supervisor like any other
  // measurement.
  const sim::FaultSpec truth = cfg_.truth.active_at(job.finish);
  const auto est = pricing_.estimate(job.spec.kind, truth);
  if (!est) return;  // no surviving controller in truth: no signal either
  Sample s;
  s.begin = job.start;
  s.end = job.finish;
  s.mc_utilization = est.value().mc_utilization;
  const std::lock_guard<std::mutex> guard(ingest_mu_);
  ingest_.push_back(std::move(s));
}

void Executor::control_step() {
  // Whichever worker wins the try-lock becomes the control plane for this
  // round; everyone else just leaves their samples on the ingestion queue.
  // This is the single consumer the supervisor's threading contract names.
  const std::unique_lock<std::mutex> control(control_mu_, std::try_to_lock);
  if (!control.owns_lock()) return;
  for (;;) {
    std::deque<Sample> batch;
    {
      const std::lock_guard<std::mutex> guard(ingest_mu_);
      batch.swap(ingest_);
    }
    if (batch.empty()) return;
    for (const Sample& s : batch) {
      const Decision d = supervisor_.observe(s);
      if (d.action != Action::kReplan) continue;
      supervisor_.commit(s.end);
      replans_.fetch_add(1, std::memory_order_relaxed);
      ExecMetrics::get().replans.inc();
      obs::trace_instant("exec.replan", "exec", s.end, 0);
      util::log_info("executor: replan committed at " + std::to_string(s.end) +
                     " diagnosis=" + d.diagnosis.describe());
      apply_diagnosis(d.diagnosis, s.end);
    }
  }
}

void Executor::apply_diagnosis(const sim::FaultSpec& diagnosis,
                               arch::Cycles now) {
  {
    const std::lock_guard<std::mutex> guard(believed_mu_);
    for (unsigned c = 0; c < breakers_.size(); ++c) {
      const bool off = diagnosis.is_offline(c);
      if (off && !breaker_open_[c]) {
        // Newly diagnosed dead: arm (re-arming a flapping controller
        // escalates the hold geometrically).
        (void)breakers_[c].arm(now);
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
        ExecMetrics::get().breaker_trips.inc();
        obs::trace_instant("exec.breaker", "exec", c, now);
        util::log_info("executor: breaker armed mc" + std::to_string(c) +
                       " until " + std::to_string(breakers_[c].ready_at()));
      }
      breaker_open_[c] = off;
    }
    believed_ = diagnosis;
  }
  reprice_queued(now);
}

void Executor::reprice_queued(arch::Cycles now) {
  const sim::FaultSpec eff = effective_fault(now);
  queue_.for_each([&](Pending& p) {
    auto q = pricing_.price(p.spec, eff);
    // Unpriceable under the new state (whole chip excluded): keep the old
    // quote; the job stays queued and is served or expired like any other.
    if (!q) return;
    // Keep the admission projection honest: queued work just got cheaper or
    // dearer (uint64 wraparound keeps the sum exact for negative deltas).
    admit_tail_.fetch_add(q.value().service_cycles - p.quote.service_cycles,
                          std::memory_order_relaxed);
    p.quote = std::move(q.value());
  });
}

void Executor::finalize(JobReport rep) {
  {
    const std::lock_guard<std::mutex> guard(cancel_mu_);
    cancel_sources_.erase(rep.id);
  }
  const std::lock_guard<std::mutex> guard(reports_mu_);
  reports_.push_back(std::move(rep));
}

void Executor::shutdown(Drain mode) {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;

  std::vector<Pending> shed;
  if (mode == Drain::kShedQueued) shed = queue_.shed_all();
  queue_.close();
  for (std::thread& t : workers_) t.join();

  for (Pending& p : shed) {
    JobReport rep;
    rep.id = p.id;
    rep.kind = p.spec.kind;
    rep.priority = p.spec.priority;
    rep.tenant = p.spec.tenant;
    rep.arrival = p.spec.arrival;
    rep.deadline = p.spec.deadline;
    rep.quote = p.quote;
    rep.trace_id = p.spec.trace_id;
    rep.shed = ShedReason::kShutdown;
    shed_[shed_index(ShedReason::kShutdown)].fetch_add(
        1, std::memory_order_relaxed);
    ExecMetrics::get().shed.inc();
    obs::trace_instant(shed_event_name(ShedReason::kShutdown), "exec", p.id, 0);
    if (p.spec.trace_id != 0)
      obs::trace_flow_end("job.flow.shed", "causal", p.spec.trace_id, p.id);
    finalize(std::move(rep));
  }
  control_step();  // drain the last samples into the supervisor
}

std::vector<JobReport> Executor::reports() const {
  std::vector<JobReport> out;
  {
    const std::lock_guard<std::mutex> guard(reports_mu_);
    out = reports_;
  }
  std::sort(out.begin(), out.end(),
            [](const JobReport& a, const JobReport& b) { return a.id < b.id; });
  return out;
}

std::vector<JobReport> Executor::reports_tail(std::size_t from) const {
  const std::lock_guard<std::mutex> guard(reports_mu_);
  if (from >= reports_.size()) return {};
  return {reports_.begin() + static_cast<std::ptrdiff_t>(from),
          reports_.end()};
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.shed.size(); ++i)
    s.shed[i] = shed_[i].load(std::memory_order_relaxed);
  s.goodput_bytes = goodput_bytes_.load(std::memory_order_relaxed);
  s.replans = replans_.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mcopt::runtime::exec
