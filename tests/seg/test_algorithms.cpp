#include "seg/algorithms.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "seg/seg_array.h"

namespace mcopt::seg {
namespace {

LayoutSpec spec512() {
  LayoutSpec spec;
  spec.base_align = 8192;
  spec.segment_align = 512;
  return spec;
}

seg_array<double> make_iota(std::vector<std::size_t> sizes) {
  seg_array<double> a(std::move(sizes), spec512());
  double v = 0.0;
  for (auto it = a.begin(); it != a.end(); ++it) *it = v++;
  return a;
}

static_assert(SegmentedIterator<seg_array<double>::iterator>);
static_assert(SegmentedIterator<seg_array<double>::const_iterator>);
static_assert(!SegmentedIterator<double*>);
static_assert(!SegmentedIterator<std::vector<double>::iterator>);

TEST(ForEachLocalRange, CoversExactlyOnce) {
  auto a = make_iota({3, 0, 4, 1});
  std::vector<double> seen;
  for_each_local_range(a.begin(), a.end(), [&](const double* lo, const double* hi) {
    seen.insert(seen.end(), lo, hi);
  });
  std::vector<double> expected(8);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_EQ(seen, expected);
}

TEST(ForEachLocalRange, SubrangeWithinOneSegment) {
  auto a = make_iota({10});
  auto first = a.begin();
  ++first;
  auto last = first;
  ++last;
  ++last;  // [1, 3)
  std::vector<double> seen;
  for_each_local_range(first, last, [&](const double* lo, const double* hi) {
    seen.insert(seen.end(), lo, hi);
  });
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(ForEachLocalRange, SubrangeAcrossSegments) {
  auto a = make_iota({3, 3, 3});
  auto first = a.begin();
  ++first;  // element 1
  auto last = a.end();
  --last;  // element 8 excluded
  std::vector<double> seen;
  for_each_local_range(first, last, [&](const double* lo, const double* hi) {
    seen.insert(seen.end(), lo, hi);
  });
  EXPECT_EQ(seen, (std::vector<double>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(ForEachLocalRange, EmptyRange) {
  auto a = make_iota({3});
  int calls = 0;
  for_each_local_range(a.begin(), a.begin(), [&](const double*, const double*) {
    ++calls;
  });
  for_each_local_range(a.end(), a.end(), [&](const double*, const double*) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(SegmentedForEach, MatchesStd) {
  auto a = make_iota({5, 2, 6});
  double sum = 0.0;
  seg::for_each(a.begin(), a.end(), [&](double v) { sum += v; });
  EXPECT_DOUBLE_EQ(sum, 12.0 * 13.0 / 2.0);
}

TEST(PlainForEach, OverloadResolvesForPointers) {
  std::vector<double> v = {1, 2, 3};
  double sum = 0.0;
  seg::for_each(v.begin(), v.end(), [&](double x) { sum += x; });
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(SegmentedFill, FillsAll) {
  seg_array<double> a({4, 0, 4}, spec512());
  seg::fill(a.begin(), a.end(), 2.5);
  for (double v : a) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(SegmentedCopy, ToPlainVector) {
  auto a = make_iota({3, 5});
  std::vector<double> out(a.size(), -1.0);
  auto end = seg::copy(a.begin(), a.end(), out.begin());
  EXPECT_EQ(end, out.end());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], double(i));
}

TEST(SegmentedCopy, BetweenSegArraysWithDifferentSegmentation) {
  auto a = make_iota({7, 1});
  seg_array<double> b({2, 2, 4}, spec512());
  seg::copy(a.begin(), a.end(), b.begin());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(b[i], double(i));
}

TEST(SegmentedTransform, Unary) {
  auto a = make_iota({4, 4});
  std::vector<double> out(8);
  seg::transform(a.begin(), a.end(), out.begin(), [](double v) { return v * 2; });
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * double(i));
}

TEST(SegmentedTransform, BinaryWithSegmentedSecondInput) {
  auto a = make_iota({4, 4});
  auto b = make_iota({8});
  seg_array<double> out({3, 5}, spec512());
  seg::transform(a.begin(), a.end(), b.begin(), out.begin(),
                 [](double x, double y) { return x + y; });
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * double(i));
}

TEST(SegmentedAccumulate, MatchesClosedForm) {
  auto a = make_iota({100, 0, 155, 1});
  const double sum = seg::accumulate(a.begin(), a.end(), 0.0);
  const double n = 256.0;
  EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0);
}

TEST(SegmentedAccumulate, CustomOp) {
  auto a = make_iota({3});  // 0,1,2
  const double prod =
      seg::accumulate(a.begin(), a.end(), 1.0,
                      [](double acc, double v) { return acc * (v + 1); });
  EXPECT_DOUBLE_EQ(prod, 6.0);
}

TEST(SegmentedInnerProduct, MatchesStd) {
  auto a = make_iota({5, 3});
  std::vector<double> b(8, 2.0);
  const double dot = seg::inner_product(a.begin(), a.end(), b.begin(), 0.0);
  EXPECT_DOUBLE_EQ(dot, 2.0 * 28.0);
}

TEST(SegmentedEqual, DetectsEqualityAndMismatch) {
  auto a = make_iota({4, 4});
  auto b = make_iota({2, 6});
  EXPECT_TRUE(seg::equal(a.begin(), a.end(), b.begin()));
  b[3] = 99.0;
  EXPECT_FALSE(seg::equal(a.begin(), a.end(), b.begin()));
}

// Property: segmented accumulate is segmentation-invariant.
class SegmentationInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SegmentationInvariance, AccumulateIndependentOfSplit) {
  const std::size_t parts = GetParam();
  auto a = seg_array<double>::even(333, parts, spec512());
  double v = 1.0;
  for (auto it = a.begin(); it != a.end(); ++it) *it = v++;
  const double sum = seg::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 333.0 * 334.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Splits, SegmentationInvariance,
                         ::testing::Values(1, 2, 3, 8, 64, 333));

}  // namespace
}  // namespace mcopt::seg
