#pragma once
// Shared plumbing for the figure-reproduction benches: canonical simulator
// runners for each kernel plus output helpers. Every bench prints a paper-
// style table on stdout and optionally mirrors it to CSV (--csv <path>).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "kernels/jacobi.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "kernels/lbm/trace_program.h"
#include "kernels/stream.h"
#include "kernels/triad.h"
#include "sim/analytic.h"
#include "sim/chip.h"
#include "sim/faults.h"
#include "trace/virtual_arena.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace mcopt::bench {

/// Registers the shared observability knobs every bench understands:
///   --trace <path>          enable the recorder; Chrome trace JSON on exit
///   --trace-capacity <n>    ring slots per thread (rounded up to pow2)
///   --metrics-out <path>    metrics snapshot (.json suffix: JSON one-liner,
///                           anything else: Prometheus text)
///   --mc-timeline <path>    controller x time utilization CSV
///   --mc-cadence <cycles>   timeline sample cadence (SimConfig knob)
///   --flight-dump <path>    fatal-signal flight-recorder dump target
inline void add_obs_options(util::Cli& cli) {
  cli.option_str("trace", "", "write Chrome trace_event JSON here (enables recorder)")
      .option_int("trace-capacity", 1 << 16, "trace ring slots per thread")
      .option_str("metrics-out", "",
                  "write metrics snapshot (.json => JSON, else Prometheus text)")
      .option_str("mc-timeline", "", "write controller x time utilization CSV")
      .option_int("mc-cadence", 100000, "timeline sample cadence in cycles")
      .option_str("flight-dump", "",
                  "install fatal-signal flight recorder dumping here");
}

/// RAII companion to add_obs_options(): enables the recorder / signal
/// handlers per the parsed knobs at construction and writes every requested
/// artifact at scope exit (or on an explicit finish()). Benches that sample
/// timelines feed labelled series through add_timeline().
class ObsGuard {
 public:
  explicit ObsGuard(const util::Cli& cli)
      : trace_path_(cli.get_str("trace")),
        metrics_path_(cli.get_str("metrics-out")),
        timeline_path_(cli.get_str("mc-timeline")),
        cadence_(static_cast<arch::Cycles>(
            std::max<std::int64_t>(0, cli.get_int("mc-cadence")))) {
    if (timeline_requested() && cli.get_int("mc-cadence") <= 0)
      throw std::invalid_argument(
          "--mc-cadence must be a positive cycle count when --mc-timeline "
          "is given (got " + std::to_string(cli.get_int("mc-cadence")) + ")");
    const std::string flight = cli.get_str("flight-dump");
    if (!trace_path_.empty() || !flight.empty())
      obs::TraceRecorder::instance().enable(static_cast<std::size_t>(
          std::max<std::int64_t>(8, cli.get_int("trace-capacity"))));
    if (!flight.empty()) obs::install_flight_recorder(flight).throw_if_failed();
  }

  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

  ~ObsGuard() {
    try {
      finish().throw_if_failed();
    } catch (const std::exception& e) {
      // Destructor path: report, never throw (the bench result already
      // printed; a failed artifact write must not abort the process).
      util::log_error(std::string("obs: ") + e.what());
    }
  }

  /// True when --trace asked for the recorder (overhead measurements key
  /// off this).
  [[nodiscard]] bool tracing() const noexcept { return !trace_path_.empty(); }
  /// True when --mc-timeline asked for a CSV.
  [[nodiscard]] bool timeline_requested() const noexcept {
    return !timeline_path_.empty();
  }
  [[nodiscard]] arch::Cycles cadence() const noexcept { return cadence_; }

  /// Applies the timeline cadence to a run's SimConfig (no-op unless
  /// --mc-timeline was given: sampling without a consumer is waste).
  void apply(sim::SimConfig& cfg) const {
    if (timeline_requested()) cfg.mc_sample_cadence = cadence_;
  }

  /// Queues one labelled timeline for the CSV (e.g. label "offset=64").
  void add_timeline(std::string label, obs::McTimeline samples) {
    series_.push_back({std::move(label), std::move(samples)});
  }

  /// Writes every requested artifact; idempotent (the destructor calls it).
  util::Status finish() {
    if (finished_) return util::Status{};
    finished_ = true;
    util::Status status;
    // Ring health lands in the registry at teardown so every --metrics-out
    // snapshot carries it: a nonzero drop count means the trace under-reports
    // and any causal chain read from it may be incomplete — warn loudly.
    const std::uint64_t ring_dropped = obs::TraceRecorder::instance().dropped();
    obs::MetricsRegistry::instance()
        .gauge("mcopt_trace_ring_dropped",
               "trace events lost to ring wrap-around (nonzero => the trace "
               "under-reports; raise --trace-capacity)")
        .set(static_cast<double>(ring_dropped));
    obs::MetricsRegistry::instance()
        .gauge("mcopt_trace_seqlock_retries",
               "torn trace slots skipped by the seqlock reader (writer raced "
               "the export; events were dropped, not corrupted)")
        .set(static_cast<double>(
            obs::TraceRecorder::instance().seqlock_retries()));
    if (ring_dropped > 0)
      util::log_warn("trace ring dropped events; causal chains may be "
                     "incomplete (raise --trace-capacity)",
                     {util::kv("dropped", ring_dropped)});
    if (!trace_path_.empty()) {
      status.merge(
          obs::TraceRecorder::instance().write_chrome_trace(trace_path_));
      if (status.ok())
        util::log_info("wrote trace to " + trace_path_,
                       {util::kv("events", obs::TraceRecorder::instance().recorded()),
                        util::kv("dropped", obs::TraceRecorder::instance().dropped())});
    }
    if (!metrics_path_.empty()) status.merge(write_metrics(metrics_path_));
    if (!timeline_path_.empty())
      status.merge(obs::write_mc_timeline_csv(timeline_path_, series_));
    return status;
  }

  /// Metrics snapshot to `path`; a .json suffix selects the JSON one-liner,
  /// anything else the Prometheus text exposition.
  static util::Status write_metrics(const std::string& path) {
    const bool json =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    const std::string body =
        json ? obs::MetricsRegistry::instance().json() + "\n"
             : obs::MetricsRegistry::instance().prometheus_text();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
      return util::Status::failure("obs: cannot write '" + path + "'");
    const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed)
      return util::Status::failure("obs: short write to '" + path + "'");
    return util::Status{};
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeline_path_;
  arch::Cycles cadence_ = 0;
  std::vector<obs::McTimelineSeries> series_;
  bool finished_ = false;
};

/// Parks the recorder's last trace window and a metrics snapshot next to a
/// failing-seed artifact (<fail_path>.flight.txt / <fail_path>.metrics.txt)
/// so CI uploads all three together. No-op without a fail path; best-effort
/// on an already-failing run, so write errors only log.
inline void attach_failure_artifacts(const std::string& fail_path) {
  if (fail_path.empty()) return;
  if (obs::TraceRecorder::instance().enabled()) {
    const auto flight =
        obs::TraceRecorder::instance().write_flight_dump(fail_path +
                                                         ".flight.txt");
    if (!flight.ok()) util::log_error("obs: " + flight.error().message);
  }
  const auto metrics = ObsGuard::write_metrics(fail_path + ".metrics.txt");
  if (!metrics.ok()) util::log_error("obs: " + metrics.error().message);
  // The attribution ledger says who was spending bytes when the seed failed —
  // CI uploads it next to the flight dump and metrics snapshot.
  const auto attr = obs::Attribution::instance().write_json(
      fail_path + ".attribution.json");
  if (!attr.ok()) util::log_error("obs: " + attr.error().message);
}

/// Guards every number a bench reports: a NaN/inf/negative rate means the
/// simulator or the harness itself is broken, and a poisoned cell must fail
/// the run, not ship in a results table.
inline double checked_rate(double value, const char* what) {
  if (!std::isfinite(value) || value < 0.0)
    throw std::runtime_error(std::string("bench: non-finite ") + what +
                             " value " + std::to_string(value) +
                             " (simulator or harness bug)");
  return value;
}

/// Parses a --fault CLI string into a SimConfig fault set, validating it
/// against the config's interleave. Exits with a diagnostic on bad specs.
inline sim::FaultSpec parse_fault_knob(const std::string& text,
                                       const sim::SimConfig& cfg) {
  auto parsed = sim::FaultSpec::parse(text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  parsed.value().check(cfg.interleave).throw_if_failed();
  if (parsed.value().any())
    util::log_info("fault injection: " + parsed.value().describe());
  return parsed.value();
}

/// Parses the --schedule CLI grammar (timed fault intervals, see
/// sim::FaultSchedule::parse) and resolves percent-relative bounds against
/// `horizon` (the estimated run length in cycles). Validates against the
/// config's interleave; throws with a diagnostic on bad schedules.
inline sim::FaultSchedule parse_schedule_knob(const std::string& text,
                                              const sim::SimConfig& cfg,
                                              arch::Cycles horizon) {
  auto parsed = sim::FaultSchedule::parse(text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  const sim::FaultSchedule sched = parsed.value().resolved(horizon);
  sched.check(cfg.interleave).throw_if_failed();
  if (!sched.empty()) util::log_info("fault schedule: " + sched.describe());
  return sched;
}

/// Bench-layer metric families. Counted here (not in the simulator) so the
/// registry reflects what the harness asked for, and so every bench's
/// --metrics-out snapshot has content even without the executor in the loop.
inline obs::Counter& sim_runs_counter() {
  return obs::MetricsRegistry::instance().counter(
      "mcopt_bench_sim_runs_total", "simulated kernel runs issued by benches");
}

inline obs::Histogram& gbs_histogram() {
  return obs::MetricsRegistry::instance().histogram(
      "mcopt_bench_reported_gbs", {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0},
      "reported bandwidth per bench data point (GB/s)");
}

/// Runs one simulated STREAM configuration and returns the full simulator
/// result (cycle counts, controller timeline when cfg.mc_sample_cadence is
/// set).
inline sim::SimResult stream_sim_result(kernels::StreamOp op, std::size_t n,
                                        std::size_t offset_dp, unsigned threads,
                                        const sim::SimConfig& cfg = {}) {
  sim_runs_counter().inc();
  trace::VirtualArena arena;
  const arch::Addr block = arena.allocate(3 * (n + offset_dp) * 8, 8192);
  const auto bases = kernels::common_block_bases(block, n, offset_dp);
  auto wl = kernels::make_stream_workload(op, bases, n, threads,
                                          sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  return chip.run(wl);
}

/// Runs one simulated STREAM configuration; returns reported GB/s (STREAM
/// convention, RFO not counted).
inline double stream_reported_gbs(kernels::StreamOp op, std::size_t n,
                                  std::size_t offset_dp, unsigned threads,
                                  const sim::SimConfig& cfg = {}) {
  const sim::SimResult res = stream_sim_result(op, n, offset_dp, threads, cfg);
  const double gbs = checked_rate(
      static_cast<double>(kernels::stream_reported_bytes(op, n)) /
          res.seconds() / 1e9,
      "STREAM GB/s");
  gbs_histogram().observe(gbs);
  return gbs;
}

/// Analytic-model prediction for the same configuration (instant).
inline double stream_analytic_gbs(kernels::StreamOp op, std::size_t n,
                                  std::size_t offset_dp, unsigned threads,
                                  const sim::SimConfig& cfg = {}) {
  const auto bases =
      kernels::common_block_bases(arch::Addr{1} << 32, n, offset_dp);
  const auto descs = kernels::stream_descs(op, bases);
  std::vector<sim::AnalyticStream> streams;
  for (const auto& d : descs) streams.push_back({d.base, d.write});
  const arch::AddressMap map(cfg.interleave);
  const auto est = sim::estimate_bandwidth(sim::expand_rfo(streams), threads,
                                           cfg.calibration, map,
                                           cfg.topology.clock_ghz, cfg.faults);
  // Convert actual-traffic prediction back to the STREAM convention.
  const double convention =
      static_cast<double>(kernels::stream_reported_bytes(op, n)) /
      static_cast<double>(kernels::stream_actual_bytes(op, n));
  return checked_rate(est.bandwidth * convention / 1e9, "analytic GB/s");
}

/// Simulated vector triad in actual-traffic GB/s (Fig. 4 convention).
inline double triad_actual_gbs(const std::vector<arch::Addr>& bases,
                               std::size_t n, unsigned threads,
                               const sim::SimConfig& cfg = {}) {
  sim_runs_counter().inc();
  auto wl = kernels::make_triad_workload(bases, n, threads,
                                         sched::Schedule::static_block());
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return checked_rate(
      static_cast<double>(kernels::triad_actual_bytes(n)) / res.seconds() / 1e9,
      "triad GB/s");
}

/// Simulated Jacobi sweep in MLUPs/s.
inline double jacobi_mlups(std::size_t n, const seg::LayoutSpec& spec,
                           const sched::Schedule& schedule, unsigned threads,
                           const sim::SimConfig& cfg = {}) {
  sim_runs_counter().inc();
  trace::VirtualArena arena;
  const auto grids = kernels::make_virtual_jacobi(arena, n, spec);
  auto wl = trace::make_jacobi_workload(grids.grids(), threads, schedule, 1);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);
  return checked_rate(static_cast<double>(trace::jacobi_updates_per_sweep(n)) /
                          res.seconds() / 1e6,
                      "Jacobi MLUPs");
}

/// Simulated D3Q19 LBM step: the full simulator result (cycle counts for
/// schedule horizons, corrupted-read counters for the flip fault class).
inline sim::SimResult lbm_sim_result(std::size_t n,
                                     kernels::lbm::DataLayout layout,
                                     kernels::lbm::LoopOrder order,
                                     unsigned threads, std::size_t pad_x = 0,
                                     const sim::SimConfig& cfg = {}) {
  sim_runs_counter().inc();
  using namespace kernels::lbm;
  const Geometry g{n, n, n, pad_x, layout};
  trace::VirtualArena arena;
  LbmAddresses addr;
  addr.f_base = arena.allocate(g.f_elems() * 8, 8192);
  addr.mask_base = arena.allocate(g.cells(), 8192);
  auto wl = make_lbm_workload(g, addr, order, threads,
                              sched::Schedule::static_block(), 1);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  return chip.run(wl);
}

/// Simulated D3Q19 LBM step in MLUPs/s.
inline double lbm_mlups(std::size_t n, kernels::lbm::DataLayout layout,
                        kernels::lbm::LoopOrder order, unsigned threads,
                        std::size_t pad_x = 0, const sim::SimConfig& cfg = {}) {
  const sim::SimResult res = lbm_sim_result(n, layout, order, threads, pad_x, cfg);
  const kernels::lbm::Geometry g{n, n, n, pad_x, layout};
  return checked_rate(
      static_cast<double>(g.interior_cells()) / res.seconds() / 1e6,
      "LBM MLUPs");
}

/// Prints an aligned table to stdout and mirrors it to CSV when a path was
/// given (--csv).
inline void emit(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows,
                 const std::string& csv_path) {
  util::Table table(header);
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path, header);
    for (const auto& row : rows) csv.add_row(row);
    csv.close().throw_if_failed();
    util::log_info("wrote " + std::to_string(rows.size()) + " rows to " + csv_path);
  }
}

}  // namespace mcopt::bench
