#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mcopt::obs {

util::Status SloBurnConfig::check() const {
  util::Status st;
  if (!(target > 0.0 && target < 1.0)) st.note("slo target must be in (0, 1)");
  if (fast_window == 0 || slow_window == 0)
    st.note("slo windows must be nonzero");
  else if (fast_window >= slow_window)
    st.note("slo fast window must be shorter than the slow window");
  if (buckets < 2) st.note("slo windows need at least 2 buckets");
  if (fast_alert <= 0.0 || slow_alert <= 0.0)
    st.note("slo alert thresholds must be positive");
  return st;
}

void SloMonitor::Window::init(std::uint64_t window_cycles,
                              std::uint32_t buckets) {
  bucket_cycles = std::max<std::uint64_t>(1, window_cycles / buckets);
  head = 0;
  total.assign(buckets, 0);
  missed.assign(buckets, 0);
}

void SloMonitor::Window::add(std::uint64_t at, bool miss) {
  const std::uint64_t bucket = at / bucket_cycles;
  if (bucket > head) {
    // Advance the ring: every bucket interval between head and the new one
    // has aged out of the window and is zeroed before reuse.
    const std::uint64_t steps =
        std::min<std::uint64_t>(bucket - head, total.size());
    for (std::uint64_t s = 1; s <= steps; ++s) {
      const std::size_t idx = (head + s) % total.size();
      total[idx] = 0;
      missed[idx] = 0;
    }
    head = bucket;
  } else if (head - bucket >= total.size()) {
    return;  // older than the window: nothing to attribute it to
  }
  const std::size_t idx = bucket % total.size();
  total[idx] += 1;
  if (miss) missed[idx] += 1;
}

double SloMonitor::Window::miss_fraction() const {
  std::uint64_t t = 0, m = 0;
  for (std::size_t i = 0; i < total.size(); ++i) {
    t += total[i];
    m += missed[i];
  }
  return t == 0 ? 0.0 : static_cast<double>(m) / static_cast<double>(t);
}

SloMonitor::SloMonitor(SloBurnConfig cfg) : cfg_(cfg) {
  cfg_.check().throw_if_failed();
}

double SloMonitor::burn_of(double miss_fraction) const {
  return miss_fraction / (1.0 - cfg_.target);
}

void SloMonitor::record(std::uint32_t tenant, std::uint32_t slo_class,
                        bool missed, std::uint64_t at_cycles) {
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alert = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[{tenant, slo_class}];
    if (e.fast.total.empty()) {
      e.fast.init(cfg_.fast_window, cfg_.buckets);
      e.slow.init(cfg_.slow_window, cfg_.buckets);
    }
    e.total += 1;
    if (missed) e.missed += 1;
    e.fast.add(at_cycles, missed);
    e.slow.add(at_cycles, missed);
    fast_burn = burn_of(e.fast.miss_fraction());
    slow_burn = burn_of(e.slow.miss_fraction());
    // Multi-window rule, edge-triggered on misses only: a served job can
    // cool a window but never fire an alert by itself.
    if (missed && fast_burn >= cfg_.fast_alert && slow_burn >= cfg_.slow_alert) {
      alert = true;
      e.alerts += 1;
      alerts_fired_ += 1;
      pending_.push_back({tenant, slo_class, fast_burn, slow_burn, at_cycles});
    }
  }
  // Gauges are registered lazily per (tenant, class): benches run a handful
  // of tenants; the 1000-tenant soaks leave the monitor to its JSON export.
  const std::string suffix = "_tenant" + std::to_string(tenant) + "_class" +
                             std::to_string(slo_class);
  MetricsRegistry::instance()
      .gauge("mcopt_slo_burn_fast" + suffix,
             "fast-window SLO error-budget burn rate")
      .set(fast_burn);
  MetricsRegistry::instance()
      .gauge("mcopt_slo_burn_slow" + suffix,
             "slow-window SLO error-budget burn rate")
      .set(slow_burn);
  if (alert) {
    MetricsRegistry::instance()
        .counter("mcopt_slo_alerts_total",
                 "multi-window SLO burn alerts fired")
        .inc();
    trace_instant("slo.burn.alert", "slo", tenant, slo_class);
  }
}

std::vector<SloBurn> SloMonitor::burns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloBurn> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    SloBurn b;
    b.tenant = key.first;
    b.slo_class = key.second;
    b.total = e.total;
    b.missed = e.missed;
    b.fast_burn = burn_of(e.fast.miss_fraction());
    b.slow_burn = burn_of(e.slow.miss_fraction());
    b.alerts = e.alerts;
    out.push_back(b);
  }
  return out;
}

std::vector<SloAlert> SloMonitor::drain_alerts() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloAlert> out;
  out.swap(pending_);
  return out;
}

std::uint64_t SloMonitor::alerts_fired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return alerts_fired_;
}

std::string SloMonitor::json() const {
  const std::vector<SloBurn> all = burns();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"target\":%.6f,\"fast_window\":%llu,\"slow_window\":%llu,"
                "\"fast_alert\":%.3f,\"slow_alert\":%.3f,\"entries\":[",
                cfg_.target,
                static_cast<unsigned long long>(cfg_.fast_window),
                static_cast<unsigned long long>(cfg_.slow_window),
                cfg_.fast_alert, cfg_.slow_alert);
  std::string out = buf;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SloBurn& b = all[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"tenant\":%u,\"slo_class\":%u,\"total\":%llu,"
                  "\"missed\":%llu,\"fast_burn\":%.6f,\"slow_burn\":%.6f,"
                  "\"alerts\":%llu}",
                  i == 0 ? "" : ",", b.tenant, b.slo_class,
                  static_cast<unsigned long long>(b.total),
                  static_cast<unsigned long long>(b.missed), b.fast_burn,
                  b.slow_burn, static_cast<unsigned long long>(b.alerts));
    out += buf;
  }
  out += "]}";
  return out;
}

util::Status SloMonitor::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return util::Status::failure("slo: cannot write '" + path + "'");
  const std::string doc = json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || !ok)
    return util::Status::failure("slo: write failed for '" + path + "'");
  return util::Status{};
}

void SloMonitor::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  pending_.clear();
  alerts_fired_ = 0;
}

}  // namespace mcopt::obs
