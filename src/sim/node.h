#pragma once
// Multi-socket node simulator: one Chip DES per socket composed under a
// shared NUMA topology and fault timeline.
//
// Each socket runs its own threads against its own caches and controllers;
// accesses homed on another socket are served over the modeled interconnect
// (sim/numa.h routes, Chip::NumaView). The sockets' event loops are
// independent — a remote fill pays the serving path's per-line link cost and
// latency, which is where the peer's memory occupancy is folded in — so the
// node's makespan is the slowest socket's makespan. Everything stays integer
// cycles and exactly reproducible.

#include <vector>

#include "arch/numa.h"
#include "sim/chip.h"
#include "util/expected.h"

namespace mcopt::sim {

/// Configuration of an N-socket run: the node topology plus one per-socket
/// chip configuration template (faults, schedule, lockstep, sampling knobs
/// are shared; the per-socket NumaView is filled in by Node).
struct NodeConfig {
  arch::NodeTopology node{};
  /// Template chip config; `sim.numa` is overwritten per socket, and
  /// `sim.topology`/`sim.interleave` must describe one socket's chip.
  SimConfig sim{};

  /// Non-throwing validation; reports every violation at once.
  [[nodiscard]] util::Status check() const;
  /// Throwing wrapper around check().
  void validate() const;
};

/// Aggregated results of one node run.
struct NodeResult {
  /// Per-socket chip results (default-constructed for idle sockets).
  std::vector<SimResult> sockets;
  arch::Cycles total_cycles = 0;  ///< slowest socket (drain included)
  double clock_ghz = 0.0;
  std::uint64_t mem_read_bytes = 0;
  std::uint64_t mem_write_bytes = 0;
  /// Remotely served subset of the totals above.
  std::uint64_t remote_read_bytes = 0;
  std::uint64_t remote_write_bytes = 0;
  /// Mean controller busy fraction of each socket over the node's makespan
  /// (a dead or idle socket reads 0).
  std::vector<double> socket_utilization;
  bool degraded = false;

  [[nodiscard]] double seconds() const noexcept {
    return clock_ghz <= 0.0 ? 0.0
                            : arch::cycles_to_seconds(total_cycles, clock_ghz);
  }
  /// Actual memory traffic (both directions, all sockets) per second.
  [[nodiscard]] double memory_bandwidth() const noexcept {
    return seconds() == 0.0
               ? 0.0
               : static_cast<double>(mem_read_bytes + mem_write_bytes) /
                     seconds();
  }
  /// Fraction of all traffic served by a remote socket.
  [[nodiscard]] double remote_fraction() const noexcept {
    const double total =
        static_cast<double>(mem_read_bytes + mem_write_bytes);
    return total == 0.0 ? 0.0
                        : static_cast<double>(remote_read_bytes +
                                              remote_write_bytes) /
                              total;
  }
};

/// The node simulator. Construct once per config; run() takes one Workload
/// per socket (empty = idle socket) and may be called repeatedly.
class Node {
 public:
  explicit Node(NodeConfig config);

  [[nodiscard]] const NodeConfig& config() const noexcept { return cfg_; }

  /// Runs one workload per socket to completion. workloads.size() must equal
  /// the socket count; each socket's threads are placed equidistantly on its
  /// own chip. Throws std::runtime_error on a watchdog abort.
  NodeResult run(std::vector<Workload>& workloads);

  /// Like run(), but reports watchdog/guardrail aborts as a diagnostic.
  util::Expected<NodeResult> try_run(std::vector<Workload>& workloads);

 private:
  NodeConfig cfg_;
};

}  // namespace mcopt::sim
