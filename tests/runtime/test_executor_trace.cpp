// Trace round-trip acceptance tests: the executor's job lifecycle and the
// supervisor's decisions must survive the recorder and exporter intact.
// Every admitted job has a matched job.run B/E pair or a typed shed
// instant; every supervisor action instant falls inside the observe span
// that produced it.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/address_map.h"
#include "obs/trace.h"
#include "runtime/executor/executor.h"
#include "runtime/supervisor.h"

namespace mcopt {
namespace {

using runtime::exec::Executor;
using runtime::exec::ExecutorConfig;
using runtime::exec::JobKind;
using runtime::exec::JobReport;
using runtime::exec::JobSpec;
using runtime::exec::ShedReason;

class TraceRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().reset();
    obs::TraceRecorder::instance().enable(1 << 14);
  }
  void TearDown() override {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().reset();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  static std::size_t count_occurrences(const std::string& hay,
                                       const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
      ++n;
    return n;
  }

  static bool starts_with(const char* name, const char* prefix) {
    return std::string(name).rfind(prefix, 0) == 0;
  }
};

TEST_F(TraceRoundTrip, EveryJobHasMatchedRunSpanOrTypedShedEvent) {
  ExecutorConfig cfg;
  cfg.num_workers = 2;
  cfg.run_kernels = false;  // pure lifecycle accounting, no kernel bodies
  Executor ex(cfg);

  // A mix that exercises both outcomes: jobs with no deadline complete;
  // jobs with an already-impossible absolute deadline are shed at the
  // admission gate with a typed reason.
  for (int i = 0; i < 24; ++i) {
    JobSpec j;
    j.kind = JobKind::kTriad;
    j.n = 256;
    j.iterations = 1;
    if (i % 3 == 2) j.deadline = 1;  // priced completion cannot make this
    (void)ex.submit(j);
  }
  ex.shutdown(Executor::Drain::kDrain);

  const std::vector<JobReport> reports = ex.reports();
  ASSERT_EQ(reports.size(), 24u);
  ASSERT_EQ(obs::TraceRecorder::instance().dropped(), 0u)
      << "ring too small for the lifecycle events; the check would be vacuous";

  const auto events = obs::TraceRecorder::instance().snapshot();
  std::map<std::uint64_t, int> submit, run_begin, run_end, shed;
  for (const auto& ev : events) {
    const std::string name(ev.name);
    if (name == "job.submit") ++submit[ev.a];
    if (name == "job.run" && ev.phase == obs::Phase::kBegin) ++run_begin[ev.a];
    if (name == "job.run" && ev.phase == obs::Phase::kEnd) ++run_end[ev.a];
    if (starts_with(ev.name, "job.shed")) ++shed[ev.a];
  }

  for (const JobReport& r : reports) {
    EXPECT_EQ(submit[r.id], 1) << "job " << r.id;
    if (r.completed) {
      EXPECT_EQ(run_begin[r.id], 1) << "job " << r.id;
      EXPECT_EQ(run_end[r.id], 1) << "job " << r.id;
      EXPECT_EQ(shed[r.id], 0) << "job " << r.id;
    } else {
      EXPECT_NE(r.shed, ShedReason::kNone) << "job " << r.id;
      EXPECT_EQ(shed[r.id], 1) << "job " << r.id;
      EXPECT_EQ(run_begin[r.id], 0) << "job " << r.id;
    }
  }

  // Both outcomes actually occurred, or the test proves nothing.
  EXPECT_FALSE(run_begin.empty());
  EXPECT_FALSE(shed.empty());

  // The exporter preserves the balance: every B has an E in the file.
  const std::string path = testing::TempDir() + "executor_trace.json";
  ASSERT_TRUE(obs::TraceRecorder::instance().write_chrome_trace(path).ok());
  const std::string body = slurp(path);
  EXPECT_EQ(count_occurrences(body, "\"ph\":\"B\""),
            count_occurrences(body, "\"ph\":\"E\""));
  EXPECT_NE(body.find("job.shed."), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceRoundTrip, EverySupervisorActionNestsInsideAnObserveSpan) {
  const arch::InterleaveSpec spec{};  // 4 controllers
  runtime::DetectorConfig det;
  det.backoff = {.initial = 50000, .multiplier = 2.0, .cap = 1600000,
                 .jitter = 0.0};
  runtime::Supervisor sup(det, spec);

  const std::vector<double> down = {0.6, 0.0, 0.55, 0.58};
  const std::vector<double> up = {0.5, 0.52, 0.48, 0.51};
  auto sample_at = [](arch::Cycles begin, std::vector<double> util) {
    return runtime::Sample{begin, begin + 10000, std::move(util)};
  };

  // Drive keep (debounce), replan, and suppressed (flap inside backoff).
  (void)sup.observe(sample_at(0, down));
  ASSERT_EQ(sup.observe(sample_at(10000, down)).action,
            runtime::Action::kReplan);
  sup.commit(20000);
  (void)sup.observe(sample_at(30000, up));
  ASSERT_EQ(sup.observe(sample_at(40000, up)).action,
            runtime::Action::kSuppressed);
  constexpr std::size_t kObserveCalls = 4;

  const auto events = obs::TraceRecorder::instance().snapshot();
  struct Window {
    std::uint32_t tid;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
  };
  std::vector<Window> observe_windows;
  std::map<std::uint32_t, std::vector<std::uint64_t>> open;  // tid -> B stack
  std::vector<obs::TraceEvent> actions;
  std::size_t commits = 0;
  for (const auto& ev : events) {
    const std::string name(ev.name);
    if (name == "supervisor.observe") {
      if (ev.phase == obs::Phase::kBegin) {
        open[ev.tid].push_back(ev.ts_ns);
      } else if (ev.phase == obs::Phase::kEnd) {
        ASSERT_FALSE(open[ev.tid].empty()) << "E without B";
        observe_windows.push_back({ev.tid, open[ev.tid].back(), ev.ts_ns});
        open[ev.tid].pop_back();
      }
    }
    if (starts_with(ev.name, "supervisor.action.")) actions.push_back(ev);
    if (name == "supervisor.commit") ++commits;
  }
  for (const auto& [tid, stack] : open)
    EXPECT_TRUE(stack.empty()) << "unclosed observe span on tid " << tid;

  // One observe span and exactly one action instant per observe() call.
  EXPECT_EQ(observe_windows.size(), kObserveCalls);
  ASSERT_EQ(actions.size(), kObserveCalls);
  EXPECT_EQ(commits, 1u);

  // The acceptance criterion: every action has a parent observe span —
  // same thread, timestamp inside the span's [B, E] window.
  for (const auto& act : actions) {
    bool nested = false;
    for (const auto& w : observe_windows)
      if (w.tid == act.tid && act.ts_ns >= w.begin_ns && act.ts_ns <= w.end_ns)
        nested = true;
    EXPECT_TRUE(nested) << act.name << " at ts " << act.ts_ns
                        << " has no enclosing supervisor.observe span";
  }

  // All three decision kinds round-tripped.
  std::size_t keeps = 0, replans = 0, suppressed = 0;
  for (const auto& act : actions) {
    if (std::string(act.name) == "supervisor.action.keep") ++keeps;
    if (std::string(act.name) == "supervisor.action.replan") ++replans;
    if (std::string(act.name) == "supervisor.action.suppressed") ++suppressed;
  }
  EXPECT_GE(keeps, 1u);
  EXPECT_EQ(replans, 1u);
  EXPECT_EQ(suppressed, 1u);
}

}  // namespace
}  // namespace mcopt
