#include "trace/jacobi_program.h"

#include <stdexcept>

namespace mcopt::trace {

JacobiProgram::JacobiProgram(JacobiGrids grids,
                             std::vector<sched::IterRange> row_chunks,
                             unsigned sweeps)
    : grids_(grids), chunks_(std::move(row_chunks)), sweeps_(sweeps) {
  if (grids_.source == nullptr || grids_.dest == nullptr)
    throw std::invalid_argument("JacobiProgram: null grids");
  if (grids_.n < 3) throw std::invalid_argument("JacobiProgram: n < 3");
  if (grids_.source->num_segments() != grids_.n ||
      grids_.dest->num_segments() != grids_.n)
    throw std::invalid_argument("JacobiProgram: grids must have n row segments");
  reset();
}

void JacobiProgram::reset() {
  sweep_ = 0;
  chunk_ = 0;
  iter_ = chunks_.empty() ? 0 : chunks_.front().begin;
  col_ = 1;
  phase_ = 0;
}

std::uint64_t JacobiProgram::total_accesses() const {
  std::uint64_t rows = 0;
  for (const auto& c : chunks_) rows += c.size();
  return rows * (grids_.n - 2) * 5 * sweeps_;
}

std::size_t JacobiProgram::next_batch(std::span<sim::Access> out) {
  std::size_t produced = 0;
  const std::size_t n = grids_.n;
  while (produced < out.size()) {
    if (sweep_ >= sweeps_ || chunks_.empty()) break;
    const sched::IterRange& chunk = chunks_[chunk_];
    if (iter_ >= chunk.end) {
      if (++chunk_ >= chunks_.size()) {
        chunk_ = 0;
        if (++sweep_ >= sweeps_) break;
      }
      iter_ = chunks_[chunk_].begin;
      col_ = 1;
      phase_ = 0;
      continue;
    }
    const std::size_t row = iter_ + 1;  // interior row index
    // dest[row][col] = 0.25*(src[row-1][col] + src[row+1][col]
    //                        + src[row][col-1] + src[row][col+1])
    sim::Access a;
    // Lockstep iterations are sites: uniform-cost units fine enough to keep
    // concurrently processed rows positionally aligned (Sect. 2.3 relies on
    // adjacent rows being streamed in phase under "static,1").
    switch (phase_) {
      case 0:
        a = {src().address_of(row - 1, col_), sim::Op::kLoad, true, 0};
        break;
      case 1:
        a = {src().address_of(row + 1, col_), sim::Op::kLoad, false, 0};
        break;
      case 2:
        a = {src().address_of(row, col_ - 1), sim::Op::kLoad, false, 0};
        break;
      case 3:
        a = {src().address_of(row, col_ + 1), sim::Op::kLoad, false, 0};
        break;
      default:
        // Three adds + one multiply happen before the store retires.
        a = {dst().address_of(row, col_), sim::Op::kStore, false, 4};
        break;
    }
    out[produced++] = a;
    if (++phase_ == 5) {
      phase_ = 0;
      if (++col_ == n - 1) {
        col_ = 1;
        ++iter_;
      }
    }
  }
  return produced;
}

sim::Workload make_jacobi_workload(const JacobiGrids& grids, unsigned num_threads,
                                   const sched::Schedule& schedule,
                                   unsigned sweeps) {
  sim::Workload workload;
  workload.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workload.push_back(std::make_unique<JacobiProgram>(
        grids, sched::chunks_for_thread(grids.n - 2, num_threads, t, schedule),
        sweeps));
  }
  return workload;
}

std::uint64_t jacobi_updates_per_sweep(std::size_t n) {
  return static_cast<std::uint64_t>(n - 2) * (n - 2);
}

}  // namespace mcopt::trace
