#pragma once
// Per-segment CRC32C sidecars for seg_array<T> — the detection half of the
// end-to-end integrity story (LLAMA-style: metadata attaches at the
// segmentation layer, kernels stay untouched).
//
// A SegmentGuard shadows one seg_array with a 4-byte checksum per segment.
// The segment is the natural protection unit: it is the paper's layout unit
// (one Jacobi row / one 512 B-aligned block), the unit a single corrupted
// FB-DIMM burst lands in, and the unit the rebuild recipes (re-relax a row
// from its neighbors, re-stream an LBM slab from the prior field) can
// restore without touching anything else.
//
// Life cycle per sweep of a protected solver:
//
//   guard.seal(s)      after legitimately writing segment s (cache-hot, so
//                      the CRC pass costs a read of data already in L1/L2);
//   guard.verify()     before trusting data — typed util::Status naming
//                      every corrupted segment, never propagated garbage;
//   guard.scrub(fn)    verify + rebuild: segments whose checksum mismatches
//                      are handed to the caller's rebuilder; segments it
//                      cannot restore are *quarantined* and poison status()
//                      until rebuilt or resealed.
//
// The guard is non-owning: it must not outlive the array it protects.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "seg/seg_array.h"
#include "util/crc.h"
#include "util/expected.h"

namespace mcopt::seg {

/// Result of one scrub pass.
struct ScrubReport {
  /// Segments whose checksum mismatched and whose rebuild succeeded.
  std::vector<std::size_t> rebuilt;
  /// Segments the rebuilder declined — now quarantined.
  std::vector<std::size_t> quarantined;
  /// Segments that verified clean.
  std::size_t clean = 0;

  [[nodiscard]] bool fully_recovered() const noexcept {
    return quarantined.empty();
  }
};

template <typename T>
class SegmentGuard {
 public:
  using size_type = std::size_t;

  /// Attaches to `array` and seals every segment as-is.
  explicit SegmentGuard(seg_array<T>& array) : array_(&array) {
    sidecars_.resize(array.num_segments(), 0);
    quarantined_.assign(array.num_segments(), false);
    seal();
  }

  [[nodiscard]] size_type num_segments() const noexcept {
    return sidecars_.size();
  }

  /// Recomputes every sidecar from the current contents (declares the whole
  /// array legitimate, clearing any quarantine).
  void seal() {
    for (size_type s = 0; s < sidecars_.size(); ++s) seal(s);
  }

  /// Recomputes segment `s`'s sidecar (call right after writing it, while
  /// the data is cache-hot). Clears the segment's quarantine flag.
  void seal(size_type s) {
    sidecars_.at(s) = checksum(s);
    quarantined_[s] = false;
  }

  /// Stored checksum of segment `s` (as of its last seal).
  [[nodiscard]] std::uint32_t sidecar(size_type s) const {
    return sidecars_.at(s);
  }

  /// True when segment `s` currently matches its sidecar.
  [[nodiscard]] bool segment_clean(size_type s) const {
    return checksum(s) == sidecars_.at(s);
  }

  /// Segments whose contents no longer match their sidecar.
  [[nodiscard]] std::vector<size_type> corrupted() const {
    std::vector<size_type> bad;
    for (size_type s = 0; s < sidecars_.size(); ++s)
      if (!segment_clean(s)) bad.push_back(s);
    return bad;
  }

  /// Full re-verification: ok() when every segment matches, otherwise a
  /// typed Status naming each mismatching segment. Quarantined segments are
  /// reported even if their bytes happen to match again (stale data that was
  /// never rebuilt is still not trustworthy).
  [[nodiscard]] util::Status verify() const {
    const obs::TraceSpan span("seg.verify", "seg", sidecars_.size(), 0);
    util::Status status;
    for (size_type s = 0; s < sidecars_.size(); ++s) {
      if (quarantined_[s]) {
        status.note("SegmentGuard: segment " + std::to_string(s) +
                    " is quarantined (corruption detected, not rebuilt)");
      } else if (!segment_clean(s)) {
        status.note("SegmentGuard: segment " + std::to_string(s) +
                    " fails CRC32C (stored " + std::to_string(sidecars_[s]) +
                    ", computed " + std::to_string(checksum(s)) + ")");
      }
    }
    return status;
  }

  /// Sticky health: ok() unless segments sit in quarantine. Cheap (no CRC
  /// pass) — this is what a caller consults before *reporting* results.
  [[nodiscard]] util::Status status() const {
    util::Status status;
    for (size_type s = 0; s < quarantined_.size(); ++s)
      if (quarantined_[s])
        status.note("SegmentGuard: segment " + std::to_string(s) +
                    " is quarantined");
    return status;
  }

  /// Verify + repair. `rebuild(s)` must restore segment `s`'s contents and
  /// return true, or return false when recovery is impossible; rebuilt
  /// segments are resealed (and re-checked: a rebuilder that claims success
  /// but leaves a mismatch against a caller-expected checksum is its
  /// problem — the guard reseals whatever the rebuilder wrote). Unrebuilt
  /// segments are quarantined.
  template <typename Rebuild>
  ScrubReport scrub(Rebuild&& rebuild) {
    obs::TraceSpan span("seg.scrub", "seg", sidecars_.size(), 0);
    ScrubReport report;
    for (size_type s = 0; s < sidecars_.size(); ++s) {
      if (!quarantined_[s] && segment_clean(s)) {
        ++report.clean;
        continue;
      }
      if (rebuild(s)) {
        seal(s);
        report.rebuilt.push_back(s);
      } else {
        quarantined_[s] = true;
        report.quarantined.push_back(s);
      }
    }
    span.set_args(report.rebuilt.size(), report.quarantined.size());
    return report;
  }

  /// True when segment `s` is quarantined.
  [[nodiscard]] bool is_quarantined(size_type s) const {
    return quarantined_.at(s);
  }

  /// Currently quarantined segments.
  [[nodiscard]] std::vector<size_type> quarantined() const {
    std::vector<size_type> out;
    for (size_type s = 0; s < quarantined_.size(); ++s)
      if (quarantined_[s]) out.push_back(s);
    return out;
  }

 private:
  [[nodiscard]] std::uint32_t checksum(size_type s) const {
    const auto& view = static_cast<const seg_array<T>&>(*array_).segment(s);
    return util::crc32c(view.begin(), view.size() * sizeof(T));
  }

  seg_array<T>* array_;                  // non-owning
  std::vector<std::uint32_t> sidecars_;  // one CRC32C per segment
  std::vector<bool> quarantined_;        // sticky until rebuilt/resealed
};

}  // namespace mcopt::seg
