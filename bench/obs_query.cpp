// obs_query: offline queries over the observability artifacts the benches
// and the durable runtime emit. Three modes, combinable in one invocation:
//
//   --explain-job <id> --traces pre.json,post.json
//       Stitch one submission's causal chain across any number of Chrome
//       trace files: resolve the submission id to its 64-bit flow id via
//       the "job.flow.journal" / "job.flow.replay" steps, then print every
//       causal event carrying that id in timeline order. A kill-restart
//       run hands this the pre-kill and post-restart traces and gets the
//       submit -> journal -> [SIGKILL] -> replay -> complete chain back.
//
//   --top-tenants <n> --attribution BENCH_x.attribution.json
//       Rank tenants by attributed bytes from an obs::Attribution JSON
//       export, with the per-charge breakdown (served/shed/scrub/probe/
//       migration).
//
//   --burn-report --burn BENCH_x.burn.json
//       Print the per-(tenant, SLO-class) burn table from an
//       obs::SloMonitor JSON export, flagging pairs over the multi-window
//       alert thresholds.
//
// Exit codes: 0 success, 1 query miss (e.g. submission id absent from the
// traces), 2 usage or parse error.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mcopt;

// --- minimal JSON reader ---------------------------------------------------
//
// The artifacts are machine-written by this repo, but the reader is still a
// real recursive-descent parser (not string scanning): it survives field
// reordering and whitespace changes. Unsigned integers are kept exact in
// `u64` — flow ids are full 64-bit values that a double would silently
// round beyond 2^53.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t u64 = 0;  ///< exact value when the token was a plain integer
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] const Json* find(const char* key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : s_(text.c_str()), n_(text.size()) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != n_) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }
  void ws() {
    while (pos_ < n_ && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                         s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= n_) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (pos_ >= n_ || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p)
      if (pos_ >= n_ || s_[pos_++] != *p) fail(std::string("bad literal"));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= n_) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= n_) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Control-character escapes from the exporters; a placeholder is
          // fine for a query tool (no matched name contains them).
          if (pos_ + 4 > n_) fail("truncated \\u escape");
          pos_ += 4;
          out += '?';
          break;
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < n_ && s_[pos_] == '-') {
      integral = false;
      ++pos_;
    }
    while (pos_ < n_ &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      if (!(s_[pos_] >= '0' && s_[pos_] <= '9')) integral = false;
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string tok(s_ + start, pos_ - start);
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::stod(tok);
    if (integral) v.u64 = std::stoull(tok);
    return v;
  }

  Json value() {
    ws();
    switch (peek()) {
      case '{': {
        Json v;
        v.kind = Json::Kind::kObject;
        expect('{');
        ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          ws();
          std::string key = string();
          ws();
          expect(':');
          v.object.emplace_back(std::move(key), value());
          ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        Json v;
        v.kind = Json::Kind::kArray;
        expect('[');
        ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.array.push_back(value());
          ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.str = string();
        return v;
      }
      case 't': {
        literal("true");
        Json v;
        v.kind = Json::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        Json v;
        v.kind = Json::Kind::kBool;
        return v;
      }
      case 'n': {
        literal("null");
        return Json{};
      }
      default: return number();
    }
  }

  const char* s_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// --- --explain-job ---------------------------------------------------------

struct FlowEvent {
  std::size_t file = 0;
  double ts_us = 0.0;
  char ph = '?';
  std::string name;
  std::uint64_t a = 0;  ///< the 64-bit flow id (trace context)
  std::uint64_t b = 0;  ///< per-event correlator (see b_meaning)
};

/// What args.b carries for each causal event (the emitters' contract).
const char* b_meaning(const std::string& name) {
  if (name == "job.flow.submit" || name == "job.flow.door-shed")
    return "tenant";
  if (name == "job.flow.journal" ||
      name.rfind("job.flow.replay", 0) == 0)  // replay + replayed-* family
    return "submission";
  return "exec-job";
}

std::vector<FlowEvent> load_causal_events(const std::string& path,
                                          std::size_t file_index) {
  const Json doc = JsonParser(read_file(path)).parse();
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != Json::Kind::kArray)
    throw std::runtime_error("'" + path +
                             "' is not a Chrome trace (no traceEvents)");
  std::vector<FlowEvent> out;
  for (const Json& e : events->array) {
    const Json* cat = e.find("cat");
    if (cat == nullptr || cat->str != "causal") continue;
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* ts = e.find("ts");
    const Json* args = e.find("args");
    if (name == nullptr || ph == nullptr || ts == nullptr || args == nullptr)
      continue;
    FlowEvent fe;
    fe.file = file_index;
    fe.name = name->str;
    fe.ph = ph->str.empty() ? '?' : ph->str[0];
    fe.ts_us = ts->number;
    const Json* a = args->find("a");
    const Json* b = args->find("b");
    fe.a = a == nullptr ? 0 : a->u64;
    fe.b = b == nullptr ? 0 : b->u64;
    out.push_back(std::move(fe));
  }
  return out;
}

const char* phase_word(char ph) {
  switch (ph) {
    case 's': return "start";
    case 't': return "step";
    case 'f': return "end";
  }
  return "?";
}

int explain_job(const std::vector<std::string>& trace_paths,
                std::uint64_t submission_id) {
  if (trace_paths.empty())
    throw std::runtime_error("--explain-job needs --traces <a.json,b.json,...>");
  std::vector<FlowEvent> all;
  for (std::size_t i = 0; i < trace_paths.size(); ++i) {
    auto evs = load_causal_events(trace_paths[i], i);
    all.insert(all.end(), evs.begin(), evs.end());
  }
  // Resolve submission -> flow id(s) via the steps that bind them. A
  // pre-kill trace binds at journal time; a post-restart trace re-binds at
  // replay, carrying the SAME journaled id — which is exactly what lets the
  // chain stitch across the kill.
  std::set<std::uint64_t> flow_ids;
  for (const FlowEvent& e : all)
    if (e.b == submission_id &&
        (e.name == "job.flow.journal" || e.name.rfind("job.flow.replay", 0) == 0))
      flow_ids.insert(e.a);
  if (flow_ids.empty()) {
    std::fprintf(stderr,
                 "obs_query: no journal/replay flow event for submission "
                 "%" PRIu64 " in %zu trace file(s)\n",
                 submission_id, trace_paths.size());
    return 1;
  }
  for (const std::uint64_t flow : flow_ids) {
    std::vector<FlowEvent> chain;
    for (const FlowEvent& e : all)
      if (e.a == flow) chain.push_back(e);
    std::stable_sort(chain.begin(), chain.end(),
                     [](const FlowEvent& x, const FlowEvent& y) {
                       if (x.file != y.file) return x.file < y.file;
                       return x.ts_us < y.ts_us;
                     });
    std::set<std::size_t> files_seen;
    for (const FlowEvent& e : chain) files_seen.insert(e.file);
    std::printf("# submission %" PRIu64 ": flow id 0x%" PRIx64
                ", %zu events across %zu file(s)\n",
                submission_id, flow, chain.size(), files_seen.size());
    util::Table table({"trace", "ts_us", "phase", "event", "correlator"});
    for (const FlowEvent& e : chain) {
      char ts[48];
      std::snprintf(ts, sizeof ts, "%.3f", e.ts_us);
      table.add_row({trace_paths[e.file], ts, phase_word(e.ph), e.name,
                     std::string(b_meaning(e.name)) + "=" +
                         std::to_string(e.b)});
    }
    table.print(std::cout);
    if (!chain.empty())
      std::printf("final: %s\n\n", chain.back().name.c_str());
  }
  return 0;
}

// --- --top-tenants ---------------------------------------------------------

int top_tenants(const std::string& attribution_path, std::uint64_t n) {
  if (attribution_path.empty())
    throw std::runtime_error("--top-tenants needs --attribution <path>");
  const Json doc = JsonParser(read_file(attribution_path)).parse();
  const Json* cells = doc.find("cells");
  if (cells == nullptr || cells->kind != Json::Kind::kArray)
    throw std::runtime_error("'" + attribution_path +
                             "' is not an attribution export (no cells)");
  struct Roll {
    std::uint64_t total = 0;
    std::map<std::string, std::uint64_t> by_charge;
    std::uint64_t events = 0;
  };
  std::map<std::uint64_t, Roll> tenants;
  for (const Json& c : cells->array) {
    const Json* tenant = c.find("tenant");
    const Json* charge = c.find("charge");
    const Json* bytes = c.find("bytes");
    const Json* count = c.find("count");
    if (tenant == nullptr || charge == nullptr || bytes == nullptr) continue;
    Roll& r = tenants[tenant->u64];
    r.total += bytes->u64;
    r.by_charge[charge->str] += bytes->u64;
    if (count != nullptr) r.events += count->u64;
  }
  std::vector<std::pair<std::uint64_t, Roll>> ranked(tenants.begin(),
                                                     tenants.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& x, const auto& y) {
                     return x.second.total > y.second.total;
                   });
  if (ranked.size() > n) ranked.resize(n);
  std::printf("# top %zu tenant(s) by attributed bytes (%s)\n", ranked.size(),
              attribution_path.c_str());
  util::Table table({"tenant", "bytes", "served", "shed", "scrub", "probe",
                     "migration", "events"});
  for (auto& [tenant, roll] : ranked) {
    auto of = [&roll = roll](const char* k) {
      const auto it = roll.by_charge.find(k);
      return std::to_string(it == roll.by_charge.end() ? 0 : it->second);
    };
    table.add_row({tenant == 0 ? "0 (system)" : std::to_string(tenant),
                   std::to_string(roll.total), of("served"), of("shed"),
                   of("scrub"), of("probe"), of("migration"),
                   std::to_string(roll.events)});
  }
  table.print(std::cout);
  return 0;
}

// --- --burn-report ---------------------------------------------------------

int burn_report(const std::string& burn_path) {
  if (burn_path.empty())
    throw std::runtime_error("--burn-report needs --burn <path>");
  const Json doc = JsonParser(read_file(burn_path)).parse();
  const Json* entries = doc.find("entries");
  const Json* fast_alert = doc.find("fast_alert");
  const Json* slow_alert = doc.find("slow_alert");
  const Json* target = doc.find("target");
  if (entries == nullptr || entries->kind != Json::Kind::kArray ||
      fast_alert == nullptr || slow_alert == nullptr || target == nullptr)
    throw std::runtime_error("'" + burn_path +
                             "' is not an SLO burn export (no entries)");
  std::printf("# SLO burn report (%s): target %.4f, alert when fast >= %.1f "
              "AND slow >= %.1f\n",
              burn_path.c_str(), target->number, fast_alert->number,
              slow_alert->number);
  util::Table table({"tenant", "class", "total", "missed", "fast_burn",
                     "slow_burn", "alerts", "state"});
  for (const Json& e : entries->array) {
    const Json* tenant = e.find("tenant");
    const Json* cls = e.find("slo_class");
    const Json* total = e.find("total");
    const Json* missed = e.find("missed");
    const Json* fast = e.find("fast_burn");
    const Json* slow = e.find("slow_burn");
    const Json* alerts = e.find("alerts");
    if (tenant == nullptr || cls == nullptr || fast == nullptr ||
        slow == nullptr)
      continue;
    const bool burning = fast->number >= fast_alert->number &&
                         slow->number >= slow_alert->number;
    char fb[32];
    char sb[32];
    std::snprintf(fb, sizeof fb, "%.3f", fast->number);
    std::snprintf(sb, sizeof sb, "%.3f", slow->number);
    table.add_row({std::to_string(tenant->u64), std::to_string(cls->u64),
                   std::to_string(total == nullptr ? 0 : total->u64),
                   std::to_string(missed == nullptr ? 0 : missed->u64), fb, sb,
                   std::to_string(alerts == nullptr ? 0 : alerts->u64),
                   burning ? "BURNING" : "ok"});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "obs_query: offline queries over mcopt observability artifacts — "
      "causal job chains from Chrome traces, tenant rankings from "
      "attribution ledgers, SLO burn tables");
  cli.option_int("explain-job", 0,
                 "stitch the causal chain for this submission id across "
                 "--traces (0 = off)")
      .option_str("traces", "",
                  "comma-separated Chrome trace JSONs in causal order "
                  "(e.g. pre-kill,post-restart)")
      .option_int("top-tenants", 0,
                  "rank the top-N tenants by attributed bytes from "
                  "--attribution (0 = off)")
      .option_str("attribution", "",
                  "attribution ledger JSON (*.attribution.json)")
      .flag("burn-report", "print the SLO burn table from --burn")
      .option_str("burn", "", "SLO burn JSON (*.burn.json)");
  if (!cli.parse(argc, argv)) return 0;
  try {
    bool ran = false;
    int rc = 0;
    if (cli.get_int("explain-job") != 0) {
      ran = true;
      rc |= explain_job(split_commas(cli.get_str("traces")),
                        static_cast<std::uint64_t>(cli.get_int("explain-job")));
    }
    if (cli.get_int("top-tenants") != 0) {
      ran = true;
      rc |= top_tenants(cli.get_str("attribution"),
                        static_cast<std::uint64_t>(cli.get_int("top-tenants")));
    }
    if (cli.get_flag("burn-report")) {
      ran = true;
      rc |= burn_report(cli.get_str("burn"));
    }
    if (!ran) {
      std::fprintf(stderr,
                   "obs_query: nothing to do (pass --explain-job, "
                   "--top-tenants, and/or --burn-report)\n");
      return 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_query: %s\n", e.what());
    return 2;
  }
}
