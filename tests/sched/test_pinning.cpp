#include "sched/pinning.h"

#include <gtest/gtest.h>

#include <sched.h>

namespace mcopt::sched {
namespace {

TEST(Pinning, OnlineCpusPositive) { EXPECT_GE(online_cpus(), 1u); }

TEST(Pinning, PinToCpuZeroSucceeds) {
  // CPU 0 always exists; restore the original mask afterwards.
  cpu_set_t saved;
  CPU_ZERO(&saved);
  ASSERT_EQ(sched_getaffinity(0, sizeof(saved), &saved), 0);
  EXPECT_TRUE(pin_current_thread(0));
  cpu_set_t now;
  CPU_ZERO(&now);
  ASSERT_EQ(sched_getaffinity(0, sizeof(now), &now), 0);
  EXPECT_TRUE(CPU_ISSET(0, &now));
  EXPECT_EQ(CPU_COUNT(&now), 1);
  sched_setaffinity(0, sizeof(saved), &saved);
}

TEST(Pinning, OutOfRangeCpuFails) {
  EXPECT_FALSE(pin_current_thread(CPU_SETSIZE + 10));
}

TEST(Pinning, ScopedPinRestoresMask) {
  cpu_set_t before;
  CPU_ZERO(&before);
  ASSERT_EQ(sched_getaffinity(0, sizeof(before), &before), 0);
  {
    ScopedPin pin(0);
    EXPECT_TRUE(pin.ok());
    cpu_set_t during;
    CPU_ZERO(&during);
    ASSERT_EQ(sched_getaffinity(0, sizeof(during), &during), 0);
    EXPECT_EQ(CPU_COUNT(&during), 1);
  }
  cpu_set_t after;
  CPU_ZERO(&after);
  ASSERT_EQ(sched_getaffinity(0, sizeof(after), &after), 0);
  EXPECT_TRUE(CPU_EQUAL(&before, &after));
}

TEST(Pinning, OmpThreadsPinnable) {
  cpu_set_t saved;
  CPU_ZERO(&saved);
  ASSERT_EQ(sched_getaffinity(0, sizeof(saved), &saved), 0);
  const unsigned pinned = pin_omp_threads();
  EXPECT_GE(pinned, 1u);
  sched_setaffinity(0, sizeof(saved), &saved);
}

}  // namespace
}  // namespace mcopt::sched
