// Tier-1 promotion of one hard service-chaos seed: the nightly
// `overload_soak --service-chaos` fuzzes random tenant populations and
// fault schedules; this test pins a known-hard seed so the service layer's
// isolation invariants cannot silently decay between nightlies.
//
// Seed 4 at 200 tenants composes every defense at once: two burst-flood
// tenants and a quota-oscillator hammer the door (token buckets + circuit
// breakers), a deadline-abuser feeds the admission gate hopeless deadlines,
// AND a drawn fault schedule degrades the served capacity enough that the
// drain overruns the offered horizon — the soak observed ~35 ms pooled
// victim p50 against ~0.7 ms on a healthy run. Degradation with abuse is
// the hostile case for the door: quota verdicts run on the arrival clock
// while the executor falls behind on the service clock, and the two must
// not disagree about conservation.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench/service_common.h"

namespace mcopt {
namespace {

constexpr std::uint64_t kHardSeed = 4;
constexpr unsigned kTenants = 200;
constexpr unsigned kJobs = 60000;
constexpr unsigned kWorkers = 4;

TEST(ServiceRegression, HardSeedKeepsIsolationInvariantsWhileDegraded) {
  const bench::ServiceSoakParams params =
      bench::service_chaos_params(kHardSeed, kTenants, kJobs, kWorkers);

  // The seed must reproduce the compound scenario, not some other draw: a
  // non-empty fault schedule and a mixed adversarial population. If the
  // generator changes, re-run the chaos soak and promote a new hard seed.
  ASSERT_FALSE(params.truth.intervals.empty());

  const bench::ServiceSoakResult mixed = bench::run_service_soak(params);
  bench::ServiceSoakParams solo = params;
  solo.mute_attackers = true;
  const bench::ServiceSoakResult baseline = bench::run_service_soak(solo);

  std::array<unsigned, bench::kNumTenantBehaviors> population{};
  for (const bench::TenantBehavior b : mixed.behaviors)
    ++population[static_cast<unsigned>(b)];
  EXPECT_EQ(population[static_cast<unsigned>(
                bench::TenantBehavior::kBurstFlood)], 2u);
  EXPECT_EQ(population[static_cast<unsigned>(
                bench::TenantBehavior::kDeadlineAbuser)], 1u);
  EXPECT_EQ(population[static_cast<unsigned>(
                bench::TenantBehavior::kQuotaOscillator)], 1u);

  // Degraded-mode invariants: S1 conservation across both layers, S4 quota
  // containment, and the identical-stream baseline construction. (S2/S3
  // latency gates are waived — the fault schedule, not the attackers, is
  // what slows the victims here.)
  const auto failures = bench::check_service_invariants(
      params, mixed, baseline, /*degraded=*/true);
  for (const auto& f : failures) ADD_FAILURE() << f;

  // The storm must actually bite and be survived, end to end:
  // door throttling and circuit breakers engage against the floods...
  EXPECT_GT(mixed.door_shed, 0u);
  EXPECT_GT(mixed.breaker_opens, 0u);
  // ...every hopeless-deadline job is shed at admission, not served...
  std::uint64_t abuser_submitted = 0;
  for (std::size_t i = 0; i < mixed.tenants.size(); ++i)
    if (mixed.behaviors[i] == bench::TenantBehavior::kDeadlineAbuser)
      abuser_submitted += mixed.tenants[i].counters.submitted;
  EXPECT_GT(abuser_submitted, 0u);
  EXPECT_EQ(mixed.exec_stats.shed[static_cast<std::size_t>(
                runtime::exec::ShedReason::kWouldMissDeadline)],
            abuser_submitted);
  // ...the degradation is real (the drain overruns the offered horizon)...
  EXPECT_GT(mixed.drained_at, mixed.horizon);
  // ...and the well-behaved population still gets its bytes through.
  std::uint64_t wb_offered = 0, wb_goodput = 0;
  for (std::size_t i = 0; i < mixed.tenants.size(); ++i) {
    if (mixed.behaviors[i] != bench::TenantBehavior::kWellBehaved) continue;
    wb_offered += mixed.tenants[i].counters.offered_bytes;
    wb_goodput += mixed.tenants[i].goodput_bytes;
  }
  EXPECT_GE(static_cast<double>(wb_goodput),
            0.95 * static_cast<double>(wb_offered));
  EXPECT_GE(mixed.jain_weighted, 0.95);
}

}  // namespace
}  // namespace mcopt
