#include "sim/memory_controller.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace mcopt::sim {

MemoryController::MemoryController(const arch::Calibration& cal,
                                   const arch::InterleaveSpec& spec,
                                   double rate_factor)
    : cal_(cal),
      rate_factor_(rate_factor),
      line_bytes_(spec.line_size()),
      line_bits_(spec.line_bits),
      bank_select_bits_(spec.controller_bits),
      bank_low_bit_(spec.bank_bits) {
  if (!(rate_factor_ > 0.0) || rate_factor_ > 1.0)
    throw std::invalid_argument("MemoryController: rate_factor must be in (0, 1]");
  if (cal_.dram_banks == 0 || (cal_.dram_banks & (cal_.dram_banks - 1)) != 0)
    throw std::invalid_argument("MemoryController: dram_banks must be a power of two");
  if (cal_.dram_row_bytes < line_bytes_ ||
      cal_.dram_row_bytes % line_bytes_ != 0)
    throw std::invalid_argument("MemoryController: bad dram_row_bytes");
  const auto lines_per_row = cal_.dram_row_bytes / line_bytes_;
  if ((lines_per_row & (lines_per_row - 1)) != 0)
    throw std::invalid_argument("MemoryController: lines per row must be a power of two");
  row_line_bits_ = static_cast<unsigned>(std::countr_zero(lines_per_row));
  dram_bank_bits_ = static_cast<unsigned>(std::countr_zero(std::size_t{cal_.dram_banks}));
  banks_.resize(cal_.dram_banks);
}

void MemoryController::set_rate_factor(double rate_factor) {
  if (!(rate_factor > 0.0) || rate_factor > 1.0)
    throw std::invalid_argument("MemoryController: rate_factor must be in (0, 1]");
  rate_factor_ = rate_factor;
}

std::uint64_t MemoryController::local_line(arch::Addr addr) const noexcept {
  const std::uint64_t global = addr >> line_bits_;
  // Line index layout (low to high): [bank-within-controller][controller][rest].
  const std::uint64_t low = global & ((std::uint64_t{1} << bank_low_bit_) - 1);
  const std::uint64_t high = global >> (bank_low_bit_ + bank_select_bits_);
  return (high << bank_low_bit_) | low;
}

unsigned MemoryController::bank_of(arch::Addr addr) const noexcept {
  return static_cast<unsigned>((local_line(addr) >> row_line_bits_) &
                               (cal_.dram_banks - 1));
}

std::uint64_t MemoryController::row_of(arch::Addr addr) const noexcept {
  return local_line(addr) >> (row_line_bits_ + dram_bank_bits_);
}

arch::Cycles MemoryController::request(arch::Cycles now, bool is_write,
                                       arch::Addr addr) {
  const arch::Cycles bus_start = std::max(now, bus_free_);

  // Bank preparation: activate/precharge when the open row differs. The
  // preparation starts as soon as the request arrives and the bank is free —
  // it overlaps other banks' bus transfers (as in a real controller), so it
  // only costs wall time when the same bank is hit back-to-back with
  // different rows (congruent stream bases).
  Bank& bank = banks_[bank_of(addr)];
  const std::uint64_t row = row_of(addr);
  arch::Cycles ready = std::max(now, bank.ready);
  if (bank.open_row != row) {
    ready += cal_.dram_row_miss_extra;
    bank.open_row = row;
    ++stats_.row_conflicts;
  } else {
    ++stats_.row_hits;
  }

  arch::Cycles service = cal_.mc_request_overhead +
                         (is_write ? cal_.mc_write_service : cal_.mc_read_service);
  if (any_request_ && is_write != last_was_write_) {
    service += cal_.mc_turnaround;
    ++stats_.turnarounds;
  }
  if (rate_factor_ < 1.0)
    service = static_cast<arch::Cycles>(
        std::ceil(static_cast<double>(service) / rate_factor_));
  last_was_write_ = is_write;
  any_request_ = true;

  const arch::Cycles start = std::max(bus_start, ready);
  const arch::Cycles end = start + service;
  bus_free_ = end;
  bank.ready = end;

  if (is_write)
    ++stats_.writes;
  else
    ++stats_.reads;
  stats_.busy_cycles += end - bus_start;
  stats_.last_completion = std::max(stats_.last_completion, end);
  return end;
}

}  // namespace mcopt::sim
