// Example: a 2D heat-equation (Laplace) solver built on the library's
// public API — the workload of Sect. 2.3 as a complete application.
//
// A square plate has its top edge held at 100 degrees and the other edges at
// 0; the interior relaxes to the steady-state temperature field by Jacobi
// iteration. The grid is a seg_array with one row per segment using the
// planner's aliasing-free layout, the sweep runs under OpenMP "static,1",
// and convergence is monitored with the library's max-delta reduction.
//
// Usage: heat_solver [--n 256] [--tol 1e-6] [--max-iters 20000] [--plain]

#include <cstdio>

#include "kernels/jacobi.h"
#include "sched/pinning.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mcopt;
  util::Cli cli("2D steady-state heat solver on seg_array grids");
  cli.option_int("n", 256, "grid edge length")
      .option_double("tol", 1e-6, "convergence tolerance (max change/sweep)")
      .option_int("max-iters", 20000, "iteration cap")
      .flag("plain", "use the naive dense layout instead of the planner's");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const double tol = cli.get_double("tol");
  const auto max_iters = static_cast<unsigned>(cli.get_int("max-iters"));
  const arch::AddressMap map;
  const seg::LayoutSpec spec = cli.get_flag("plain")
                                   ? kernels::jacobi_plain_spec()
                                   : kernels::jacobi_optimal_spec(map);

  auto src = kernels::make_jacobi_grid(n, spec);
  auto dst = kernels::make_jacobi_grid(n, spec);
  // Boundary conditions: top edge hot, the rest cold.
  for (auto grid : {&src, &dst}) {
    for (std::size_t j = 0; j < n; ++j) grid->segment(0)[j] = 100.0;
  }

  std::printf("grid %zux%zu, layout %s, %u CPU(s)\n", n, n,
              cli.get_flag("plain") ? "plain" : "planner (512B rows, shift 128B)",
              sched::online_cpus());

  util::Timer timer;
  unsigned iters = 0;
  double delta = tol + 1.0;
  double kernel_seconds = 0.0;
  while (iters < max_iters && delta > tol) {
    kernel_seconds += kernels::jacobi_sweep_seconds(
        src, dst, sched::Schedule::static_chunk(1));
    ++iters;
    if (iters % 50 == 0 || iters == 1) delta = kernels::jacobi_max_delta(src, dst);
    std::swap(src, dst);
  }
  const double wall = timer.seconds();

  const auto updates = static_cast<double>(trace::jacobi_updates_per_sweep(n)) *
                       static_cast<double>(iters);
  std::printf("%s after %u sweeps, last delta %.2e, wall %.2fs, kernel %.0f MLUPs/s\n",
              delta <= tol ? "converged" : "stopped", iters, delta, wall,
              updates / kernel_seconds / 1e6);

  // Sample the temperature along the vertical centre line.
  std::printf("\ncentre-line temperature profile:\n");
  for (std::size_t i = 0; i < n; i += n / 8)
    std::printf("  row %4zu: %7.2f\n", i, src.segment(i)[n / 2]);

  // Physics sanity: steady-state temperature at the centre of a plate with
  // one hot edge is 25 degrees (by superposition/symmetry, T_center equals
  // the average of the four edge temperatures).
  std::printf("\ncentre temperature: %.2f (analytic: 25.00)\n",
              src.segment(n / 2)[n / 2]);
  return 0;
}
