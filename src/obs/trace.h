#pragma once
// Flight-recorder tracing: lock-free per-thread ring buffers of fixed-size
// binary events with a Chrome trace_event JSON exporter.
//
// Design constraints, in order:
//  * ~zero cost when compiled in but idle: record() is one relaxed atomic
//    load and a branch when the recorder is disabled;
//  * no allocation on the hot path: each thread owns a fixed-capacity ring
//    of 128-byte slots, allocated once on the thread's first event and
//    never freed (so a fatal-signal handler can walk them safely);
//  * TSan-clean with zero suppressions: every slot word is a std::atomic
//    written with relaxed stores and published by a seqlock-style sequence
//    number (odd = in progress, even = committed), so a concurrent reader
//    never races — it re-checks the sequence and skips torn slots;
//  * flight-recorder semantics: the ring overwrites its oldest events and
//    counts what it dropped; on a watchdog trip, invariant failure, or
//    fatal signal the last N events per thread are serialized next to the
//    failing artifact (write_flight_dump / install_flight_recorder).
//
// Event names and categories MUST be string literals (or otherwise have
// static storage duration): slots store the pointers, not copies. Dynamic
// payload goes in the two u64 args or the 32-byte inline message.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.h"

namespace mcopt::obs {

/// Chrome trace_event phases we emit. kBegin/kEnd are duration spans,
/// kInstant a point event, kCounter a sampled value (args.value = a).
/// kFlowStart/kFlowStep/kFlowEnd are flow events ("s"/"t"/"f"): the causal
/// arrows that stitch one job's spans across threads — and, because the
/// flow id is the journaled trace context, across process restarts. The
/// flow id is the event's `a` argument; `b` is free for a correlator
/// (submission id, shard index, ...).
enum class Phase : std::uint8_t {
  kBegin = 0,
  kEnd = 1,
  kInstant = 2,
  kCounter = 3,
  kFlowStart = 4,
  kFlowStep = 5,
  kFlowEnd = 6,
};

[[nodiscard]] char phase_char(Phase p) noexcept;

/// Allocates a fresh nonzero causal trace id. Ids carry a per-process salt
/// in their high bits so two processes (or one process across a restart)
/// never mint colliding ids; replayed jobs keep the journaled original.
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

/// Monotonic nanoseconds since the process-wide trace epoch (first use).
/// Shared with util::log timestamps so log lines and trace events align.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// One decoded event, as returned by TraceRecorder::snapshot().
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;   ///< recorder-assigned thread index
  std::uint64_t seq = 0;   ///< per-thread event ordinal (monotone)
  Phase phase = Phase::kInstant;
  const char* name = "";
  const char* cat = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string msg;         ///< inline message (log mirror), possibly empty
};

/// Inline message capacity per event (bytes).
inline constexpr std::size_t kEventMsgBytes = 32;

/// Process-wide trace recorder. All methods are thread-safe; record() is
/// wait-free after a thread's first event.
class TraceRecorder {
 public:
  /// Per-thread ring buffer; definition is internal to trace.cpp but the
  /// type is public so file-local helpers can own and cache pointers.
  struct ThreadBuffer;

  static TraceRecorder& instance() noexcept;

  /// Turns recording on. `capacity_per_thread` (rounded up to a power of
  /// two, min 8) applies to ring buffers created after this call; threads
  /// that already own a buffer keep theirs. Also mirrors util::log lines
  /// into the trace as "log"-category instants.
  void enable(std::size_t capacity_per_thread = kDefaultCapacity);

  /// Turns recording off (buffers and their events are retained for
  /// snapshot/export until reset()).
  void disable();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring. No-op when disabled.
  /// `name`/`cat` must have static storage duration. `msg` (optional) is
  /// copied inline, truncated to kEventMsgBytes.
  void record(Phase phase, const char* name, const char* cat,
              std::uint64_t a = 0, std::uint64_t b = 0,
              const char* msg = nullptr, std::size_t msg_len = 0) noexcept;

  /// Decodes every committed event still resident in the rings, sorted by
  /// timestamp (ties broken by thread id, then per-thread order). Safe to
  /// call concurrently with writers: in-flight or overwritten slots are
  /// skipped, never torn.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Writes the full resident trace as Chrome trace_event JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev). Unmatched begin/end
  /// events at the ring edges are balanced so the file always validates.
  [[nodiscard]] util::Status write_chrome_trace(const std::string& path) const;

  /// Writes only the last `last_n` events per thread (the flight recorder's
  /// post-mortem window), same format.
  [[nodiscard]] util::Status write_flight_dump(
      const std::string& path, std::size_t last_n = kFlightWindow) const;

  /// Async-signal-safe plain-text dump of the last kFlightWindow events per
  /// thread to an open fd: no allocation, no stdio, no locks. Returns 0 on
  /// success. This is what the fatal-signal handler calls.
  int dump_to_fd(int fd) const noexcept;

  /// Events ever recorded / overwritten-or-dropped since the last reset().
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Threads that have contributed at least one event since the last reset.
  [[nodiscard]] std::uint32_t threads_seen() const noexcept;
  /// Slots a reader skipped because a writer was mid-publish (seqlock
  /// validation failed and the read retried on the next slot). A handful per
  /// snapshot is normal under load; a large number means readers are racing
  /// hot writers and the export window should move off the hot path.
  [[nodiscard]] std::uint64_t seqlock_retries() const noexcept;

  /// Discards all recorded events and thread registrations (buffers are
  /// retired, not freed — a crash handler may still be walking them). The
  /// enabled state and configured capacity are preserved. Test/bench use.
  void reset();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  static constexpr std::size_t kFlightWindow = 256;
  static constexpr std::size_t kMaxThreads = 256;

 private:
  TraceRecorder() = default;

  ThreadBuffer* buffer_for_this_thread() noexcept;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  /// Bumped by reset(); thread-local cached buffers from older generations
  /// are abandoned and re-acquired.
  std::atomic<std::uint64_t> generation_{0};
  /// Append-only registration slots walked by readers and the signal
  /// handler; cleared only by reset() (count drops, pointers stay valid).
  std::array<std::atomic<ThreadBuffer*>, kMaxThreads> registry_{};
  std::atomic<std::uint32_t> registered_{0};
  /// Events lost because the per-process thread limit was hit.
  std::atomic<std::uint64_t> unregistered_drops_{0};
  /// Torn-slot skips observed by snapshot()/dump_to_fd() readers.
  mutable std::atomic<std::uint64_t> seqlock_retries_{0};
};

/// RAII begin/end span. No-op when the recorder is disabled at
/// construction. set_args() updates the values attached to the end event.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, std::uint64_t a = 0,
            std::uint64_t b = 0) noexcept
      : name_(name), cat_(cat), a_(a), b_(b),
        live_(TraceRecorder::instance().enabled()) {
    if (live_) TraceRecorder::instance().record(Phase::kBegin, name_, cat_, a_, b_);
  }
  ~TraceSpan() {
    if (live_) TraceRecorder::instance().record(Phase::kEnd, name_, cat_, a_, b_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_args(std::uint64_t a, std::uint64_t b) noexcept {
    a_ = a;
    b_ = b;
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t a_;
  std::uint64_t b_;
  bool live_;
};

inline void trace_instant(const char* name, const char* cat,
                          std::uint64_t a = 0, std::uint64_t b = 0) noexcept {
  TraceRecorder::instance().record(Phase::kInstant, name, cat, a, b);
}

inline void trace_counter(const char* name, const char* cat,
                          std::uint64_t value) noexcept {
  TraceRecorder::instance().record(Phase::kCounter, name, cat, value);
}

/// Causal flow markers. `flow_id` is the 64-bit trace context allocated at
/// the service door and carried through WFQ, the executor, and the journal;
/// every event sharing a flow id renders as one connected arrow chain in
/// the Chrome/Perfetto UI. `corr` is a free correlator (submission id).
inline void trace_flow_start(const char* name, const char* cat,
                             std::uint64_t flow_id,
                             std::uint64_t corr = 0) noexcept {
  TraceRecorder::instance().record(Phase::kFlowStart, name, cat, flow_id, corr);
}

inline void trace_flow_step(const char* name, const char* cat,
                            std::uint64_t flow_id,
                            std::uint64_t corr = 0) noexcept {
  TraceRecorder::instance().record(Phase::kFlowStep, name, cat, flow_id, corr);
}

inline void trace_flow_end(const char* name, const char* cat,
                           std::uint64_t flow_id,
                           std::uint64_t corr = 0) noexcept {
  TraceRecorder::instance().record(Phase::kFlowEnd, name, cat, flow_id, corr);
}

/// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL, SIGFPE,
/// SIGABRT) that dump the flight-recorder window to `path` (plain text via
/// dump_to_fd) and then re-raise with the default disposition. The path is
/// copied into static storage; repeated calls replace it.
[[nodiscard]] util::Status install_flight_recorder(const std::string& path);

}  // namespace mcopt::obs
