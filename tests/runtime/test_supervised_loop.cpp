// Supervised kernel loops: self-healing from a pathological layout, no-op
// behavior on healthy planned runs, and migration-cost accounting.

#include <gtest/gtest.h>

#include <vector>

#include "kernels/jacobi.h"
#include "kernels/triad.h"
#include "runtime/supervised_loop.h"
#include "seg/planner.h"
#include "trace/virtual_arena.h"

namespace mcopt::runtime {
namespace {

constexpr std::size_t kN = 8192;
constexpr unsigned kThreads = 32;

LoopConfig loop_config(bool supervise, unsigned slices = 6) {
  LoopConfig cfg;
  cfg.threads = kThreads;
  cfg.slices = slices;
  cfg.supervise = supervise;
  return cfg;
}

std::vector<arch::Addr> bases_for(trace::VirtualArena& arena,
                                  kernels::TriadLayout layout) {
  const arch::AddressMap map{arch::InterleaveSpec{}};
  return kernels::triad_layout_bases(arena, layout, kN, map);
}

TEST(SupervisedTriad, HealsAliasedLayoutAndBeatsBaseline) {
  trace::VirtualArena arena;
  const auto aliased = bases_for(arena, kernels::TriadLayout::kAligned8k);

  const LoopResult supervised =
      run_supervised_triad(arena, aliased, kN, loop_config(true));
  const LoopResult unsupervised =
      run_supervised_triad(arena, aliased, kN, loop_config(false));

  EXPECT_EQ(supervised.replans, 1u);
  EXPECT_GT(supervised.migration_cycles, 0u);
  // The healed layout must pay for the copy with a clear end-to-end win.
  EXPECT_GT(supervised.bandwidth, 1.2 * unsupervised.bandwidth);
  // Post-replan bases sit on pairwise distinct controllers.
  const arch::AddressMap map{arch::InterleaveSpec{}};
  ASSERT_EQ(supervised.replan_log.size(), 1u);
  const auto report =
      seg::diagnose_streams(supervised.replan_log[0].bases, map);
  EXPECT_FALSE(report.fully_aliased);
  EXPECT_DOUBLE_EQ(report.balance, 1.0);
}

TEST(SupervisedTriad, PlannedHealthyRunIsANoOp) {
  trace::VirtualArena arena;
  const auto planned = bases_for(arena, kernels::TriadLayout::kPlannedOffsets);

  const LoopResult supervised =
      run_supervised_triad(arena, planned, kN, loop_config(true));
  const LoopResult unsupervised =
      run_supervised_triad(arena, planned, kN, loop_config(false));

  // Nothing to heal: no migration, and supervised == unsupervised exactly
  // (identical slicing, zero supervision overhead in simulated time).
  EXPECT_EQ(supervised.replans, 0u);
  EXPECT_EQ(supervised.migration_cycles, 0u);
  EXPECT_EQ(supervised.total_cycles, unsupervised.total_cycles);
  EXPECT_FALSE(supervised.final_diagnosis.any());
  EXPECT_EQ(supervised.final_bases, planned);
}

TEST(SupervisedTriad, MidRunOutageIsDetected) {
  trace::VirtualArena arena;
  const auto planned = bases_for(arena, kernels::TriadLayout::kPlannedOffsets);

  // Probe one slice to size an outage covering the middle of an 8-slice run.
  LoopConfig probe = loop_config(false, 1);
  const LoopResult one = run_supervised_triad(arena, planned, kN, probe);

  LoopConfig cfg = loop_config(true, 8);
  cfg.sim.fault_schedule =
      sim::FaultSchedule::parse("mc1:off@" +
                                std::to_string(2 * one.total_cycles) + ".." +
                                std::to_string(6 * one.total_cycles))
          .value();
  const LoopResult supervised = run_supervised_triad(arena, planned, kN, cfg);

  LoopConfig base = cfg;
  base.supervise = false;
  const LoopResult unsupervised = run_supervised_triad(arena, planned, kN, base);

  // Supervision never loses to the baseline (the break-even gate declines
  // migrations that would not pay for themselves).
  EXPECT_LE(supervised.total_cycles,
            unsupervised.total_cycles + unsupervised.total_cycles / 50);
  // The run ends after the fault cleared: final diagnosis is healthy.
  EXPECT_FALSE(supervised.final_diagnosis.any());
}

TEST(SupervisedJacobi, PlannedHealthyRunIsANoOp) {
  // Separate arenas with equal bases: both runs see identical addresses.
  trace::VirtualArena arena_a;
  trace::VirtualArena arena_b;
  const arch::AddressMap map{arch::InterleaveSpec{}};
  LoopConfig cfg = loop_config(true, 4);

  const LoopResult supervised = run_supervised_jacobi(
      arena_a, 512, kernels::jacobi_optimal_spec(map), cfg);
  cfg.supervise = false;
  const LoopResult unsupervised = run_supervised_jacobi(
      arena_b, 512, kernels::jacobi_optimal_spec(map), cfg);

  EXPECT_EQ(supervised.replans, 0u);
  EXPECT_EQ(supervised.total_cycles, unsupervised.total_cycles);
  EXPECT_GT(supervised.bytes, 0u);
}

TEST(SupervisedJacobi, HealsPlainLayout) {
  trace::VirtualArena arena_a;
  trace::VirtualArena arena_b;
  LoopConfig cfg = loop_config(true, 6);

  const LoopResult supervised =
      run_supervised_jacobi(arena_a, 512, kernels::jacobi_plain_spec(), cfg);
  cfg.supervise = false;
  const LoopResult unsupervised =
      run_supervised_jacobi(arena_b, 512, kernels::jacobi_plain_spec(), cfg);

  // The plain layout may or may not be heal-worthy at this size; the loop
  // must never end up behind the baseline either way.
  EXPECT_LE(supervised.total_cycles,
            unsupervised.total_cycles + unsupervised.total_cycles / 50);
  if (supervised.replans > 0) {
    EXPECT_GT(supervised.migration_cycles, 0u);
    EXPECT_GT(supervised.bandwidth, unsupervised.bandwidth);
  }
}

TEST(SupervisedLoop, ConfigValidationAccumulates) {
  LoopConfig cfg;
  cfg.threads = 0;
  cfg.slices = 0;
  cfg.migration_safety = -1.0;
  const auto status = cfg.check();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("threads"), std::string::npos);
  EXPECT_NE(status.error().message.find("slices"), std::string::npos);
  EXPECT_NE(status.error().message.find("migration_safety"), std::string::npos);

  LoopConfig percent;
  percent.sim.fault_schedule =
      sim::FaultSchedule::parse("mc1:off@25%..75%").value();
  EXPECT_FALSE(percent.check().ok());
}

TEST(SupervisedTriad, FlipScheduleTriggersScrubs) {
  trace::VirtualArena arena;
  const auto planned = bases_for(arena, kernels::TriadLayout::kPlannedOffsets);

  LoopConfig cfg = loop_config(true, 4);
  cfg.sim.fault_schedule = sim::FaultSchedule::parse("mc0:flip=1").value();
  const LoopResult res = run_supervised_triad(arena, planned, kN, cfg);

  // Every slice reads through the flipping controller, so every slice
  // surfaces corruption and the supervisor orders a scrub each time.
  EXPECT_EQ(res.scrubs, cfg.slices);
  EXPECT_GT(res.scrub_cycles, 0u);
  EXPECT_EQ(res.replans, 0u);

  // The unsupervised baseline reads the same corrupted data silently.
  LoopConfig base = cfg;
  base.supervise = false;
  const LoopResult silent = run_supervised_triad(arena, planned, kN, base);
  EXPECT_EQ(silent.scrubs, 0u);
  EXPECT_EQ(silent.scrub_cycles, 0u);
}

TEST(SupervisedJacobi, FlipScheduleTriggersScrubs) {
  trace::VirtualArena arena;
  LoopConfig cfg = loop_config(true, 3);
  cfg.sim.fault_schedule = sim::FaultSchedule::parse("mc2:flip=1").value();
  const LoopResult res = run_supervised_jacobi(
      arena, 256, seg::plan_row_layout(arch::AddressMap{}).spec(), cfg);
  EXPECT_EQ(res.scrubs, cfg.slices);
  EXPECT_GT(res.scrub_cycles, 0u);
  EXPECT_EQ(res.replans, 0u);
}

}  // namespace
}  // namespace mcopt::runtime
