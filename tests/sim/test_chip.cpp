#include "sim/chip.h"

#include <gtest/gtest.h>

#include "trace/stream_program.h"
#include "trace/virtual_arena.h"

namespace mcopt::sim {
namespace {

using trace::LockstepStreamProgram;
using trace::StreamDesc;

Workload single_read_stream(unsigned threads, std::size_t n_per_thread,
                            arch::Addr spacing, arch::Addr base = arch::Addr{1} << 32) {
  Workload wl;
  for (unsigned t = 0; t < threads; ++t) {
    std::vector<StreamDesc> s{{base + t * spacing, false, 0}};
    wl.push_back(std::make_unique<LockstepStreamProgram>(
        s, sizeof(double), std::vector<sched::IterRange>{{0, n_per_thread}}, 1));
  }
  return wl;
}

SimConfig default_cfg() { return SimConfig{}; }

TEST(SimConfig, ValidatesLineSizeMatch) {
  SimConfig cfg;
  cfg.topology.l2.line_bytes = 128;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, ValidatesLockstepWindow) {
  SimConfig cfg;
  cfg.lockstep_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.model_lockstep = false;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Chip, RejectsBadPlacement) {
  SimConfig cfg;
  arch::Placement p;
  EXPECT_THROW(Chip(cfg, p), std::invalid_argument);
  p.hw_strand = {999};
  EXPECT_THROW(Chip(cfg, p), std::invalid_argument);
}

TEST(Chip, RejectsWorkloadSizeMismatch) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  Workload wl = single_read_stream(1, 16, 0);
  EXPECT_THROW(chip.run(wl), std::invalid_argument);
}

TEST(Chip, AccessConservation) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(4, cfg.topology));
  Workload wl = single_read_stream(4, 1000, 1 << 20);
  std::uint64_t expected = 0;
  for (const auto& p : wl) expected += p->total_accesses();
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.accesses, expected);
  EXPECT_EQ(res.loads, expected);
  EXPECT_EQ(res.stores, 0u);
}

TEST(Chip, CacheAccountingConsistent) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  Workload wl = single_read_stream(2, 4096, 1 << 22);
  const SimResult res = chip.run(wl);
  // Every access goes through L1.
  EXPECT_EQ(res.l1.accesses(), res.accesses);
  // Sequential 8 B reads: one L1 miss per 16 B line.
  EXPECT_EQ(res.l1.misses, res.accesses / 2);
  // One L2 miss per 64 B line, all cold.
  EXPECT_EQ(res.l2.misses, res.accesses * 8 / 64);
  // Read-only workload: no memory writes.
  EXPECT_EQ(res.mem_write_bytes, 0u);
  EXPECT_EQ(res.mem_read_bytes, res.l2.misses * 64);
}

TEST(Chip, DeterministicAcrossRuns) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(8, cfg.topology));
  Workload wl1 = single_read_stream(8, 2048, 1 << 20);
  Workload wl2 = single_read_stream(8, 2048, 1 << 20);
  const SimResult a = chip.run(wl1);
  const SimResult b = chip.run(wl2);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.mem_read_bytes, b.mem_read_bytes);
  ASSERT_EQ(a.thread_finish.size(), b.thread_finish.size());
  for (std::size_t t = 0; t < a.thread_finish.size(); ++t)
    EXPECT_EQ(a.thread_finish[t], b.thread_finish[t]);
}

TEST(Chip, TimeAdvancesAndBandwidthPositive) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(1, cfg.topology));
  Workload wl = single_read_stream(1, 512, 0);
  const SimResult res = chip.run(wl);
  EXPECT_GT(res.total_cycles, 0u);
  EXPECT_GT(res.seconds(), 0.0);
  EXPECT_GT(res.memory_bandwidth(), 0.0);
}

TEST(Chip, SingleThreadIsLatencyBound) {
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(1, cfg.topology));
  const std::size_t n = 8192;  // one 64 B line per 8 elements
  Workload wl = single_read_stream(1, n, 0);
  const SimResult res = chip.run(wl);
  // One thread, one outstanding miss: each 64 B line costs at least the DRAM
  // latency; the run can't beat n/8 * mem_latency.
  const arch::Cycles floor_cycles = n / 8 * cfg.calibration.mem_latency;
  EXPECT_GE(res.total_cycles, floor_cycles);
  // ...but overhead shouldn't blow it up by more than ~2x either.
  EXPECT_LE(res.total_cycles, 2 * floor_cycles);
}

TEST(Chip, MoreThreadsMoreBandwidth) {
  SimConfig cfg;
  double prev = 0.0;
  for (unsigned threads : {1u, 4u, 16u}) {
    Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
    Workload wl = single_read_stream(threads, 8192, arch::Addr{1} << 21);
    const SimResult res = chip.run(wl);
    EXPECT_GT(res.memory_bandwidth(), prev);
    prev = res.memory_bandwidth();
  }
}

TEST(Chip, BandwidthBelowNominalPeak) {
  // Sect. 1: nominal read bandwidth 42 GB/s; nothing may exceed it.
  SimConfig cfg;
  Chip chip(cfg, arch::equidistant_placement(64, cfg.topology));
  Workload wl = single_read_stream(64, 16384, arch::Addr{1} << 21);
  const SimResult res = chip.run(wl);
  EXPECT_LT(res.memory_bandwidth(), 42e9);
  EXPECT_GT(res.memory_bandwidth(), 2e9);
}

TEST(Chip, StoresProduceRfoAndWritebackTraffic) {
  SimConfig cfg;
  Workload wl;
  std::vector<StreamDesc> s{{arch::Addr{1} << 32, true, 0}};
  const std::size_t n = 1 << 20;  // 8 MiB: exceeds L2, forces evictions
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      s, sizeof(double), std::vector<sched::IterRange>{{0, n}}, 1));
  Chip chip(cfg, arch::equidistant_placement(1, cfg.topology));
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.stores, n);
  const std::uint64_t lines = n * 8 / 64;
  // Write-allocate: every stored line is read once (RFO)...
  EXPECT_EQ(res.mem_read_bytes, lines * 64);
  // ...and most lines are written back before the run ends (the L2 retains
  // up to its capacity of dirty lines).
  const std::uint64_t retained = cfg.topology.l2.size_bytes / 64;
  EXPECT_GE(res.mem_write_bytes, (lines - retained) * 64);
  EXPECT_EQ(res.l2.writebacks * 64, res.mem_write_bytes);
}

TEST(Chip, FlopsAccountedAndFpuSerializes) {
  SimConfig cfg;
  // Two threads on the SAME core hammering the FPU.
  arch::Placement p;
  p.hw_strand = {0, 1};
  const std::size_t n = 1024;
  auto make_wl = [&] {
    Workload wl;
    for (unsigned t = 0; t < 2; ++t) {
      std::vector<StreamDesc> s{
          {(arch::Addr{1} << 32) + t * (arch::Addr{1} << 24), false, 100}};
      wl.push_back(std::make_unique<LockstepStreamProgram>(
          s, sizeof(double), std::vector<sched::IterRange>{{0, n}}, 1));
    }
    return wl;
  };
  Workload wl = make_wl();
  Chip chip(cfg, p);
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.flops, 2ull * n * 100);
  // Shared FPU at 1 flop/cycle: the run takes at least total-flops cycles.
  EXPECT_GE(res.total_cycles, res.flops);

  // The same threads on different cores run roughly twice as fast.
  arch::Placement spread;
  spread.hw_strand = {0, 8};
  Workload wl2 = make_wl();
  Chip chip2(cfg, spread);
  const SimResult res2 = chip2.run(wl2);
  EXPECT_LT(res2.total_cycles, res.total_cycles * 3 / 4);
}

TEST(Chip, LockstepBoundsThreadDrift) {
  SimConfig cfg;
  cfg.lockstep_window = 4;
  // Thread 0 reads cached-friendly addresses, thread 1 a huge stride: left
  // free, thread 0 would finish far ahead. Lockstep forces both to finish
  // within a window of each other.
  Workload wl;
  std::vector<StreamDesc> fast{{arch::Addr{1} << 32, false, 0}};
  std::vector<StreamDesc> slow{{(arch::Addr{1} << 33) + 64, false, 0}};
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      fast, std::size_t{8}, std::vector<sched::IterRange>{{0, 512}}, 1));
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      slow, std::size_t{8192},  // one line per element: all misses
      std::vector<sched::IterRange>{{0, 512}}, 1));
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  const SimResult res = chip.run(wl);
  // The fast thread cannot finish much earlier than the slow one.
  const double ratio = static_cast<double>(res.thread_finish[0]) /
                       static_cast<double>(res.thread_finish[1]);
  EXPECT_GT(ratio, 0.9);
}

TEST(Chip, LockstepOffAllowsDrift) {
  SimConfig cfg;
  cfg.model_lockstep = false;
  Workload wl;
  std::vector<StreamDesc> fast{{arch::Addr{1} << 32, false, 0}};
  std::vector<StreamDesc> slow{{(arch::Addr{1} << 33) + 64, false, 0}};
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      fast, std::size_t{8}, std::vector<sched::IterRange>{{0, 512}}, 1));
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      slow, std::size_t{8192}, std::vector<sched::IterRange>{{0, 512}}, 1));
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  const SimResult res = chip.run(wl);
  const double ratio = static_cast<double>(res.thread_finish[0]) /
                       static_cast<double>(res.thread_finish[1]);
  EXPECT_LT(ratio, 0.5);
}

TEST(Chip, EmptyProgramsFinishAtTimeZero) {
  SimConfig cfg;
  Workload wl;
  for (int t = 0; t < 2; ++t) {
    wl.push_back(std::make_unique<LockstepStreamProgram>(
        std::vector<StreamDesc>{{0, false, 0}}, std::size_t{8},
        std::vector<sched::IterRange>{}, 1));
  }
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.total_cycles, 0u);
  EXPECT_EQ(res.accesses, 0u);
}

TEST(Chip, MixedEmptyAndBusyThreadsNoDeadlock) {
  SimConfig cfg;
  cfg.lockstep_window = 1;
  Workload wl;
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      std::vector<StreamDesc>{{arch::Addr{1} << 32, false, 0}}, std::size_t{8},
      std::vector<sched::IterRange>{{0, 256}}, 1));
  wl.push_back(std::make_unique<LockstepStreamProgram>(
      std::vector<StreamDesc>{{0, false, 0}}, std::size_t{8},
      std::vector<sched::IterRange>{}, 1));
  Chip chip(cfg, arch::equidistant_placement(2, cfg.topology));
  const SimResult res = chip.run(wl);
  EXPECT_EQ(res.accesses, 256u);
}

}  // namespace
}  // namespace mcopt::sim
