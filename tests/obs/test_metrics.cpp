#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mcopt::obs {
namespace {

/// The registry is process-global; each test works with its own instrument
/// names and zeroes values afterwards so other suites in this binary see a
/// clean slate.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { MetricsRegistry::instance().reset_values(); }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter& c = MetricsRegistry::instance().counter("t_counter", "help");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(&MetricsRegistry::instance().counter("t_counter"), &c);
  MetricsRegistry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeHoldsLastValue) {
  Gauge& g = MetricsRegistry::instance().gauge("t_gauge");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(MetricsTest, HistogramCountsSumAndBuckets) {
  Histogram& h =
      MetricsRegistry::instance().histogram("t_hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket le=1
  h.observe(5.0);    // bucket le=10
  h.observe(50.0);   // bucket le=100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST_F(MetricsTest, QuantileEstimateStaysInsideContainingBucket) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "t_hist_q", {1.0, 2.0, 4.0, 8.0, 16.0});
  // 100 samples spread uniformly in (2, 4]: every quantile must land there.
  for (int i = 0; i < 100; ++i)
    h.observe(2.0 + 2.0 * (static_cast<double>(i) + 0.5) / 100.0);
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, 2.0) << "q=" << q;
    EXPECT_LE(est, 4.0) << "q=" << q;
  }
  // Interpolation is monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST_F(MetricsTest, QuantileEdgeCases) {
  Histogram& h =
      MetricsRegistry::instance().histogram("t_hist_edge", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(100.0);                        // overflow bucket only
  // Overflow clamps to the largest finite bound, not infinity.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
  // q is clamped to [0, 1].
  EXPECT_NO_THROW((void)h.quantile(-1.0));
  EXPECT_NO_THROW((void)h.quantile(2.0));
}

TEST_F(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry::instance().counter("t_expo_jobs", "jobs seen").inc(3);
  MetricsRegistry::instance().gauge("t_expo_depth").set(1.5);
  Histogram& h =
      MetricsRegistry::instance().histogram("t_expo_lat", {1.0, 10.0}, "lat");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = MetricsRegistry::instance().prometheus_text();
  EXPECT_NE(text.find("# HELP t_expo_jobs jobs seen"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_jobs counter"), std::string::npos);
  EXPECT_NE(text.find("t_expo_jobs 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_lat histogram"), std::string::npos);
  // le-buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("t_expo_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_expo_lat_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_expo_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_expo_lat_count 3"), std::string::npos);
  EXPECT_NE(text.find("t_expo_lat_sum"), std::string::npos);
}

TEST_F(MetricsTest, JsonSnapshotHasAllThreeSections) {
  MetricsRegistry::instance().counter("t_json_c").inc(7);
  MetricsRegistry::instance().gauge("t_json_g").set(0.5);
  MetricsRegistry::instance().histogram("t_json_h", {1.0}).observe(0.25);

  const std::string j = MetricsRegistry::instance().json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"t_json_c\":7"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentUpdatesConserveCounts) {
  Counter& c = MetricsRegistry::instance().counter("t_mt_counter");
  Histogram& h = MetricsRegistry::instance().histogram("t_mt_hist", {0.5});
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPer = 10000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t)
    workers.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
  EXPECT_EQ(h.count(), kThreads * kPer);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPer));
}

}  // namespace
}  // namespace mcopt::obs
