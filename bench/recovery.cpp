// Fail-back bench: outage-and-return and flapping-socket recovery against
// the supervised node loop (DESIGN.md §4k).
//
// Scenario 1 (outage-and-return): a socket's memory dies mid-run and comes
// back. Four contenders under the identical schedule:
//
//   recovery-on   the full prober/readmit/rebalance loop;
//   plateau       recovery disabled — the pre-prober supervisor whose belief
//                 carries forward for good (survivor model forever);
//   unsupervised  no supervision at all (remap serves the dead domain);
//   full model    analytic node bandwidth of the restored placement on a
//                 healthy node — the ceiling the recovered tail must reach.
//
// Scenario 2 (flap sweep): sock1:flap=<period> over a sweep of periods; the
// breaker's geometric escalation must keep committed replans inside the
// schedule-event + readmission budget at every period.
//
// --json writes the whole snapshot to BENCH_recovery.json; --csv mirrors the
// flap table. Exit contract (CI): the recovered tail reaches >= 0.95x the
// full-healthy model, beats the plateau tail, and no flap period thrashes.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "numa_common.h"
#include "runtime/numa_loop.h"
#include "sim/analytic.h"
#include "sim/fault_schedule.h"

namespace {

using namespace mcopt;

/// Analytic node bandwidth of a shard placement, pricing exactly as the
/// loop's break-even gate does (proportional strand share per shard).
double placement_model_gbs(const std::vector<runtime::NodeJob>& jobs,
                           unsigned threads, std::size_t n,
                           const sim::NodeConfig& cfg,
                           const sim::FaultSpec& faults) {
  const arch::AddressMap map(cfg.sim.interleave);
  std::vector<std::vector<sim::AnalyticStream>> streams(cfg.node.num_sockets);
  std::vector<unsigned> strands(cfg.node.num_sockets, 0);
  for (const runtime::NodeJob& job : jobs) {
    const std::vector<sim::AnalyticStream> logical = {{job.bases[0], true},
                                                      {job.bases[1], false},
                                                      {job.bases[2], false},
                                                      {job.bases[3], false}};
    const auto physical = sim::expand_rfo(logical);
    auto& dst = streams[job.compute_socket];
    dst.insert(dst.end(), physical.begin(), physical.end());
    const double frac = static_cast<double>(job.count) / static_cast<double>(n);
    strands[job.compute_socket] += std::max<unsigned>(
        1, static_cast<unsigned>(std::lround(threads * frac)));
  }
  return sim::estimate_node_bandwidth(streams, strands, cfg.sim.calibration,
                                      map, cfg.node,
                                      cfg.sim.topology.clock_ghz, faults)
             .bandwidth /
         1e9;
}

struct OutageOutcome {
  std::string schedule;
  double recovery_gbs = 0.0;
  double plateau_gbs = 0.0;
  double unsupervised_gbs = 0.0;
  double tail_gbs = 0.0;
  double plateau_tail_gbs = 0.0;
  double full_model_gbs = 0.0;
  double convergence = 0.0;  ///< tail / full model
  unsigned probes = 0;
  unsigned probe_failures = 0;
  unsigned recoveries = 0;
  unsigned readmissions = 0;
  unsigned replans = 0;
  unsigned belief_stale_windows = 0;
  unsigned crc_ranges_verified = 0;
  double probe_cycle_share = 0.0;
  double migration_cycle_share = 0.0;
};

struct FlapRow {
  std::uint64_t period = 0;
  unsigned events = 0;
  unsigned replans = 0;
  unsigned probes = 0;
  unsigned recoveries = 0;
  unsigned readmissions = 0;
  unsigned budget = 0;
  double supervised_gbs = 0.0;
  bool bounded = true;
};

OutageOutcome run_outage(const runtime::NodeLoopConfig& base, std::size_t n,
                         const std::string& schedule_text,
                         arch::Cycles horizon, bench::ObsGuard& obs) {
  OutageOutcome out;
  out.schedule = schedule_text;

  auto parsed = sim::FaultSchedule::parse(schedule_text);
  if (!parsed) throw std::invalid_argument(parsed.error().message);
  // Check before resolving: resolved() clamps an unbounded flap to the
  // horizon, which would silently turn "flap forever" into "flap to the end
  // of the run" instead of surfacing the grammar rejection.
  const auto raw_status =
      parsed.value().check(base.node.sim.interleave, base.node.node.num_sockets);
  if (!raw_status.ok()) throw std::invalid_argument(raw_status.error().message);
  const sim::FaultSchedule resolved = parsed.value().resolved(horizon);
  const auto status =
      resolved.check(base.node.sim.interleave, base.node.node.num_sockets);
  if (!status.ok()) throw std::invalid_argument(status.error().message);

  runtime::NodeLoopConfig cfg = base;
  cfg.node.sim.fault_schedule = resolved;
  cfg.supervise = true;
  bench::sim_runs_counter().inc();
  const auto sup = runtime::run_supervised_node_triad(n, cfg);
  for (unsigned s = 0; s < sup.socket_timelines.size(); ++s)
    if (!sup.socket_timelines[s].empty())
      obs.add_timeline("recovery.sock" + std::to_string(s),
                       sup.socket_timelines[s]);

  runtime::NodeLoopConfig plateau_cfg = cfg;
  plateau_cfg.detector.recovery.enabled = false;
  bench::sim_runs_counter().inc();
  const auto plateau = runtime::run_supervised_node_triad(n, plateau_cfg);

  runtime::NodeLoopConfig unsup_cfg = cfg;
  unsup_cfg.supervise = false;
  bench::sim_runs_counter().inc();
  const auto unsup = runtime::run_supervised_node_triad(n, unsup_cfg);

  const double ghz = cfg.node.sim.topology.clock_ghz;
  out.recovery_gbs = bench::checked_rate(sup.bandwidth, "recovery") / 1e9;
  out.plateau_gbs = bench::checked_rate(plateau.bandwidth, "plateau") / 1e9;
  out.unsupervised_gbs =
      bench::checked_rate(unsup.bandwidth, "unsupervised") / 1e9;
  out.probes = sup.probes;
  out.probe_failures = sup.probe_failures;
  out.recoveries = sup.recoveries;
  out.readmissions = sup.readmissions;
  out.replans = sup.replans;
  out.belief_stale_windows = sup.belief_stale_windows;
  out.crc_ranges_verified = sup.crc_ranges_verified;
  if (sup.total_cycles > 0) {
    out.probe_cycle_share = static_cast<double>(sup.probe_cycles) /
                            static_cast<double>(sup.total_cycles);
    out.migration_cycle_share = static_cast<double>(sup.migration_cycles) /
                                static_cast<double>(sup.total_cycles);
  }
  if (!sup.replan_log.empty())
    out.tail_gbs = sup.tail_bandwidth(sup.replan_log.back().at, ghz) / 1e9;
  if (!plateau.replan_log.empty())
    out.plateau_tail_gbs =
        plateau.tail_bandwidth(plateau.replan_log.back().at, ghz) / 1e9;
  out.full_model_gbs = placement_model_gbs(sup.final_jobs, cfg.threads, n,
                                           cfg.node, sim::FaultSpec{});
  if (out.full_model_gbs > 0.0)
    out.convergence = out.tail_gbs / out.full_model_gbs;
  return out;
}

std::vector<FlapRow> run_flap_sweep(const runtime::NodeLoopConfig& base,
                                    std::size_t n, arch::Cycles horizon,
                                    const std::vector<unsigned>& dividers) {
  std::vector<FlapRow> rows;
  for (const unsigned d : dividers) {
    FlapRow row;
    row.period = horizon / d;
    const std::string spec =
        "sock1:flap=" + std::to_string(row.period) + "@10%..70%";
    const auto resolved =
        sim::FaultSchedule::parse(spec).value().resolved(horizon);
    const auto status =
        resolved.check(base.node.sim.interleave, base.node.node.num_sockets);
    if (!status.ok()) throw std::invalid_argument(status.error().message);
    row.events = static_cast<unsigned>(resolved.event_count());

    runtime::NodeLoopConfig cfg = base;
    cfg.node.sim.fault_schedule = resolved;
    cfg.supervise = true;
    bench::sim_runs_counter().inc();
    const auto sup = runtime::run_supervised_node_triad(n, cfg);
    row.replans = sup.replans;
    row.probes = sup.probes;
    row.recoveries = sup.recoveries;
    row.readmissions = sup.readmissions;
    row.budget = row.events + sup.readmissions + 1;
    row.bounded = sup.replans <= row.budget;
    row.supervised_gbs =
        bench::checked_rate(sup.bandwidth, "flap supervised") / 1e9;
    rows.push_back(row);
  }
  return rows;
}

void write_json(const std::string& path, unsigned sockets, std::size_t n,
                unsigned threads, unsigned slices, double healthy_gbs,
                const OutageOutcome& outage, const std::vector<FlapRow>& flap) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("recovery: cannot write " + path);
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"recovery\",\n"
               "  \"sockets\": %u,\n"
               "  \"n\": %zu,\n"
               "  \"threads_per_socket\": %u,\n"
               "  \"slices\": %u,\n"
               "  \"healthy_gbs\": %.4f,\n"
               "  \"outage_and_return\": {\n"
               "    \"schedule\": \"%s\",\n"
               "    \"recovery_gbs\": %.4f,\n"
               "    \"plateau_gbs\": %.4f,\n"
               "    \"unsupervised_gbs\": %.4f,\n"
               "    \"tail_gbs\": %.4f,\n"
               "    \"plateau_tail_gbs\": %.4f,\n"
               "    \"full_model_gbs\": %.4f,\n"
               "    \"convergence\": %.4f,\n"
               "    \"probes\": %u,\n"
               "    \"probe_failures\": %u,\n"
               "    \"recoveries\": %u,\n"
               "    \"readmissions\": %u,\n"
               "    \"replans\": %u,\n"
               "    \"belief_stale_windows\": %u,\n"
               "    \"crc_ranges_verified\": %u,\n"
               "    \"probe_cycle_share\": %.6f,\n"
               "    \"migration_cycle_share\": %.6f\n"
               "  },\n"
               "  \"flap_sweep\": [\n",
               sockets, n, threads, slices, healthy_gbs,
               outage.schedule.c_str(), outage.recovery_gbs,
               outage.plateau_gbs, outage.unsupervised_gbs, outage.tail_gbs,
               outage.plateau_tail_gbs, outage.full_model_gbs,
               outage.convergence, outage.probes, outage.probe_failures,
               outage.recoveries, outage.readmissions, outage.replans,
               outage.belief_stale_windows, outage.crc_ranges_verified,
               outage.probe_cycle_share, outage.migration_cycle_share);
  for (std::size_t i = 0; i < flap.size(); ++i)
    std::fprintf(f,
                 "    {\"period\": %" PRIu64
                 ", \"events\": %u, \"replans\": %u, \"probes\": %u, "
                 "\"recoveries\": %u, \"readmissions\": %u, \"budget\": %u, "
                 "\"supervised_gbs\": %.4f, \"bounded\": %s}%s\n",
                 flap[i].period, flap[i].events, flap[i].replans,
                 flap[i].probes, flap[i].recoveries, flap[i].readmissions,
                 flap[i].budget, flap[i].supervised_gbs,
                 flap[i].bounded ? "true" : "false",
                 i + 1 < flap.size() ? "," : "");
  std::fprintf(f,
               "  ],\n"
               "  \"metrics\": %s\n"
               "}\n",
               obs::MetricsRegistry::instance().json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Fail-back bench: outage-and-return recovery vs the survivor-model "
      "plateau, plus a flapping-socket replan-budget sweep");
  cli.option_int("sockets", 2, "number of sockets (memory domains)")
      .option_int("n", 65536, "triad elements per socket's job")
      .option_int("threads", 31,
                  "strands per socket (31 saturates without period-aligning)")
      .option_int("slices", 40, "supervision slices")
      .option_str("schedule", "sock1:off@20%..55%",
                  "outage-and-return schedule (must clear mid-run)")
      .option_str("json", "", "write the snapshot here (BENCH_recovery.json)")
      .option_str("csv", "", "mirror the flap table to this CSV file");
  bench::add_recovery_options(cli);
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  const auto sockets = static_cast<unsigned>(cli.get_int("sockets"));
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  runtime::NodeLoopConfig base;
  base.node.node.num_sockets = sockets;
  if (const auto st = bench::apply_recovery_options(cli, base.detector.recovery);
      !st.ok()) {
    std::fprintf(stderr, "recovery: %s\n", st.error().message.c_str());
    return 2;
  }
  base.node.validate();
  obs.apply(base.node.sim);
  base.threads = std::min(
      static_cast<unsigned>(cli.get_int("threads")),
      base.node.sim.topology.max_threads() / sockets);
  base.slices = static_cast<unsigned>(cli.get_int("slices"));
  bench::warn_if_convoy_resonant("recovery", n, base.threads,
                                 arch::AddressMap(base.node.sim.interleave));

  // Healthy horizon resolves the percent stamps and anchors the ceiling.
  runtime::NodeLoopConfig probe = base;
  probe.supervise = false;
  probe.node.sim.mc_sample_cadence = 0;
  bench::sim_runs_counter().inc();
  const auto healthy = runtime::run_supervised_node_triad(n, probe);
  const double healthy_gbs =
      bench::checked_rate(healthy.bandwidth, "healthy") / 1e9;

  std::printf("# fail-back bench: %u sockets, triad n=%zu, %u strands/job, "
              "%u slices, healthy %.3f GB/s (horizon %" PRIu64 ")\n\n",
              sockets, n, base.threads, base.slices, healthy_gbs,
              static_cast<std::uint64_t>(healthy.total_cycles));

  const OutageOutcome outage = run_outage(base, n, cli.get_str("schedule"),
                                          healthy.total_cycles, obs);
  std::printf(
      "# outage and return (%s)\n"
      "recovery-on   %.3f GB/s (replans=%u probes=%u failures=%u "
      "recoveries=%u readmissions=%u stale=%u crc=%u)\n"
      "plateau       %.3f GB/s (recovery disabled; survivor model forever)\n"
      "unsupervised  %.3f GB/s\n"
      "recovered tail %.3f GB/s vs full-healthy model %.3f GB/s "
      "(convergence %.3f); plateau tail %.3f GB/s\n"
      "probe cycle share %.4f%%, migration cycle share %.4f%%\n\n",
      outage.schedule.c_str(), outage.recovery_gbs, outage.replans,
      outage.probes, outage.probe_failures, outage.recoveries,
      outage.readmissions, outage.belief_stale_windows,
      outage.crc_ranges_verified, outage.plateau_gbs, outage.unsupervised_gbs,
      outage.tail_gbs, outage.full_model_gbs, outage.convergence,
      outage.plateau_tail_gbs, 100.0 * outage.probe_cycle_share,
      100.0 * outage.migration_cycle_share);

  const std::vector<FlapRow> flap =
      run_flap_sweep(base, n, healthy.total_cycles, {3, 4, 6});
  std::printf("# flap sweep (sock1:flap=<period>@10%%..70%%)\n");
  std::vector<std::vector<std::string>> cells;
  for (const FlapRow& r : flap) {
    std::printf("period %-10" PRIu64
                " events=%u replans=%u (budget %u) probes=%u recoveries=%u "
                "readmissions=%u %.3f GB/s -> %s\n",
                r.period, r.events, r.replans, r.budget, r.probes,
                r.recoveries, r.readmissions, r.supervised_gbs,
                r.bounded ? "bounded" : "THRASH");
    cells.push_back({std::to_string(r.period), std::to_string(r.events),
                     std::to_string(r.replans), std::to_string(r.budget),
                     std::to_string(r.probes), std::to_string(r.recoveries),
                     std::to_string(r.readmissions),
                     std::to_string(r.supervised_gbs),
                     r.bounded ? "true" : "false"});
  }
  bench::emit({"period", "events", "replans", "budget", "probes", "recoveries",
               "readmissions", "supervised_gbs", "bounded"},
              cells, cli.get_str("csv"));

  if (!cli.get_str("json").empty())
    write_json(cli.get_str("json"), sockets, n, base.threads, base.slices,
               healthy_gbs, outage, flap);

  // Exit contract for CI: the probe channel must have confirmed the return,
  // the recovered tail must reach the full-healthy model and beat the
  // plateau, and no flap period may thrash.
  bool ok = true;
  if (outage.recoveries == 0 || outage.readmissions == 0) {
    std::printf("FAIL: outage cleared but no confirmed recovery/readmission\n");
    ok = false;
  }
  if (outage.convergence < 0.95) {
    std::printf("FAIL: recovered tail convergence %.3f < 0.95\n",
                outage.convergence);
    ok = false;
  }
  if (outage.tail_gbs <= outage.plateau_tail_gbs) {
    std::printf("FAIL: recovered tail %.3f GB/s does not beat plateau tail "
                "%.3f GB/s\n",
                outage.tail_gbs, outage.plateau_tail_gbs);
    ok = false;
  }
  for (const FlapRow& r : flap)
    if (!r.bounded) {
      std::printf("FAIL: flap period %" PRIu64 " thrashed (%u replans > %u)\n",
                  r.period, r.replans, r.budget);
      ok = false;
    }
  return ok ? 0 : 1;
}
