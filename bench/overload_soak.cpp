// Overload soak: seeded open-loop load against the executor's admission
// control, sweeping offered load from well below to 4x the analytic
// capacity of the generated job mix, healthy and under fault schedules.
//
// Every sweep point asserts the overload invariants (see overload_common.h):
// the shed-lag bound on accepted jobs, byte-exact conservation across typed
// shed reasons, goodput monotone-capped at the mix's analytic roofline, and
// nothing lost silently across drain-on-shutdown. Failures print the seed
// and are replayable with --seed N.
//
// --reference runs the canonical sweep and writes BENCH_overload.json
// (goodput, shed breakdown and sojourn percentiles per offered ratio); the
// exit code enforces the acceptance gate: goodput >= 0.9x of the smaller of
// offered load and capacity at every healthy point, and a <1% deadline-miss
// rate among accepted jobs even at 2x overload.
//
// --schedule injects a ground-truth fault timeline (percent stamps resolve
// against the generated mix's horizon): goodput degrades, the invariants
// must hold anyway. EXPERIMENTS.md tabulates healthy vs degraded.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "overload_common.h"

namespace {

using namespace mcopt;

struct SweepRow {
  double ratio = 0.0;
  bench::OverloadResult res;
  std::vector<std::string> failures;
};

SweepRow run_point(double ratio, const bench::OverloadParams& base,
                   const std::string& schedule_text) {
  SweepRow row;
  row.ratio = ratio;
  bench::OverloadParams params = base;
  params.offered_ratio = ratio;
  const bool healthy = schedule_text.empty();
  if (!healthy) {
    const sim::SimConfig sim_cfg{};
    params.truth = bench::parse_schedule_knob(schedule_text, sim_cfg,
                                              bench::overload_horizon(params));
  }
  row.res = bench::run_overload(params);
  row.failures = bench::check_overload_invariants(params, row.res, healthy);
  return row;
}

std::string shed_breakdown(const runtime::exec::ExecutorStats& stats) {
  using runtime::exec::ShedReason;
  std::string out;
  for (unsigned r = 1; r < stats.shed.size(); ++r) {
    if (stats.shed[r] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(to_string(static_cast<ShedReason>(r))) + "=" +
           std::to_string(stats.shed[r]);
  }
  return out.empty() ? "-" : out;
}

int run_sweep(const std::vector<double>& ratios,
              const bench::OverloadParams& base,
              const std::string& schedule_text, const std::string& csv_path,
              const std::string& json_path, bool reference,
              const std::string& fail_log_path) {
  std::vector<SweepRow> rows;
  for (const double ratio : ratios)
    rows.push_back(run_point(ratio, base, schedule_text));

  std::vector<std::vector<std::string>> table_rows;
  char buf[64];
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    auto cell = [&](const char* fmt, auto value) {
      std::snprintf(buf, sizeof buf, fmt, value);
      cells.emplace_back(buf);
    };
    cell("%.2f", row.ratio);
    cell("%.3f", bench::checked_rate(row.res.offered_gbs, "offered GB/s"));
    cell("%.3f", bench::checked_rate(row.res.capacity_gbs, "capacity GB/s"));
    cell("%.3f", bench::checked_rate(row.res.goodput_gbs, "goodput GB/s"));
    cell("%" PRIu64, row.res.stats.completed);
    cells.push_back(shed_breakdown(row.res.stats));
    cell("%.2f", row.res.miss_rate * 100.0);
    cell("%.3f", row.res.p50_ms);
    cell("%.3f", row.res.p99_ms);
    cells.push_back(row.failures.empty() ? "PASS" : "FAIL");
    table_rows.push_back(std::move(cells));
  }
  bench::emit({"offered_x", "offered_gbs", "capacity_gbs", "goodput_gbs",
               "completed", "shed", "miss_pct", "p50_ms", "p99_ms", "check"},
              table_rows, csv_path);

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const auto& row : rows) {
    if (row.failures.empty()) continue;
    ++failures;
    std::printf("offered %.2fx seed %" PRIu64 " FAILED:\n", row.ratio,
                base.seed);
    if (fail_log == nullptr && !fail_log_path.empty())
      fail_log = std::fopen(fail_log_path.c_str(), "a");
    if (fail_log != nullptr)
      std::fprintf(fail_log, "seed %" PRIu64 " offered %.2fx\n", base.seed,
                   row.ratio);
    for (const auto& f : row.failures) {
      std::printf("  %s\n", f.c_str());
      if (fail_log != nullptr) std::fprintf(fail_log, "  %s\n", f.c_str());
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);
  if (failures != 0) bench::attach_failure_artifacts(fail_log_path);

  if (reference && !json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("overload_soak: cannot write " + json_path);
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"executor_overload_soak\",\n"
                 "  \"schedule\": \"%s\",\n"
                 "  \"jobs\": %u,\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"workers\": %u,\n"
                 "  \"points\": [\n",
                 schedule_text.empty() ? "healthy" : schedule_text.c_str(),
                 base.jobs, base.seed, base.num_workers);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    {\"offered_x\": %.2f, \"offered_gbs\": %.4f, "
          "\"capacity_gbs\": %.4f, \"goodput_gbs\": %.4f, "
          "\"completed\": %" PRIu64 ", \"miss_rate\": %.6f, "
          "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"shed\": \"%s\", \"pass\": %s}%s\n",
          row.ratio, row.res.offered_gbs, row.res.capacity_gbs,
          row.res.goodput_gbs, row.res.stats.completed, row.res.miss_rate,
          row.res.p50_ms, row.res.p95_ms, row.res.p99_ms,
          shed_breakdown(row.res.stats).c_str(),
          row.failures.empty() ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
                 obs::MetricsRegistry::instance().json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

std::vector<double> parse_ratios(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    out.push_back(std::stod(text.substr(pos, next - pos)));
    pos = next + 1;
  }
  if (out.empty()) throw std::invalid_argument("overload_soak: empty --ratios");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      "Overload soak: open-loop load vs the executor's bandwidth-priced "
      "admission control, 0.5x-4x analytic capacity (replay with --seed)");
  cli.option_str("ratios", "0.5,0.75,1.0,1.5,2.0,3.0,4.0",
                 "comma-separated offered-load multiples of capacity")
      .option_int("jobs", 240, "jobs per sweep point")
      .option_int("seed", 1, "load-generator seed")
      .option_int("workers", 4, "executor worker threads")
      .option_double("slack", 12.0, "mean deadline slack (x own service)")
      .option_double("pace", 0.0,
                     "real ns per virtual cycle for open-loop submission "
                     "(0 = default: 0.5, or 20.0 under TSan)")
      .option_str("schedule", "",
                  "ground-truth fault timeline (e.g. mc1:off@25%..75%); "
                  "degraded mode: goodput floor and miss-rate gate waived")
      .flag("lbm", "include LBM jobs in the mix (OpenMP body; not TSan-safe)")
      .flag("no-kernels", "skip job bodies: pure admission/accounting sweep")
      .flag("reference", "canonical sweep; write JSON and gate acceptance")
      .option_str("csv", "", "mirror the table to this CSV path")
      .option_str("json", "BENCH_overload.json", "reference-mode output path")
      .option_str("fail-log", "", "append failing seeds + invariants here");
  mcopt::bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  mcopt::bench::ObsGuard obs(cli);

  mcopt::bench::OverloadParams base;
  base.jobs = static_cast<unsigned>(cli.get_int("jobs"));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  base.num_workers = static_cast<unsigned>(cli.get_int("workers"));
  base.deadline_slack = cli.get_double("slack");
  base.include_lbm = cli.get_flag("lbm");
  base.run_kernels = !cli.get_flag("no-kernels");
#ifdef MCOPT_TSAN
  // libgomp is not TSan-instrumented; the LBM body would report races that
  // are not the executor's. Zero suppressions means zero OpenMP bodies.
  base.include_lbm = false;
  // Instrumentation slows real execution 10-20x; the open-loop replay clock
  // must slow with it or workers fall behind the arrival schedule and the
  // sweep measures the sanitizer, not the scheduler.
  base.pace_ns_per_cycle = 20.0;
#endif
  if (cli.get_double("pace") > 0.0)
    base.pace_ns_per_cycle = cli.get_double("pace");

  const auto ratios = parse_ratios(cli.get_str("ratios"));
  return run_sweep(ratios, base, cli.get_str("schedule"), cli.get_str("csv"),
                   cli.get_str("json"), cli.get_flag("reference"),
                   cli.get_str("fail-log"));
}
