#include "arch/address_map.h"

#include <gtest/gtest.h>

#include <vector>

namespace mcopt::arch {
namespace {

TEST(InterleaveSpec, T2Defaults) {
  EXPECT_EQ(kT2Interleave.line_size(), 64u);
  EXPECT_EQ(kT2Interleave.num_controllers(), 4u);
  EXPECT_EQ(kT2Interleave.banks_per_controller(), 2u);
  EXPECT_EQ(kT2Interleave.num_banks(), 8u);
  EXPECT_EQ(kT2Interleave.period_bytes(), 512u);
}

TEST(AddressMap, ControllerIsBits8To7) {
  const AddressMap map;
  // Bits 8:7 select the controller (Sect. 1 of the paper).
  EXPECT_EQ(map.controller_of(0x000), 0u);
  EXPECT_EQ(map.controller_of(0x080), 1u);
  EXPECT_EQ(map.controller_of(0x100), 2u);
  EXPECT_EQ(map.controller_of(0x180), 3u);
  EXPECT_EQ(map.controller_of(0x200), 0u);  // 512-byte period
}

TEST(AddressMap, BankIsBit6) {
  const AddressMap map;
  EXPECT_EQ(map.bank_within_controller(0x00), 0u);
  EXPECT_EQ(map.bank_within_controller(0x40), 1u);
  EXPECT_EQ(map.bank_within_controller(0x80), 0u);
}

TEST(AddressMap, ConsecutiveLinesWalkConsecutiveGlobalBanks) {
  const AddressMap map;
  for (Addr line = 0; line < 32; ++line)
    EXPECT_EQ(map.global_bank_of(line * 64), line % 8);
}

TEST(AddressMap, LineHelpers) {
  const AddressMap map;
  EXPECT_EQ(map.line_of(0), 0u);
  EXPECT_EQ(map.line_of(63), 0u);
  EXPECT_EQ(map.line_of(64), 1u);
  EXPECT_EQ(map.line_base(0x1234), 0x1200u);
}

TEST(AddressMap, OffsetsWithinLineShareController) {
  const AddressMap map;
  for (Addr base : {Addr{0}, Addr{1} << 20, Addr{123} * 512}) {
    for (Addr byte = 0; byte < 64; ++byte)
      EXPECT_EQ(map.controller_of(base + byte), map.controller_of(base));
  }
}

// Property: the controller pattern repeats with exactly period_bytes().
class PeriodicityTest : public ::testing::TestWithParam<Addr> {};

TEST_P(PeriodicityTest, FullPeriodIsInvariant) {
  const AddressMap map;
  const Addr a = GetParam();
  EXPECT_EQ(map.controller_of(a), map.controller_of(a + 512));
  EXPECT_EQ(map.controller_of(a), map.controller_of(a + 512 * 1000));
  EXPECT_EQ(map.global_bank_of(a), map.global_bank_of(a + 512));
}

INSTANTIATE_TEST_SUITE_P(AddressSweep, PeriodicityTest,
                         ::testing::Values(0, 64, 100, 127, 128, 255, 256, 384,
                                           511, 4096, 65536, (Addr{1} << 32) + 192));

TEST(AddressMap, ContiguousRegionHistogramIsUniform) {
  const AddressMap map;
  // Any whole number of 512-byte periods spreads lines evenly.
  const auto hist = map.controller_histogram(0x4000, 512 * 16);
  for (std::uint64_t bin : hist) EXPECT_EQ(bin, 512u * 16 / 64 / 4);
  EXPECT_DOUBLE_EQ(AddressMap::histogram_uniformity(hist), 1.0);
}

TEST(AddressMap, EmptyRegionHistogramIsZero) {
  const AddressMap map;
  const auto hist = map.controller_histogram(0, 0);
  for (std::uint64_t bin : hist) EXPECT_EQ(bin, 0u);
}

TEST(AddressMap, HistogramUniformityRejectsDegenerate) {
  EXPECT_THROW((void)AddressMap::histogram_uniformity({}), std::invalid_argument);
  const std::vector<std::uint64_t> zeros(4, 0);
  EXPECT_THROW((void)AddressMap::histogram_uniformity(zeros), std::invalid_argument);
}

TEST(LockstepBalance, CongruentBasesAreWorstCase) {
  const AddressMap map;
  // Three streams, all congruent mod 512: every step lands on one MC.
  const std::vector<Addr> bases = {0, 512 * 100, 512 * 999};
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 0.25);
}

TEST(LockstepBalance, PlannedOffsetsAreOptimal) {
  const AddressMap map;
  // The paper's optimal vector-triad offsets: 0/128/256/384 bytes.
  const std::vector<Addr> bases = {0, 128, 256, 384};
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 1.0);
}

TEST(LockstepBalance, TwoControllersIsHalf) {
  const AddressMap map;
  const std::vector<Addr> bases = {0, 256};  // bit 8 differs: MCs 0 and 2
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 0.5);
}

TEST(LockstepBalance, SingleStreamIsQuarter) {
  const AddressMap map;
  // One stream can only address one controller at a time.
  const std::vector<Addr> bases = {0};
  EXPECT_DOUBLE_EQ(map.lockstep_balance(bases, 8), 0.25);
}

TEST(LockstepBalance, RejectsDegenerateInput) {
  const AddressMap map;
  EXPECT_THROW((void)map.lockstep_balance({}, 8), std::invalid_argument);
  const std::vector<Addr> bases = {0};
  EXPECT_THROW((void)map.lockstep_balance(bases, 0), std::invalid_argument);
}

// Property: balance is invariant under global translation by the period.
class BalanceTranslationTest : public ::testing::TestWithParam<Addr> {};

TEST_P(BalanceTranslationTest, TranslationInvariant) {
  const AddressMap map;
  const Addr shift = GetParam();
  const std::vector<Addr> a = {0, 128, 4096, 8192 + 256};
  std::vector<Addr> b;
  for (Addr base : a) b.push_back(base + shift * 512);
  EXPECT_DOUBLE_EQ(map.lockstep_balance(a, 16), map.lockstep_balance(b, 16));
}

INSTANTIATE_TEST_SUITE_P(Shifts, BalanceTranslationTest,
                         ::testing::Values(1, 2, 7, 100, 12345));

TEST(AddressMap, CustomInterleave) {
  // Hypothetical chip: 2 controllers, 128-byte lines, 4 banks each.
  const InterleaveSpec spec{7, 2, 1};
  const AddressMap map(spec);
  EXPECT_EQ(spec.line_size(), 128u);
  EXPECT_EQ(spec.num_controllers(), 2u);
  EXPECT_EQ(spec.period_bytes(), 1024u);
  EXPECT_EQ(map.controller_of(0), 0u);
  EXPECT_EQ(map.controller_of(512), 1u);
  EXPECT_EQ(map.controller_of(1024), 0u);
}

}  // namespace
}  // namespace mcopt::arch
