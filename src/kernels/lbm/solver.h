#pragma once
// Native D3Q19 lattice-Boltzmann solver (BGK collision, push-style
// propagation, half-way bounce-back at solid cells, optional body force).
//
// This is the runnable counterpart of the Fig. 7 benchmark kernel: the same
// loop structure, toggle ("AB") grids, and data layouts (IJKv / IvJK,
// optional x padding) as the paper's code, plus enough physics to validate
// against analytic flows (Poiseuille channel) and conservation laws.

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/lbm/geometry.h"
#include "sched/schedule.h"

namespace mcopt::kernels::lbm {

class Solver {
 public:
  struct Params {
    Geometry geometry;
    double tau = 0.6;                    ///< BGK relaxation time (> 0.5)
    std::array<double, 3> force{};      ///< body force density (e.g. gravity)
    bool periodic_x = true;
    bool periodic_y = true;
    bool periodic_z = true;
    bool fused_zy = false;               ///< coalesce z and y parallel loops
    sched::Schedule schedule = sched::Schedule::static_block();
  };

  explicit Solver(Params params);

  // --- setup ---------------------------------------------------------------
  /// Marks interior cell (1-based interior coordinates) as solid.
  void set_solid(std::size_t x, std::size_t y, std::size_t z);
  /// Solid walls on the two z-extreme interior layers (channel along x/y).
  void make_channel_walls_z();
  /// Sets every fluid cell to equilibrium at density rho, velocity u.
  void initialize(double rho = 1.0, std::array<double, 3> u = {});

  // --- time stepping ----------------------------------------------------------
  /// One collide+propagate step; returns wall seconds spent in the loop.
  double step();

  // --- observables ---------------------------------------------------------
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] std::array<double, 3> total_momentum() const;
  [[nodiscard]] double density(std::size_t x, std::size_t y, std::size_t z) const;
  [[nodiscard]] std::array<double, 3> velocity(std::size_t x, std::size_t y,
                                               std::size_t z) const;

  [[nodiscard]] bool is_solid(std::size_t x, std::size_t y, std::size_t z) const;
  [[nodiscard]] std::uint64_t fluid_cells() const noexcept { return fluid_cells_; }
  [[nodiscard]] const Geometry& geometry() const noexcept { return p_.geometry; }
  [[nodiscard]] const Params& params() const noexcept { return p_; }
  [[nodiscard]] unsigned steps_taken() const noexcept { return steps_; }

  /// Raw distribution value (for layout-equivalence tests).
  [[nodiscard]] double f_at(std::size_t x, std::size_t y, std::size_t z,
                            std::size_t v) const;

  // --- state capture (checkpoint/restart, integrity rebuild) --------------
  /// Raw distribution storage, both toggle grids (for checkpointing).
  [[nodiscard]] const std::vector<double>& distributions() const noexcept {
    return f_;
  }
  /// Restores state captured from an identically configured solver: `f`
  /// must hold geometry().f_elems() values and `steps` the step count at
  /// capture (it fixes the toggle parity). Solid geometry is NOT part of
  /// the state — apply the same set_solid/make_channel_walls_z calls before
  /// restoring. Throws std::invalid_argument on a size mismatch.
  void restore(std::vector<double> f, unsigned steps);
  /// Integrity rebuild: recomputes interior z-slab `z` of the *current*
  /// field by re-streaming from the prior toggle grid (re-runs the last
  /// step's update for every cell that pushes into the slab; neighboring
  /// slabs are rewritten with values identical to what they hold). Requires
  /// at least one completed step. This restores a corrupted slab
  /// bit-exactly without recomputing the whole step.
  void restream_slab(std::size_t z);

 private:
  void update_cell(std::size_t x, std::size_t y, std::size_t z,
                   std::size_t read_toggle, std::size_t write_toggle);
  [[nodiscard]] std::size_t wrap(long coord, std::size_t n, bool periodic) const;

  Params p_;
  std::vector<double> f_;
  std::vector<std::uint8_t> solid_;
  std::uint64_t fluid_cells_ = 0;
  unsigned steps_ = 0;
};

}  // namespace mcopt::kernels::lbm
