#pragma once
// Whole-chip timing simulator of the UltraSPARC T2 memory subsystem.
//
// Execution model (Sect. 1 of the paper):
//  * 8 in-order cores x 8 hardware strands; strands are grouped in two
//    thread groups of four per core, each group issuing at most one
//    instruction per cycle;
//  * each core has two load/store pipes and a single FPU (one MUL or ADD
//    per cycle) shared by all eight strands;
//  * a strand supports a single outstanding cache miss: an L1-missing load
//    blocks the strand until the fill returns ("put in an inactive state
//    until the resources become available");
//  * stores are write-through past the L1 into a coalescing 8-entry store
//    buffer per strand; a full buffer blocks the strand;
//  * the shared L2 is banked; bit 6 selects the bank within the controller
//    pair and bits 8:7 select the memory controller (arch::AddressMap);
//  * the core-to-L2 crossbar is non-blocking and not modeled.
//
// The simulation is a conservative discrete-event loop: threads carry local
// clocks, the globally earliest thread processes its next access, and shared
// resources (thread-group issue slots, LS pipes, FPU, L2 banks, controllers)
// are "earliest start" reservations. All arithmetic is integer cycles, so
// runs are exactly reproducible.

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "arch/address_map.h"
#include "arch/calibration.h"
#include "arch/numa.h"
#include "arch/topology.h"
#include "obs/timeline.h"
#include "sim/cache.h"
#include "sim/fault_schedule.h"
#include "sim/faults.h"
#include "sim/memory_controller.h"
#include "sim/program.h"
#include "util/expected.h"

namespace mcopt::sim {

/// Complete simulator configuration.
struct SimConfig {
  arch::ChipTopology topology{};
  arch::Calibration calibration{};
  arch::InterleaveSpec interleave{};
  /// Model the per-core L1D (off = every access goes to L2); ablation knob.
  bool model_l1 = true;
  /// T2-style L2 index hashing (enabled on real hardware; ablation knob).
  bool l2_index_hash = true;
  /// Model FPU serialization per core; off = flops are free.
  bool model_fpu = true;
  /// Model thread-group issue and LS pipe occupancy.
  bool model_issue = true;
  /// Model the coalescing store buffer; off = stores never block and their
  /// L2/memory traffic is still accounted at issue time.
  bool model_store_buffer = true;
  /// Model phase-locked worksharing progression: threads of an OpenMP-style
  /// loop may not run more than `lockstep_window` marked iterations ahead of
  /// the slowest running thread. On the real T2 this alignment is what makes
  /// congruent stream bases hit "exactly one memory controller at a time"
  /// (Sect. 2.1); without it the dips of Figs. 2/4 wash out (see
  /// bench/ablation_simulator).
  bool model_lockstep = true;
  /// Maximum iteration lead over the slowest running thread. The default is
  /// calibrated so the Fig. 2 dip and odd-multiple-of-32 levels match the
  /// paper (3.7 / ~7.4 GB/s reported for 64-thread STREAM triad).
  std::uint64_t lockstep_window = 12;
  /// Injected hardware faults (offline/derated controllers, slow banks,
  /// straggler strands). Default: healthy chip. These are the *baseline*:
  /// present from cycle 0 for the whole run.
  FaultSpec faults{};
  /// Transient faults: a timeline of arrive/clear events layered on top of
  /// the baseline. The chip applies/retires them during the event loop at
  /// their transition cycles (in-flight requests drain at the old
  /// parameters), and SimResult::epochs reports a per-epoch breakdown.
  /// Percent-relative bounds must be resolved() before the chip sees them.
  FaultSchedule fault_schedule{};
  /// Seed for the deterministic per-read Bernoulli draws behind mc<i>:flip
  /// faults. Same seed + same workload → bit-identical corruption pattern,
  /// so flip runs replay exactly like every other fault.
  std::uint64_t flip_seed = 0;
  /// Watchdog: abort try_run() with a diagnostic once simulated time passes
  /// this many cycles (0 = unlimited). Guards harnesses against malformed
  /// workloads that would otherwise run unboundedly.
  arch::Cycles cycle_budget = 0;
  /// Sample per-controller busy counters every this many cycles into
  /// SimResult::mc_timeline (0 = off). The cadence trades time resolution
  /// against result size: one row per interval per run, with a 2^20-row cap
  /// (mc_timeline_truncated). Sampling rides the existing event-loop epoch
  /// check, so the per-access cost is one compare when enabled.
  arch::Cycles mc_sample_cadence = 0;

  /// Multi-socket view: this chip simulates socket `socket` of `node`, and
  /// addresses homed on other sockets are served over the modeled
  /// interconnect (per-target link port: earliest-start reservation of the
  /// path's per-line cycles, plus the path's extra fill latency). Disabled =
  /// the historical single-chip model; socket/link fault classes are only
  /// valid when enabled. sim::Node composes one enabled Chip per socket.
  struct NumaView {
    bool enabled = false;
    unsigned socket = 0;
    arch::NodeTopology node{};
  };
  NumaView numa{};

  /// Non-throwing validation; reports every violation at once.
  [[nodiscard]] util::Status check() const;
  /// Throwing wrapper around check() (historical API).
  void validate() const;
};

/// Aggregated results of one simulation run.
struct SimResult {
  arch::Cycles total_cycles = 0;
  std::uint64_t accesses = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t flops = 0;
  CacheStats l1;  ///< aggregated over cores
  CacheStats l2;
  std::vector<McStats> mc;  ///< one entry per memory controller
  std::uint64_t mem_read_bytes = 0;   ///< includes RFO reads + remote fills
  std::uint64_t mem_write_bytes = 0;  ///< L2 write-backs, remote included

  /// Cross-socket traffic served over one interconnect link (NUMA runs).
  struct LinkStats {
    std::uint64_t fills = 0;       ///< remote lines filled from the peer
    std::uint64_t writebacks = 0;  ///< dirty remote lines written back
    arch::Cycles busy_cycles = 0;  ///< port occupancy (per-line transfer)
    arch::Cycles last_completion = 0;

    [[nodiscard]] std::uint64_t line_transfers() const noexcept {
      return fills + writebacks;
    }
  };
  /// Entry t: traffic this socket moved to/from serving socket t (entry
  /// `self` unused). Empty unless the run had an enabled NumaView.
  std::vector<LinkStats> links;
  /// Bytes of this chip's traffic served by a remote socket (subset of
  /// mem_read_bytes / mem_write_bytes).
  std::uint64_t remote_read_bytes = 0;
  std::uint64_t remote_write_bytes = 0;
  std::vector<arch::Cycles> thread_finish;  ///< per software thread
  double clock_ghz = 0.0;
  /// Busy fraction of each controller over the run (0 for an offline one).
  std::vector<double> mc_utilization;
  /// True when the run executed under an injected fault (SimConfig::faults
  /// or a non-empty SimConfig::fault_schedule).
  bool degraded = false;

  /// Memory reads (RFO included) whose payload the serving controller
  /// corrupted under an mc<i>:flip fault. The sim carries no real data, so
  /// this is the ground truth a native integrity layer must account for:
  /// every one of these must end up detected, or the run is lying.
  std::uint64_t corrupted_reads = 0;
  /// Per-(serving-)controller breakdown of corrupted_reads.
  std::vector<std::uint64_t> mc_corrupted_reads;
  /// One recorded corruption event (bounded log for diagnosis/replay).
  struct Corruption {
    arch::Cycles cycle = 0;
    arch::Addr addr = 0;
    unsigned controller = 0;
  };
  static constexpr std::size_t kCorruptionLogCap = 256;
  /// First kCorruptionLogCap corruption events, in request order.
  std::vector<Corruption> corruption_log;

  /// One fault-schedule epoch of the run: [begin, end) between consecutive
  /// fault transitions (the last epoch ends at total_cycles). Traffic and
  /// busy cycles are attributed to the epoch in which a request was
  /// enqueued; a request spanning a boundary is not split.
  struct EpochStats {
    arch::Cycles begin = 0;
    arch::Cycles end = 0;
    /// FaultSpec::describe() of the merged active fault set.
    std::string faults;
    std::uint64_t mem_read_bytes = 0;   ///< remote fills included (NUMA)
    std::uint64_t mem_write_bytes = 0;  ///< remote write-backs included
    /// Remotely served subset of the byte totals above (NUMA runs).
    std::uint64_t remote_read_bytes = 0;
    std::uint64_t remote_write_bytes = 0;
    /// Busy fraction of each controller within the epoch.
    std::vector<double> mc_utilization;
    /// Busy fraction of each link port within the epoch (entry = peer
    /// socket; empty unless the run had an enabled NumaView).
    std::vector<double> link_utilization;
    /// Actual traffic (both directions) per second within the epoch.
    double bandwidth = 0.0;

    [[nodiscard]] arch::Cycles length() const noexcept { return end - begin; }
  };
  /// Per-epoch breakdown; empty unless the run had a fault schedule.
  std::vector<EpochStats> epochs;

  /// Controller-utilization timeline: one row per mc_sample_cadence cycles
  /// (empty when the cadence is 0). Busy cycles are attributed to the
  /// interval in which the request was enqueued (totals are conserved; a
  /// row's utilization can exceed 1.0 on a burst that drains later). The
  /// final row may be shorter than the cadence.
  obs::McTimeline mc_timeline;
  /// True when the 2^20-row cap was hit and the timeline tail was dropped.
  bool mc_timeline_truncated = false;

  [[nodiscard]] double seconds() const noexcept {
    return clock_ghz <= 0.0 ? 0.0
                            : arch::cycles_to_seconds(total_cycles, clock_ghz);
  }
  /// Actual memory traffic (both directions, RFO included) per second.
  [[nodiscard]] double memory_bandwidth() const noexcept {
    return seconds() == 0.0
               ? 0.0
               : static_cast<double>(mem_read_bytes + mem_write_bytes) / seconds();
  }
};

/// The simulator. Construct once per (config, placement); run() may be
/// called repeatedly — caches and clocks reset between runs.
class Chip {
 public:
  Chip(SimConfig config, arch::Placement placement);
  ~Chip();
  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;
  Chip(Chip&&) noexcept;
  Chip& operator=(Chip&&) noexcept;

  /// Number of software threads this chip instance runs.
  [[nodiscard]] unsigned num_threads() const noexcept {
    return static_cast<unsigned>(placement_.hw_strand.size());
  }

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

  /// Runs one workload to completion. workload.size() must equal
  /// num_threads(); programs are NOT reset first (callers may pre-advance
  /// them for warm-up). Throws std::runtime_error if the watchdog trips.
  SimResult run(Workload& workload);

  /// Like run(), but reports watchdog/guardrail aborts as a diagnostic
  /// instead of throwing. Usage errors (size mismatch) still throw.
  util::Expected<SimResult> try_run(Workload& workload);

 private:
  struct ThreadState;
  struct CoreState;

  enum class StepOutcome { kRan, kParked, kDone };

  /// Processes the next access of thread `t` (or parks/retires it).
  StepOutcome step(ThreadState& t);

  /// Load path below L1: L2 bank + controller; returns data-ready time.
  arch::Cycles miss_to_l2(arch::Cycles when, arch::Addr addr, bool is_store);

  /// Reserves the link port toward serving socket `target` for one line
  /// transfer starting no earlier than `when`; returns the transfer-complete
  /// time (fill latency NOT included — the caller adds it for fills).
  arch::Cycles link_transfer(arch::Cycles when, unsigned target,
                             bool is_writeback);

  /// Deterministic Bernoulli draw for a read served by `controller`; records
  /// the corruption when it fires.
  void maybe_flip(arch::Cycles when, arch::Addr addr, unsigned controller);

  /// Recomputes the minimum running iteration and releases parked threads
  /// that fall back inside the lockstep window.
  void advance_min_iteration(arch::Cycles now);

  /// Installs a fault set on the shared structures: controller remap, rate
  /// factors, bank slowdowns, per-thread straggle. Called at run start and
  /// at every fault-schedule transition.
  void apply_faults(const FaultSpec& active);

  /// Retires schedule epochs whose start the event clock has passed,
  /// snapshotting per-controller counters at each boundary.
  void advance_epochs(arch::Cycles now);

  /// Emits one timeline row per whole cadence interval the event clock has
  /// passed (active when cfg_.mc_sample_cadence != 0).
  void advance_samples(arch::Cycles now);

  SimConfig cfg_;
  arch::Placement placement_;
  arch::AddressMap map_;

  // Shared structures rebuilt per run():
  std::unique_ptr<Cache> l2_;
  std::vector<Cache> l1_;                  // per core
  std::vector<MemoryController> mcs_;      // per controller
  std::vector<unsigned> mc_remap_;         // fault remap (identity if healthy)
  // NUMA routing state, recomputed by apply_faults() (empty when disabled):
  // which socket serves each home domain and the per-serving-socket path
  // costs, plus one earliest-start link port per serving socket.
  std::vector<unsigned> home_serving_;
  std::vector<arch::Cycles> serve_latency_;     // per serving socket
  std::vector<arch::Cycles> serve_line_cycles_; // per serving socket
  std::vector<arch::Cycles> link_free_;         // per serving socket port
  std::vector<SimResult::LinkStats> link_stats_;
  std::vector<arch::Cycles> bank_extra_;   // per-bank fault slowdown
  std::vector<arch::Cycles> straggle_;     // per-thread fault lag
  std::vector<double> flip_rate_;          // per-controller corruption prob
  std::vector<arch::Cycles> bank_free_;    // per global L2 bank
  std::vector<CoreState> cores_;
  std::vector<ThreadState> threads_;
  std::uint64_t flops_total_ = 0;

  // Bit-flip bookkeeping, reset per run.
  std::uint64_t flip_draws_ = 0;
  std::uint64_t corrupted_total_ = 0;
  std::vector<std::uint64_t> mc_corrupted_;
  std::vector<SimResult::Corruption> corruption_log_;

  // Fault-schedule state: the run's epoch list (always at least one entry),
  // the index of the epoch currently in force, and per-controller counter
  // snapshots taken at each boundary already crossed.
  struct McSnapshot {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    arch::Cycles busy_cycles = 0;
  };
  std::vector<FaultSchedule::Epoch> sched_epochs_;
  std::size_t epoch_idx_ = 0;
  std::vector<std::vector<McSnapshot>> epoch_marks_;  // one row per boundary
  // Link-port counter snapshots at the same boundaries (NUMA runs only).
  std::vector<std::vector<SimResult::LinkStats>> epoch_link_marks_;

  // MC-utilization timeline state (active when cfg_.mc_sample_cadence != 0):
  // end of the next row, counters at the previous boundary, rows so far.
  static constexpr std::size_t kTimelineRowCap = std::size_t{1} << 20;
  arch::Cycles next_sample_ = 0;
  std::vector<McSnapshot> sample_prev_;
  obs::McTimeline timeline_;
  bool timeline_truncated_ = false;

  // Event loop state: (time, thread) min-heap of runnable threads and
  // (iteration, thread) min-heap of threads parked by the lockstep gate.
  using RunQueue =
      std::priority_queue<std::pair<arch::Cycles, unsigned>,
                          std::vector<std::pair<arch::Cycles, unsigned>>,
                          std::greater<>>;
  using ParkQueue =
      std::priority_queue<std::pair<std::uint64_t, unsigned>,
                          std::vector<std::pair<std::uint64_t, unsigned>>,
                          std::greater<>>;
  RunQueue runnable_;
  ParkQueue parked_;
  /// Lockstep bookkeeping: iteration values of running threads always lie in
  /// [min_iteration_, min_iteration_ + lockstep_window], so a ring of
  /// occupancy counters sized lockstep_window + 2 tracks the minimum in O(1)
  /// amortized per iteration.
  std::vector<unsigned> iter_ring_;
  std::uint64_t min_iteration_ = 0;
  unsigned alive_ = 0;
};

}  // namespace mcopt::sim
