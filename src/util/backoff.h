#pragma once
// Jittered exponential backoff for retry loops.
//
// The runtime supervisor uses this to keep a flapping fault source (a
// controller that oscillates between dead and alive) from triggering a
// replan storm: each successive retry waits multiplier× longer, capped,
// with a small deterministic jitter so co-scheduled supervisors do not
// synchronize. All state is integer-free-of-wall-clock: delays are in
// whatever unit the caller counts (the supervisor counts simulated cycles),
// and jitter comes from util::Xoshiro256, so sequences replay exactly.

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>

#include "util/prng.h"

namespace mcopt::util {

struct BackoffConfig {
  /// First delay, in caller units. Must be > 0.
  std::uint64_t initial = 1;
  /// Growth factor per retry. Must be >= 1.
  double multiplier = 2.0;
  /// Upper bound on the (pre-jitter) delay. Must be >= initial.
  std::uint64_t cap = 64;
  /// Symmetric jitter fraction in [0, 1): each delay is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1 + jitter].
  double jitter = 0.1;
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig cfg, std::uint64_t seed = 0)
      : cfg_(cfg), rng_(seed) {
    if (cfg_.initial == 0) throw std::invalid_argument("Backoff: initial == 0");
    if (cfg_.multiplier < 1.0)
      throw std::invalid_argument("Backoff: multiplier < 1");
    if (cfg_.cap < cfg_.initial)
      throw std::invalid_argument("Backoff: cap < initial");
    if (cfg_.jitter < 0.0 || cfg_.jitter >= 1.0)
      throw std::invalid_argument("Backoff: jitter outside [0, 1)");
    current_ = static_cast<double>(cfg_.initial);
  }

  /// Returns the next delay and escalates. The returned value is at least 1
  /// (jitter never rounds a delay away entirely).
  std::uint64_t next() {
    const double capped = std::min(current_, static_cast<double>(cfg_.cap));
    const double scale = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
    current_ = std::min(current_ * cfg_.multiplier,
                        static_cast<double>(cfg_.cap) * cfg_.multiplier);
    ++retries_;
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capped * scale));
  }

  /// Arms the backoff at `now` (caller units): draws the next delay and
  /// records `now + delay` as the next allowed attempt, queryable through
  /// ready_at()/ready_in(). Returns the delay. This is next() plus the
  /// bookkeeping every caller used to duplicate by hand.
  std::uint64_t arm(std::uint64_t now) {
    const std::uint64_t delay = next();
    ready_at_ = now + delay;
    return delay;
  }

  /// Time of the next allowed attempt (0 before the first arm()).
  [[nodiscard]] std::uint64_t ready_at() const noexcept { return ready_at_; }

  /// Caller units until the next allowed attempt: 0 when the attempt is
  /// allowed now (or the backoff was never armed). Lets callers sort or
  /// schedule circuit-broken resources without busy-polling next().
  [[nodiscard]] std::uint64_t ready_in(std::uint64_t now) const noexcept {
    return now >= ready_at_ ? 0 : ready_at_ - now;
  }

  /// Back to the initial delay (call after a sustained healthy stretch).
  /// Resets the escalation only — a deadline already armed via arm() stays
  /// in force until it passes (a quiet stretch forgives the growth rate, not
  /// the hold currently being served).
  void reset() noexcept {
    current_ = static_cast<double>(cfg_.initial);
    retries_ = 0;
  }

  /// Escalation count since construction or the last reset().
  [[nodiscard]] unsigned retries() const noexcept { return retries_; }

  [[nodiscard]] const BackoffConfig& config() const noexcept { return cfg_; }

  /// Complete mutable state, for durable snapshots. The config is not part
  /// of the snapshot — a restore target is constructed with the same config
  /// (it is code/CLI-derived, not learned), then continues the exact delay
  /// sequence the saved instance would have produced.
  struct Snapshot {
    double current = 1.0;
    unsigned retries = 0;
    std::uint64_t ready_at = 0;
    std::array<std::uint64_t, 4> rng{};
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    return Snapshot{current_, retries_, ready_at_, rng_.state()};
  }

  void restore(const Snapshot& s) noexcept {
    current_ = s.current;
    retries_ = s.retries;
    ready_at_ = s.ready_at;
    rng_.set_state(s.rng);
  }

 private:
  BackoffConfig cfg_;
  double current_ = 1.0;
  unsigned retries_ = 0;
  std::uint64_t ready_at_ = 0;
  Xoshiro256 rng_;
};

/// Three-state circuit breaker over a Backoff hold.
///
/// kClosed: requests flow; `trip_threshold` consecutive recorded failures
/// open the breaker (an armed Backoff hold on the caller's clock).
/// kOpen: every allow() is refused until the hold expires; the FIRST
/// allow() at or past ready() transitions to kHalfOpen and admits exactly
/// one trial request (the probe) instead of fully reopening the gate.
/// kHalfOpen: further allow() calls are refused while the probe is
/// outstanding. record_success() closes the breaker and forgives the
/// escalation; record_failure() reopens it with a geometrically longer
/// hold (the probe failed — the resource is still sick).
///
/// Like Backoff, all time is in caller units (the service layer counts
/// virtual cycles) and jitter is seeded, so sequences replay exactly.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BackoffConfig cfg, unsigned trip_threshold = 1,
                          std::uint64_t seed = 0)
      : backoff_(cfg, seed), trip_threshold_(trip_threshold) {
    if (trip_threshold_ == 0)
      throw std::invalid_argument("CircuitBreaker: trip_threshold == 0");
  }

  /// May a request proceed at `now`? Closed: always. Open: only once the
  /// hold expires, and that single admission IS the half-open probe.
  /// Half-open: no — the outstanding probe decides.
  [[nodiscard]] bool allow(std::uint64_t now) noexcept {
    switch (state_) {
      case State::kClosed: return true;
      case State::kOpen:
        if (backoff_.ready_in(now) > 0) return false;
        state_ = State::kHalfOpen;
        return true;  // the single trial request
      case State::kHalfOpen: return false;
    }
    return false;
  }

  /// The guarded resource served a request. Closes the breaker from any
  /// state and forgives the failure streak. By default the hold escalation
  /// is forgiven too; pass forgive = false for staged re-admission (the
  /// socket-recovery prober): the breaker closes so traffic can ramp, but a
  /// relapse reopens with the NEXT geometric hold, not the initial one —
  /// only a completed ramp (a second record_success()) resets the schedule.
  void record_success(bool forgive = true) noexcept {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    if (forgive) backoff_.reset();
  }

  /// The guarded resource failed a request at `now`. In half-open this is
  /// the probe's verdict: reopen with an escalated hold. In closed, a
  /// streak of `trip_threshold` failures opens the breaker.
  void record_failure(std::uint64_t now) {
    if (state_ == State::kHalfOpen) {
      state_ = State::kOpen;
      (void)backoff_.arm(now);  // escalated: arm() draws the next delay
      return;
    }
    if (state_ == State::kOpen) return;  // already holding; nothing flowed
    if (++consecutive_failures_ >= trip_threshold_) {
      state_ = State::kOpen;
      (void)backoff_.arm(now);
    }
  }

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Caller units until an open breaker admits its probe (0 when closed or
  /// half-open — the gate is not time-held in those states).
  [[nodiscard]] std::uint64_t ready_in(std::uint64_t now) const noexcept {
    return state_ == State::kOpen ? backoff_.ready_in(now) : 0;
  }
  [[nodiscard]] unsigned consecutive_failures() const noexcept {
    return consecutive_failures_;
  }
  [[nodiscard]] unsigned reopens() const noexcept { return backoff_.retries(); }

  /// Complete mutable state, for durable snapshots (config + trip threshold
  /// come from construction, mirroring Backoff::Snapshot).
  struct Snapshot {
    Backoff::Snapshot backoff{};
    unsigned consecutive_failures = 0;
    std::uint8_t state = 0;  ///< static_cast<uint8_t>(State)
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    return Snapshot{backoff_.snapshot(), consecutive_failures_,
                    static_cast<std::uint8_t>(state_)};
  }

  void restore(const Snapshot& s) noexcept {
    backoff_.restore(s.backoff);
    consecutive_failures_ = s.consecutive_failures;
    state_ = static_cast<State>(s.state);
  }

 private:
  Backoff backoff_;
  unsigned trip_threshold_;
  unsigned consecutive_failures_ = 0;
  State state_ = State::kClosed;
};

}  // namespace mcopt::util
