#pragma once
// Multi-tenant service front end over the overload-robust executor.
//
// The executor (runtime/executor) arbitrates one contended resource — the
// memory subsystem's aggregate bandwidth — but treats every submission as
// equally entitled to it. This layer adds the *tenant*: a named traffic
// source with a WFQ weight, a bandwidth quota, an SLO class, and a circuit
// breaker. The robustness contract is isolation:
//
//   * no tenant starves — backlogged tenants share served bandwidth in
//     weight proportion (the executor runs QueuePolicy::kWeightedFair with
//     the tenant as the flow and the pricing quote's bytes as the job
//     length, so fairness is measured in bytes, not job counts);
//   * one tenant's overload cannot raise another's p99 — an over-quota
//     tenant is rejected AT THE DOOR with ShedReason::kTenantThrottled,
//     before the executor's admission projection (admit_tail) is touched,
//     so other tenants' deadline estimates never see the abuse;
//   * abuse is contained, not amplified — a tenant that keeps hitting its
//     quota trips a util::CircuitBreaker whose open state rejects in O(1)
//     without even refilling the token bucket, and whose half-open state
//     admits a single probe before either closing or re-opening with a
//     geometrically longer hold.
//
// ## The door clock
//
// All door decisions (token-bucket refill, breaker holds) run on the
// service's own monotone arrival clock — the largest JobSpec::arrival seen —
// never on the executor's service tail, which advances with real worker
// timing. A fixed submission order therefore produces a bit-identical
// sequence of door verdicts, which is what makes seeded service soaks
// replayable.
//
// ## Threading
//
// submit() is thread-safe; the door (quota + breaker + forwarding) is one
// critical section per call, so verdicts are totally ordered. Everything
// past the door is the executor's own concurrency. Rejected submissions
// never reach the executor and produce no JobReport there; the door keeps
// its own typed per-tenant counters, and conservation across both layers is
// asserted by the service soak (offered = door-shed + executor-accounted).

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/executor/executor.h"
#include "util/backoff.h"
#include "util/expected.h"

namespace mcopt::runtime::service {

using TenantId = std::uint32_t;

/// SLO tiers, mapped to executor priority lanes and deadline slack.
enum class SloClass : unsigned { kInteractive = 0, kStandard = 1, kBatch = 2 };
inline constexpr std::size_t kNumSloClasses = 3;

[[nodiscard]] constexpr const char* to_string(SloClass c) noexcept {
  switch (c) {
    case SloClass::kInteractive: return "interactive";
    case SloClass::kStandard: return "standard";
    case SloClass::kBatch: return "batch";
  }
  return "?";
}

struct TenantConfig {
  std::string name;
  /// WFQ weight (> 0): a backlogged tenant's share of served bandwidth is
  /// weight-proportional among backlogged tenants.
  double weight = 1.0;
  /// Token-bucket admission quota in bytes of job traffic per second of
  /// virtual time; 0 = unlimited. Refills on the door clock.
  double quota_bytes_per_s = 0.0;
  /// Bucket depth, in seconds of quota (burst tolerance).
  double burst_seconds = 0.25;
  SloClass slo = SloClass::kStandard;
  /// Consecutive quota throttles that open the tenant's circuit breaker.
  unsigned breaker_trip_threshold = 16;
  /// Breaker hold schedule, in virtual cycles.
  util::BackoffConfig breaker{.initial = 1'000'000, .multiplier = 2.0,
                              .cap = 256'000'000, .jitter = 0.1};
};

/// Deadline policy of one SLO class: lane + deadline slack as a multiple of
/// the job's healthy service quote (slack <= 0 means no deadline — batch),
/// plus an absolute latency floor. The floor is what keeps a tiny job's
/// deadline honest on a shared serialized server: it must tolerate a few
/// max-size jobs in front of it no matter how small its own quote is.
struct SloPolicy {
  exec::Priority priority = exec::Priority::kNormal;
  double deadline_slack = 0.0;
  arch::Cycles deadline_floor = 0;
};

struct ServiceConfig {
  /// Executor configuration; queue_policy is forced to kWeightedFair.
  exec::ExecutorConfig executor{};
  /// Per-class lane + slack (interactive, standard, batch).
  std::array<SloPolicy, kNumSloClasses> slo = {
      SloPolicy{exec::Priority::kHigh, 24.0},
      SloPolicy{exec::Priority::kNormal, 96.0},
      SloPolicy{exec::Priority::kLow, 0.0}};
  /// Honor a deadline the submitter set explicitly instead of the SLO
  /// default (the chaos harness's deadline abuser needs this on).
  bool allow_explicit_deadlines = true;
};

/// Door-level accounting for one tenant. Bytes are static traffic bytes
/// (PricingModel::traffic_bytes) — quota is measured in offered traffic,
/// independent of the fault state the job later prices against.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t throttled = 0;         ///< quota rejections at the door
  std::uint64_t breaker_rejected = 0;  ///< open-breaker rejections
  std::uint64_t forwarded = 0;         ///< passed the door to the executor
  std::uint64_t accepted = 0;          ///< admitted by the executor
  std::uint64_t offered_bytes = 0;
  std::uint64_t door_shed_bytes = 0;  ///< throttled + breaker-rejected bytes
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t breaker_opens = 0;
};

struct TenantSnapshot {
  TenantId id = 0;
  TenantConfig config;
  TenantCounters counters;
  util::CircuitBreaker::State breaker = util::CircuitBreaker::State::kClosed;
  double quota_level_bytes = 0.0;
};

/// Complete mutable door state of one tenant, for durable snapshots.
struct DoorTenantState {
  TenantCounters counters;
  util::CircuitBreaker::Snapshot breaker;
  double quota_level_bytes = 0.0;
  arch::Cycles last_refill = 0;
};

/// Everything the door learned since construction. Captured at a quiesced
/// instant and restored into a freshly constructed Service with the same
/// tenant registrations, the door then produces bit-identical verdicts for
/// any submission sequence the original would have seen (all door
/// arithmetic — token-bucket refill, breaker holds — is deterministic in
/// (state, submission order)).
struct DoorSnapshot {
  arch::Cycles door_clock = 0;
  std::vector<DoorTenantState> tenants;
};

/// Post-drain join of door counters with the executor's per-job reports.
struct TenantSummary {
  TenantId id = 0;
  std::string name;
  double weight = 1.0;
  SloClass slo = SloClass::kStandard;
  TenantCounters counters;
  std::uint64_t completed = 0;
  std::uint64_t goodput_bytes = 0;
  std::uint64_t exec_shed_bytes = 0;  ///< bytes of forwarded-but-shed jobs
  std::uint64_t missed_deadlines = 0;
  double p50_ms = 0.0, p99_ms = 0.0;  ///< completed-job sojourn
};

class Service {
 public:
  explicit Service(ServiceConfig cfg);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Registers a tenant; ids start at 1 (0 is the anonymous default flow
  /// and cannot be registered). Throws on invalid config.
  TenantId register_tenant(TenantConfig cfg);

  /// Submits one job on behalf of `tenant`. The service stamps the spec's
  /// tenant/fair_weight/priority and (unless the submitter set one and
  /// allow_explicit_deadlines) an SLO deadline, runs the door (breaker,
  /// quota), and forwards survivors to the executor. Door rejections return
  /// accepted=false with ShedReason::kTenantThrottled and touch neither the
  /// executor's admission projection nor its report log. Throws on unknown
  /// tenant ids.
  exec::SubmitResult submit(TenantId tenant, exec::JobSpec spec);

  /// Journal-replay variant of submit(): runs the full door — advancing the
  /// door clock, quota buckets, breakers and counters exactly as submit()
  /// would, so replaying a journaled submission stream reproduces the
  /// original verdict sequence bit-identically — but forwards to the
  /// executor only when `forward` is true. The durable layer passes
  /// forward=false for jobs whose final outcome is already journaled
  /// (completed or shed): their history must advance the door without
  /// re-executing the work. A door-accepted, non-forwarded call returns
  /// accepted=true with id 0.
  exec::SubmitResult submit_replay(TenantId tenant, exec::JobSpec spec,
                                   bool forward);

  /// Replay bookkeeping companion to submit_replay(..., forward=false): a
  /// journaled executor-ACCEPTED outcome (completion, or a post-accept shed)
  /// bumps the tenant's accepted counter that the skipped executor submit
  /// would have produced, keeping conservation invariants replay-exact.
  void credit_replayed_accept(TenantId tenant);

  /// Captures the door's mutable state (see DoorSnapshot).
  [[nodiscard]] DoorSnapshot snapshot_door() const;

  /// Restores door state captured by snapshot_door(). The same tenants must
  /// already be registered, in the same order; fails on a count mismatch.
  [[nodiscard]] util::Status restore_door(const DoorSnapshot& snap);

  /// Forwards cooperative cancellation to the executor.
  bool cancel(std::uint64_t job_id) { return executor_.cancel(job_id); }

  /// Stops the executor (kDrain runs the backlog; kShedQueued sheds it).
  void shutdown(exec::Executor::Drain mode) { executor_.shutdown(mode); }

  [[nodiscard]] const exec::Executor& executor() const noexcept {
    return executor_;
  }
  [[nodiscard]] exec::Executor& executor() noexcept { return executor_; }

  [[nodiscard]] unsigned num_tenants() const;
  [[nodiscard]] TenantSnapshot tenant(TenantId id) const;

  /// Joins door counters with the executor's reports (call after
  /// shutdown()). One summary per registered tenant, id-ascending; reports
  /// from the anonymous flow (tenant 0) are ignored.
  [[nodiscard]] std::vector<TenantSummary> summarize() const;

  /// Jain's fairness index of a non-negative vector: (Σx)² / (n·Σx²) —
  /// 1.0 is perfectly fair, 1/n is one-takes-all. Empty or all-zero → 1.0.
  [[nodiscard]] static double jain_index(const std::vector<double>& x);

 private:
  struct Tenant {
    TenantConfig cfg;
    TenantCounters counters;
    util::CircuitBreaker breaker;
    double quota_level_bytes = 0.0;  ///< token bucket level
    arch::Cycles last_refill = 0;
    Tenant(TenantConfig c, std::uint64_t seed)
        : cfg(std::move(c)),
          breaker(cfg.breaker, cfg.breaker_trip_threshold, seed),
          quota_level_bytes(cfg.quota_bytes_per_s * cfg.burst_seconds) {}
  };

  /// Healthy service-cycle quote for SLO deadlines, cached per distinct
  /// (kind, n, iterations) so a million-job soak prices each shape once.
  [[nodiscard]] arch::Cycles healthy_service_cycles_locked(
      const exec::JobSpec& spec);

  /// Shared body of submit()/submit_replay().
  exec::SubmitResult submit_impl(TenantId tenant, exec::JobSpec spec,
                                 bool forward);

  ServiceConfig cfg_;
  exec::Executor executor_;
  double clock_hz_;

  mutable std::mutex mu_;  ///< door: tenants, quota buckets, breakers
  std::vector<Tenant> tenants_;
  arch::Cycles door_clock_ = 0;  ///< largest arrival seen
  std::map<std::tuple<exec::JobKind, std::size_t, unsigned>, arch::Cycles>
      healthy_cycles_cache_;
};

}  // namespace mcopt::runtime::service
