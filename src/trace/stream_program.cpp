#include "trace/stream_program.h"

#include <stdexcept>

namespace mcopt::trace {

LockstepStreamProgram::LockstepStreamProgram(std::vector<StreamDesc> streams,
                                             std::size_t elem_bytes,
                                             std::vector<sched::IterRange> chunks,
                                             unsigned sweeps)
    : streams_(std::move(streams)),
      elem_bytes_(elem_bytes),
      chunks_(std::move(chunks)),
      sweeps_(sweeps) {
  if (streams_.empty())
    throw std::invalid_argument("LockstepStreamProgram: no streams");
  if (elem_bytes_ == 0)
    throw std::invalid_argument("LockstepStreamProgram: zero element size");
  reset();
}

void LockstepStreamProgram::reset() {
  sweep_ = 0;
  chunk_ = 0;
  iter_ = chunks_.empty() ? 0 : chunks_.front().begin;
  stream_ = 0;
}

std::uint64_t LockstepStreamProgram::total_accesses() const {
  std::uint64_t iters = 0;
  for (const auto& c : chunks_) iters += c.size();
  return iters * streams_.size() * sweeps_;
}

std::size_t LockstepStreamProgram::next_batch(std::span<sim::Access> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (sweep_ >= sweeps_ || chunks_.empty()) break;
    const sched::IterRange& chunk = chunks_[chunk_];
    if (iter_ >= chunk.end) {
      // Advance to the next chunk / sweep.
      if (++chunk_ >= chunks_.size()) {
        chunk_ = 0;
        if (++sweep_ >= sweeps_) break;
      }
      iter_ = chunks_[chunk_].begin;
      stream_ = 0;
      continue;
    }
    const StreamDesc& s = streams_[stream_];
    out[produced++] = sim::Access{
        s.base + static_cast<arch::Addr>(iter_) * elem_bytes_,
        s.write ? sim::Op::kStore : sim::Op::kLoad,
        /*begins_iteration=*/stream_ == 0, s.flops_before};
    if (++stream_ == streams_.size()) {
      stream_ = 0;
      ++iter_;
    }
  }
  return produced;
}

sim::Workload make_lockstep_workload(const std::vector<StreamDesc>& streams,
                                     std::size_t elem_bytes, std::size_t n,
                                     unsigned num_threads,
                                     const sched::Schedule& schedule,
                                     unsigned sweeps) {
  sim::Workload workload;
  workload.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workload.push_back(std::make_unique<LockstepStreamProgram>(
        streams, elem_bytes, sched::chunks_for_thread(n, num_threads, t, schedule),
        sweeps));
  }
  return workload;
}

}  // namespace mcopt::trace
