#pragma once
// McCalpin STREAM (Sect. 2.1): copy, scale, add, triad.
//
// Two faces, like every kernel in this library:
//  * native: OpenMP-parallel kernels over raw pointers (get them from
//    seg_array segments or any allocation) for on-host measurements;
//  * simulated: workload builders that replay the same loop, schedule and
//    data layout on the T2 chip model, reproducing Fig. 2.
//
// Byte accounting follows the STREAM convention: reported bandwidth excludes
// the read-for-ownership on the store stream; *_actual_bytes includes it
// (the factor 4/3 for triad the paper mentions).

#include <cstddef>
#include <cstdint>
#include <string>

#include "arch/address_map.h"
#include "sched/schedule.h"
#include "sim/program.h"
#include "trace/stream_program.h"

namespace mcopt::kernels {

enum class StreamOp { kCopy, kScale, kAdd, kTriad };

[[nodiscard]] std::string to_string(StreamOp op);

/// Runs one parallel sweep of `op` with OpenMP static scheduling and returns
/// wall seconds. Arrays must each hold at least n doubles.
/// copy:  c = a         scale: b = s*c
/// add:   c = a + b     triad: a = b + s*c
double stream_sweep_seconds(StreamOp op, double* a, double* b, double* c,
                            std::size_t n, double s);

/// STREAM-convention bytes per sweep (store RFO not counted).
[[nodiscard]] std::uint64_t stream_reported_bytes(StreamOp op, std::size_t n);

/// Actual memory traffic per sweep including write-allocate RFO.
[[nodiscard]] std::uint64_t stream_actual_bytes(StreamOp op, std::size_t n);

/// Stream descriptors (bases + read/write roles + flops) for `op` given the
/// three array base addresses. Used by both the simulator workload and the
/// analytic model.
struct StreamBases {
  arch::Addr a = 0;
  arch::Addr b = 0;
  arch::Addr c = 0;
};

[[nodiscard]] std::vector<trace::StreamDesc> stream_descs(StreamOp op,
                                                          const StreamBases& bases);

/// Simulator workload: `num_threads` software threads execute `sweeps`
/// sweeps of `op` over n elements under `schedule`.
[[nodiscard]] sim::Workload make_stream_workload(StreamOp op,
                                                 const StreamBases& bases,
                                                 std::size_t n,
                                                 unsigned num_threads,
                                                 const sched::Schedule& schedule,
                                                 unsigned sweeps = 1);

/// The paper's COMMON-block layout (Sect. 2.1): arrays a, b, c packed
/// back-to-back with ndim = n + offset doubles each, so the offset parameter
/// slides their relative alignment in units of DP words.
[[nodiscard]] StreamBases common_block_bases(arch::Addr block_base, std::size_t n,
                                             std::size_t offset_dp_words);

}  // namespace mcopt::kernels
