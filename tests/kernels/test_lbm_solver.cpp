#include "kernels/lbm/solver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mcopt::kernels::lbm {
namespace {

Solver::Params base_params(std::size_t n, DataLayout layout = DataLayout::kIJKv) {
  Solver::Params p;
  p.geometry = Geometry{n, n, n, 0, layout};
  p.tau = 0.6;
  return p;
}

TEST(LbmSolver, RejectsBadTau) {
  auto p = base_params(4);
  p.tau = 0.5;
  EXPECT_THROW(Solver{p}, std::invalid_argument);
}

TEST(LbmSolver, EquilibriumAtRestIsStationary) {
  Solver s(base_params(6));
  s.initialize(1.0);
  const double mass0 = s.total_mass();
  for (int step = 0; step < 5; ++step) s.step();
  EXPECT_NEAR(s.total_mass(), mass0, 1e-10);
  const auto u = s.velocity(3, 3, 3);
  EXPECT_NEAR(u[0], 0.0, 1e-14);
  EXPECT_NEAR(u[1], 0.0, 1e-14);
  EXPECT_NEAR(u[2], 0.0, 1e-14);
  EXPECT_NEAR(s.density(3, 3, 3), 1.0, 1e-14);
}

TEST(LbmSolver, MassConservedExactlyUnderFlow) {
  auto p = base_params(8);
  p.force = {1e-5, 0.0, 0.0};
  Solver s(p);
  s.make_channel_walls_z();
  s.initialize(1.0);
  const double mass0 = s.total_mass();
  for (int step = 0; step < 50; ++step) s.step();
  EXPECT_NEAR(s.total_mass(), mass0, mass0 * 1e-12);
}

TEST(LbmSolver, ForceAddsMomentumEachStep) {
  // Fully periodic, no walls: momentum grows by force * fluid_cells per step
  // (Shan-Chen shift adds tau*F to the equilibrium velocity; the post-
  // collision momentum gain per cell and step is F).
  auto p = base_params(6);
  p.force = {2e-5, 0.0, 0.0};
  Solver s(p);
  s.initialize(1.0);
  const int steps = 10;
  for (int step = 0; step < steps; ++step) s.step();
  const auto mom = s.total_momentum();
  const double expected =
      2e-5 * static_cast<double>(s.fluid_cells()) * steps;
  EXPECT_NEAR(mom[0], expected, expected * 0.02);
  EXPECT_NEAR(mom[1], 0.0, 1e-12);
}

TEST(LbmSolver, BounceBackStopsFlowAtWalls) {
  auto p = base_params(8);
  p.force = {1e-5, 0.0, 0.0};
  Solver s(p);
  s.make_channel_walls_z();
  s.initialize(1.0);
  for (int step = 0; step < 200; ++step) s.step();
  // Velocity near the wall must be much smaller than at the channel centre.
  const double near_wall = s.velocity(4, 4, 2)[0];
  const double centre = s.velocity(4, 4, 4)[0];  // nz=8: centre-ish layer
  EXPECT_GT(centre, 1.5 * near_wall);
  EXPECT_GT(near_wall, 0.0);
}

TEST(LbmSolver, PoiseuilleProfileMatchesParabola) {
  // Channel of height H = nz-2 fluid layers between bounce-back walls.
  const std::size_t n = 16;
  auto p = base_params(n);
  const double g = 1e-6;
  p.force = {g, 0.0, 0.0};
  p.tau = 0.8;
  Solver s(p);
  s.make_channel_walls_z();
  s.initialize(1.0);
  // Run to steady state (diffusion time ~ H^2/nu).
  for (int step = 0; step < 3000; ++step) s.step();

  const double nu = viscosity(p.tau);
  // Half-way bounce-back: walls sit at z = 1.5 and z = nz-0.5 in lattice
  // units; channel width h = nz - 2.
  const double h = static_cast<double>(n) - 2.0;
  double max_rel_err = 0.0;
  for (std::size_t z = 2; z <= n - 1; ++z) {
    const double zeta = static_cast<double>(z) - 1.5;
    const double analytic = g / (2.0 * nu) * zeta * (h - zeta);
    const double measured = s.velocity(n / 2, n / 2, z)[0];
    max_rel_err = std::max(max_rel_err,
                           std::abs(measured - analytic) / std::abs(analytic));
  }
  EXPECT_LT(max_rel_err, 0.05);
}

TEST(LbmSolver, LayoutsProduceIdenticalPhysics) {
  auto run = [](DataLayout layout, std::size_t pad) {
    auto p = base_params(6, layout);
    p.geometry.pad_x = pad;
    p.force = {1e-5, 2e-6, 0.0};
    Solver s(p);
    s.make_channel_walls_z();
    s.initialize(1.0);
    for (int step = 0; step < 20; ++step) s.step();
    return s;
  };
  const Solver a = run(DataLayout::kIJKv, 0);
  const Solver b = run(DataLayout::kIvJK, 0);
  const Solver c = run(DataLayout::kIJKv, 3);
  for (std::size_t z = 1; z <= 6; ++z)
    for (std::size_t y = 1; y <= 6; ++y)
      for (std::size_t x = 1; x <= 6; ++x)
        for (std::size_t v = 0; v < kQ; ++v) {
          ASSERT_DOUBLE_EQ(a.f_at(x, y, z, v), b.f_at(x, y, z, v));
          ASSERT_DOUBLE_EQ(a.f_at(x, y, z, v), c.f_at(x, y, z, v));
        }
}

TEST(LbmSolver, FusedLoopMatchesNested) {
  auto run = [](bool fused) {
    auto p = base_params(6);
    p.fused_zy = fused;
    p.force = {1e-5, 0.0, 0.0};
    Solver s(p);
    s.make_channel_walls_z();
    s.initialize(1.0);
    for (int step = 0; step < 15; ++step) s.step();
    return s;
  };
  const Solver a = run(false);
  const Solver b = run(true);
  for (std::size_t z = 1; z <= 6; ++z)
    for (std::size_t x = 1; x <= 6; ++x)
      for (std::size_t v = 0; v < kQ; ++v)
        ASSERT_DOUBLE_EQ(a.f_at(x, 3, z, v), b.f_at(x, 3, z, v));
}

TEST(LbmSolver, SolidBookkeeping) {
  Solver s(base_params(4));
  EXPECT_EQ(s.fluid_cells(), 64u);
  s.set_solid(2, 2, 2);
  EXPECT_EQ(s.fluid_cells(), 63u);
  s.set_solid(2, 2, 2);  // idempotent
  EXPECT_EQ(s.fluid_cells(), 63u);
  EXPECT_TRUE(s.is_solid(2, 2, 2));
  EXPECT_FALSE(s.is_solid(1, 1, 1));
  EXPECT_THROW(s.set_solid(0, 1, 1), std::out_of_range);
  EXPECT_THROW(s.set_solid(1, 5, 1), std::out_of_range);
}

TEST(LbmSolver, StepReturnsPositiveTime) {
  Solver s(base_params(6));
  s.initialize();
  EXPECT_GT(s.step(), 0.0);
  EXPECT_EQ(s.steps_taken(), 1u);
}

TEST(LbmSolver, FlowPastObstacleConservesMass) {
  auto p = base_params(10);
  p.force = {5e-6, 0.0, 0.0};
  Solver s(p);
  s.make_channel_walls_z();
  // A small block obstacle in the channel.
  for (std::size_t z = 4; z <= 6; ++z)
    for (std::size_t y = 4; y <= 6; ++y)
      for (std::size_t x = 4; x <= 6; ++x) s.set_solid(x, y, z);
  s.initialize(1.0);
  const double mass0 = s.total_mass();
  for (int step = 0; step < 100; ++step) s.step();
  EXPECT_NEAR(s.total_mass(), mass0, mass0 * 1e-12);
  // Flow deflects around the obstacle: velocity above it exceeds velocity
  // right behind it.
  EXPECT_GT(s.velocity(5, 5, 8)[0], 0.0);
}

TEST(LbmState, RestoreReproducesIdenticalEvolution) {
  auto p = base_params(6);
  p.force = {1e-5, 0.0, 0.0};
  Solver a(p);
  a.make_channel_walls_z();
  a.initialize(1.0);
  for (int step = 0; step < 7; ++step) a.step();

  // Capture, continue the original, then replay the capture in a fresh
  // solver with the same geometry.
  const std::vector<double> snapshot = a.distributions();
  const unsigned steps = a.steps_taken();
  for (int step = 0; step < 5; ++step) a.step();

  Solver b(p);
  b.make_channel_walls_z();
  b.restore(snapshot, steps);
  EXPECT_EQ(b.steps_taken(), steps);
  for (int step = 0; step < 5; ++step) b.step();

  const Geometry& g = p.geometry;
  for (std::size_t z = 1; z <= g.nz; ++z)
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x)
        for (std::size_t v = 0; v < kQ; ++v)
          ASSERT_EQ(a.f_at(x, y, z, v), b.f_at(x, y, z, v))
              << "(" << x << "," << y << "," << z << ") v=" << v;
}

TEST(LbmState, RestoreRejectsWrongSize) {
  Solver s(base_params(4));
  EXPECT_THROW(s.restore(std::vector<double>(7), 1), std::invalid_argument);
}

TEST(LbmState, RestreamSlabRepairsCorruptedDistributions) {
  auto p = base_params(6);
  p.force = {1e-5, 0.0, 0.0};
  Solver s(p);
  s.make_channel_walls_z();
  s.initialize(1.0);
  for (int step = 0; step < 4; ++step) s.step();

  const Geometry& g = p.geometry;
  for (std::size_t z = 1; z <= g.nz; ++z) {
    const std::vector<double> expected = s.distributions();
    // Corrupt the current field's slab z: restore a copy where every fluid
    // distribution in the slab is clobbered, then ask for a restream.
    std::vector<double> broken = expected;
    const std::size_t toggle = s.steps_taken() % 2;
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x) {
        if (s.is_solid(x, y, z)) continue;
        for (std::size_t v = 0; v < kQ; ++v)
          broken[g.f_index(x, y, z, v, toggle)] = -1e308;
      }
    s.restore(std::move(broken), s.steps_taken());
    s.restream_slab(z);
    const std::vector<double>& repaired = s.distributions();
    for (std::size_t y = 1; y <= g.ny; ++y)
      for (std::size_t x = 1; x <= g.nx; ++x) {
        if (s.is_solid(x, y, z)) continue;
        for (std::size_t v = 0; v < kQ; ++v)
          ASSERT_EQ(repaired[g.f_index(x, y, z, v, toggle)],
                    expected[g.f_index(x, y, z, v, toggle)])
              << "slab " << z << " (" << x << "," << y << ") v=" << v;
      }
    // The spill into adjacent slabs must not have disturbed anything.
    s.restore(std::vector<double>(expected), s.steps_taken());
  }
}

TEST(LbmState, RestreamSlabLeavesNeighborSlabsBitIdentical) {
  auto p = base_params(5);
  p.force = {0.0, 1e-5, 0.0};
  Solver s(p);
  s.initialize(1.0);
  for (int step = 0; step < 3; ++step) s.step();
  const std::vector<double> expected = s.distributions();
  s.restream_slab(3);
  EXPECT_EQ(s.distributions(), expected);
}

TEST(LbmState, RestreamSlabErrorPaths) {
  Solver s(base_params(4));
  s.initialize(1.0);
  EXPECT_THROW(s.restream_slab(2), std::logic_error);  // no completed step
  s.step();
  EXPECT_THROW(s.restream_slab(0), std::out_of_range);
  EXPECT_THROW(s.restream_slab(5), std::out_of_range);
}

}  // namespace
}  // namespace mcopt::kernels::lbm
