#pragma once
// Bandwidth pricing for admission control.
//
// Every job is priced before it is admitted: its planned layout (the
// paper's planner recipes over the currently-believed surviving controller
// set) is fed to the analytic bandwidth model, and the job's total memory
// traffic is converted into *virtual service cycles* at that bandwidth.
// Service cycles are the currency of the executor's admission gate and
// deadline math — a job "costs" the virtual time the memory subsystem is
// busy serving it, so capacity shrinks automatically when a controller dies
// or derates (the same traffic prices to more cycles).
//
// The pricing convention is deliberately self-consistent rather than
// instruction-exact: each kernel is reduced to its logical operand streams
// (triad: A=B+C*D -> 4 streams, one written; Jacobi and LBM: source grid
// read, destination grid written), RFO-expanded, and priced at the planned
// per-stream offsets. What matters for admission is that quotes are
// monotone in load and degrade exactly like the analytic roofline the soak
// benchmarks assert against.

#include <cstdint>

#include "arch/numa.h"
#include "runtime/executor/job.h"
#include "sim/analytic.h"
#include "sim/faults.h"
#include "util/expected.h"

namespace mcopt::runtime::exec {

struct PricingConfig {
  arch::AddressMap map{};
  arch::Calibration calibration{};
  double clock_ghz = 1.2;
  /// Thread count the analytic latency bound is evaluated at. The T2 runs
  /// 64 strands; at 64 the service (bandwidth) bound binds, which is the
  /// regime the executor arbitrates.
  unsigned pricing_threads = 64;
};

class PricingModel {
 public:
  explicit PricingModel(PricingConfig cfg = {});

  /// Prices `job` under a fault state: plans the kernel's stream layout
  /// over the surviving controllers, runs the analytic estimator, converts
  /// the job's traffic to service cycles. Fails (recoverably) when no
  /// controller survives — the executor maps that to ShedReason::kNoCapacity.
  [[nodiscard]] util::Expected<Quote> price(const JobSpec& job,
                                            const sim::FaultSpec& faults) const;

  /// The raw analytic estimate for a kind's planned streams under `faults`
  /// (bandwidth + per-controller utilization). The executor's workers use
  /// the utilization vector as the supervisor's measurement stand-in,
  /// evaluated under the ground-truth fault state.
  [[nodiscard]] util::Expected<sim::AnalyticEstimate> estimate(
      JobKind kind, const sim::FaultSpec& faults) const;

  /// Node-analogue of estimate(): shards the kind's streams over the
  /// believed-surviving socket memory domains (the NUMA planner's priced
  /// placement — orphaned compute sockets rehome to the nearest survivor)
  /// and runs the node analytic model with every socket computing at
  /// pricing_threads strands. Fails recoverably when no socket's memory
  /// survives.
  [[nodiscard]] util::Expected<sim::NodeEstimate> estimate_node(
      JobKind kind, const arch::NodeTopology& node,
      const sim::FaultSpec& faults) const;

  /// Node-aware price(): a node-wide job quoted at the node's composed
  /// bandwidth. Socket loss or link degradation shrinks the quoted
  /// bandwidth, so the same traffic prices to more service cycles and the
  /// admission gate sheds sooner — capacity follows the fault state with no
  /// executor changes. Quote::plan_set holds the surviving socket indices.
  [[nodiscard]] util::Expected<Quote> price_node(
      const JobSpec& job, const arch::NodeTopology& node,
      const sim::FaultSpec& faults) const;

  /// Total memory traffic of a job in bytes (reads + RFO + write-backs),
  /// the numerator of every quote and of the soak's goodput accounting.
  [[nodiscard]] static std::uint64_t traffic_bytes(const JobSpec& job);

  /// Healthy planned-layout bandwidth of a kind (bytes/s): the analytic
  /// roofline the overload soak caps goodput against.
  [[nodiscard]] double roofline_bandwidth(JobKind kind) const;

  /// Clock frequency in Hz (virtual cycles per second).
  [[nodiscard]] double clock_hz() const noexcept { return cfg_.clock_ghz * 1e9; }

  [[nodiscard]] const PricingConfig& config() const noexcept { return cfg_; }

 private:
  PricingConfig cfg_;
};

}  // namespace mcopt::runtime::exec
