// Transient-fault schedules: grammar, epoch algebra, chip application and
// the epoch-composed analytic model.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "kernels/triad.h"
#include "sim/analytic.h"
#include "sim/chip.h"
#include "sim/fault_schedule.h"
#include "trace/virtual_arena.h"
#include "util/prng.h"

namespace mcopt {
namespace {

using sim::FaultLimits;
using sim::FaultSchedule;
using sim::FaultSpec;

TEST(FaultScheduleParse, EmptyStringIsEmptySchedule) {
  const auto sched = FaultSchedule::parse("");
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(sched.value().empty());
  EXPECT_EQ(sched.value().describe(), "empty");
}

TEST(FaultScheduleParse, CycleRangeGrammar) {
  const auto sched = FaultSchedule::parse("mc1:off@1e6..5e6,mc2:derate=0.5@2e6");
  ASSERT_TRUE(sched.has_value());
  const auto& ivs = sched.value().intervals;
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].begin, 1000000u);
  EXPECT_EQ(ivs[0].end, 5000000u);
  EXPECT_TRUE(ivs[0].fault.is_offline(1));
  EXPECT_EQ(ivs[1].begin, 2000000u);
  EXPECT_EQ(ivs[1].end, FaultSchedule::kNever);
  EXPECT_DOUBLE_EQ(ivs[1].fault.derate_of(2), 0.5);
}

TEST(FaultScheduleParse, UnstampedItemCoversWholeRun) {
  const auto sched = FaultSchedule::parse("strand7:lag=8");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched.value().intervals.size(), 1u);
  EXPECT_EQ(sched.value().intervals[0].begin, 0u);
  EXPECT_EQ(sched.value().intervals[0].end, FaultSchedule::kNever);
  EXPECT_EQ(sched.value().intervals[0].fault.straggle_of(7), 8u);
}

TEST(FaultScheduleParse, PercentBoundsAreRelative) {
  const auto sched = FaultSchedule::parse("mc1:off@25%..75%");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched.value().intervals.size(), 1u);
  const auto& iv = sched.value().intervals[0];
  EXPECT_TRUE(iv.relative);
  EXPECT_DOUBLE_EQ(iv.begin_frac, 0.25);
  EXPECT_DOUBLE_EQ(iv.end_frac, 0.75);
  EXPECT_TRUE(sched.value().has_relative());

  const FaultSchedule resolved = sched.value().resolved(4000);
  EXPECT_FALSE(resolved.has_relative());
  EXPECT_EQ(resolved.intervals[0].begin, 1000u);
  EXPECT_EQ(resolved.intervals[0].end, 3000u);
}

TEST(FaultScheduleParse, RejectsMalformedStamps) {
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@"));
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@abc"));
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@10..20%"));   // mixed kinds
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@150%..200%"));  // out of range
  EXPECT_FALSE(FaultSchedule::parse("mc1:off@1e60"));        // > 2^53
  EXPECT_FALSE(FaultSchedule::parse("bogus@100"));           // bad fault item
}

TEST(FaultScheduleParse, DescribeRoundTripsThroughParse) {
  const auto sched =
      FaultSchedule::parse("mc1:off@1000..5000,bank3:slow=20,strand0:lag=4@10");
  ASSERT_TRUE(sched.has_value());
  const auto reparsed = FaultSchedule::parse(sched.value().describe());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed.value().describe(), sched.value().describe());
}

// ---------------------------------------------------------------------------
// Round-trip fuzz: describe() → parse() must be the identity on resolved
// schedules. This is what lets chaos_soak fail-logs and CI artifacts replay a
// schedule from its printed form with zero drift.

namespace roundtrip {

bool same_spec(const FaultSpec& a, const FaultSpec& b) {
  if (a.offline_controllers != b.offline_controllers) return false;
  if (a.offline_sockets != b.offline_sockets) return false;
  if (a.derates.size() != b.derates.size() || a.flips.size() != b.flips.size() ||
      a.slow_banks.size() != b.slow_banks.size() ||
      a.stragglers.size() != b.stragglers.size() ||
      a.socket_derates.size() != b.socket_derates.size() ||
      a.link_faults.size() != b.link_faults.size())
    return false;
  for (std::size_t i = 0; i < a.socket_derates.size(); ++i)
    if (a.socket_derates[i].socket != b.socket_derates[i].socket ||
        a.socket_derates[i].factor != b.socket_derates[i].factor)
      return false;
  for (std::size_t i = 0; i < a.link_faults.size(); ++i)
    if (a.link_faults[i].a != b.link_faults[i].a ||
        a.link_faults[i].b != b.link_faults[i].b ||
        a.link_faults[i].factor != b.link_faults[i].factor ||
        a.link_faults[i].offline != b.link_faults[i].offline)
      return false;
  for (std::size_t i = 0; i < a.derates.size(); ++i)
    if (a.derates[i].controller != b.derates[i].controller ||
        a.derates[i].factor != b.derates[i].factor)
      return false;
  for (std::size_t i = 0; i < a.flips.size(); ++i)
    if (a.flips[i].controller != b.flips[i].controller ||
        a.flips[i].rate != b.flips[i].rate)
      return false;
  for (std::size_t i = 0; i < a.slow_banks.size(); ++i)
    if (a.slow_banks[i].bank != b.slow_banks[i].bank ||
        a.slow_banks[i].extra_busy != b.slow_banks[i].extra_busy)
      return false;
  for (std::size_t i = 0; i < a.stragglers.size(); ++i)
    if (a.stragglers[i].thread != b.stragglers[i].thread ||
        a.stragglers[i].extra_cycles != b.stragglers[i].extra_cycles)
      return false;
  return true;
}

bool same_interval(const FaultSchedule::Interval& a,
                   const FaultSchedule::Interval& b) {
  if (a.relative != b.relative) return false;
  if (a.relative)
    return a.begin_frac == b.begin_frac && a.end_frac == b.end_frac &&
           same_spec(a.fault, b.fault);
  return a.begin == b.begin && a.end == b.end && same_spec(a.fault, b.fault);
}

/// One random single-fault interval. Single-fault because describe() splits
/// multi-fault intervals into one item each (separately tested below);
/// adversarial doubles because the old fixed-precision formatting is exactly
/// what this fuzz exists to keep out.
FaultSchedule::Interval random_interval(util::Xoshiro256& rng) {
  FaultSchedule::Interval iv;
  switch (rng.below(9)) {
    case 0:
      iv.fault.offline_controllers = {static_cast<unsigned>(rng.below(4))};
      break;
    case 1:
      iv.fault.derates.push_back(
          {static_cast<unsigned>(rng.below(4)), rng.uniform(0.001, 1.0)});
      break;
    case 2:
      iv.fault.flips.push_back(
          {static_cast<unsigned>(rng.below(4)),
           rng.uniform() * std::pow(10.0, -static_cast<double>(rng.below(12)))});
      break;
    case 3:
      iv.fault.slow_banks.push_back(
          {static_cast<unsigned>(rng.below(8)), rng.below(10000)});
      break;
    case 4:
      iv.fault.stragglers.push_back(
          {static_cast<unsigned>(rng.below(64)), rng.below(10000)});
      break;
    case 5:
      iv.fault.offline_sockets = {static_cast<unsigned>(rng.below(8))};
      break;
    case 6:
      iv.fault.socket_derates.push_back(
          {static_cast<unsigned>(rng.below(8)), rng.uniform(0.001, 1.0)});
      break;
    case 7: {
      const unsigned a = static_cast<unsigned>(rng.below(8));
      iv.fault.link_faults.push_back(
          {a, (a + 1 + static_cast<unsigned>(rng.below(7))) % 8, 1.0, true});
      break;
    }
    default: {
      const unsigned a = static_cast<unsigned>(rng.below(8));
      iv.fault.link_faults.push_back(
          {a, (a + 1 + static_cast<unsigned>(rng.below(7))) % 8,
           rng.uniform(0.001, 1.0), false});
    }
  }
  switch (rng.below(4)) {
    case 0:
      break;  // whole-run: begin 0, never clears
    case 1:
      iv.begin = rng.below(std::uint64_t{1} << 40);
      break;  // never clears
    case 2: {
      iv.begin = rng.below(std::uint64_t{1} << 40);
      iv.end = iv.begin + 1 + rng.below(std::uint64_t{1} << 40);
      break;
    }
    default: {
      // Percent fractions are generated the way parse() makes them
      // (percent-double / 100) — those are the values describe() must
      // reproduce; a raw random fraction need not even be expressible as
      // strtod(text)/100.
      iv.relative = true;
      const double begin_pct = rng.uniform(0.0, 90.0);
      iv.begin_frac = begin_pct / 100.0;
      iv.end_frac =
          rng.below(4) == 0
              ? -1.0
              : rng.uniform(std::nextafter(begin_pct, 101.0), 100.0) / 100.0;
      break;
    }
  }
  return iv;
}

}  // namespace roundtrip

TEST(FaultScheduleRoundTrip, DescribeParseIsIdentityFor64SeededSchedules) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    util::Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    FaultSchedule sched;
    const std::size_t n = 1 + rng.below(5);
    for (std::size_t i = 0; i < n; ++i)
      sched.intervals.push_back(roundtrip::random_interval(rng));

    const std::string text = sched.describe();
    const auto reparsed = FaultSchedule::parse(text);
    ASSERT_TRUE(reparsed.has_value())
        << "seed " << seed << ": '" << text << "': " << reparsed.error().message;
    ASSERT_EQ(reparsed.value().intervals.size(), sched.intervals.size())
        << "seed " << seed << ": '" << text << "'";
    for (std::size_t i = 0; i < sched.intervals.size(); ++i)
      EXPECT_TRUE(roundtrip::same_interval(sched.intervals[i],
                                           reparsed.value().intervals[i]))
          << "seed " << seed << " interval " << i << ": '" << text << "'";
    // And the fixpoint: a second trip changes nothing.
    EXPECT_EQ(reparsed.value().describe(), text) << "seed " << seed;
  }
}

TEST(FaultScheduleRoundTrip, MultiFaultIntervalSplitsIntoEquivalentItems) {
  // A programmatically built interval can hold several faults; its printed
  // form is one item per fault sharing the stamp, and the reparsed schedule
  // is the same *timeline* even though the interval list is longer.
  FaultSchedule sched;
  FaultSchedule::Interval iv;
  iv.fault.offline_controllers = {0};
  iv.fault.derates.push_back({1, 0.375});
  iv.fault.flips.push_back({2, 1e-9});
  iv.begin = 1000;
  iv.end = 5000;
  sched.intervals.push_back(iv);

  const std::string text = sched.describe();
  EXPECT_EQ(text, "mc0:off@1000..5000,mc1:derate=0.375@1000..5000,"
                  "mc2:flip=1e-09@1000..5000");
  const auto reparsed = FaultSchedule::parse(text);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  ASSERT_EQ(reparsed.value().intervals.size(), 3u);
  for (arch::Cycles cycle : {0u, 999u, 1000u, 3000u, 4999u, 5000u, 10000u}) {
    EXPECT_TRUE(roundtrip::same_spec(sched.active_at(cycle),
                                     reparsed.value().active_at(cycle)))
        << "cycle " << cycle;
  }
}

TEST(FaultScheduleRoundTrip, AdversarialDoublesSurviveTheTrip) {
  // Values a fixed "%.2f" or "%g" would mangle.
  FaultSchedule sched;
  FaultSchedule::Interval a;
  a.fault.derates.push_back({0, 1.0 / 3.0});
  sched.intervals.push_back(a);
  FaultSchedule::Interval b;
  b.fault.flips.push_back({1, 2.5e-13});
  b.relative = true;
  // Fractions the way parse() produces them: percent-double over 100.
  b.begin_frac = (100.0 / 3.0) / 100.0;
  b.end_frac = (200.0 / 3.0) / 100.0;
  sched.intervals.push_back(b);

  const auto reparsed = FaultSchedule::parse(sched.describe());
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  ASSERT_EQ(reparsed.value().intervals.size(), 2u);
  EXPECT_EQ(reparsed.value().intervals[0].fault.derates[0].factor, 1.0 / 3.0);
  EXPECT_EQ(reparsed.value().intervals[1].fault.flips[0].rate, 2.5e-13);
  EXPECT_EQ(reparsed.value().intervals[1].begin_frac, b.begin_frac);
  EXPECT_EQ(reparsed.value().intervals[1].end_frac, b.end_frac);
}

TEST(FaultSchedule, ActiveAtMergesOverlappingIntervalsOntoBaseline) {
  const auto sched =
      FaultSchedule::parse("mc1:off@100..300,mc2:derate=0.5@200..400").value();
  FaultSpec baseline;
  baseline.slow_banks.push_back({0, 7});

  const FaultSpec at0 = sched.active_at(0, baseline);
  EXPECT_FALSE(at0.is_offline(1));
  EXPECT_EQ(at0.bank_extra(0), 7u);

  const FaultSpec at250 = sched.active_at(250, baseline);
  EXPECT_TRUE(at250.is_offline(1));
  EXPECT_DOUBLE_EQ(at250.derate_of(2), 0.5);
  EXPECT_EQ(at250.bank_extra(0), 7u);

  const FaultSpec at350 = sched.active_at(350, baseline);
  EXPECT_FALSE(at350.is_offline(1));
  EXPECT_DOUBLE_EQ(at350.derate_of(2), 0.5);
}

TEST(FaultSchedule, EpochsSplitAtTransitions) {
  const auto sched = FaultSchedule::parse("mc0:off@100..300").value();
  const auto epochs = sched.epochs(1000);
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].begin, 0u);
  EXPECT_EQ(epochs[0].end, 100u);
  EXPECT_FALSE(epochs[0].faults.any());
  EXPECT_EQ(epochs[1].begin, 100u);
  EXPECT_EQ(epochs[1].end, 300u);
  EXPECT_TRUE(epochs[1].faults.is_offline(0));
  EXPECT_EQ(epochs[2].begin, 300u);
  EXPECT_EQ(epochs[2].end, 1000u);
  EXPECT_FALSE(epochs[2].faults.any());
  EXPECT_EQ(sched.event_count(), 2u);
}

TEST(FaultSchedule, ShiftedDropsClearedAndClampsBounds) {
  const auto sched =
      FaultSchedule::parse("mc0:off@100..300,mc1:off@500..700").value();
  const FaultSchedule mid = sched.shifted(400);
  ASSERT_EQ(mid.intervals.size(), 1u);  // first interval already cleared
  EXPECT_EQ(mid.intervals[0].begin, 100u);
  EXPECT_EQ(mid.intervals[0].end, 300u);

  const FaultSchedule inside = sched.shifted(600);
  ASSERT_EQ(inside.intervals.size(), 1u);
  EXPECT_EQ(inside.intervals[0].begin, 0u);  // clamped: already active
  EXPECT_EQ(inside.intervals[0].end, 100u);
}

TEST(FaultScheduleCheck, RejectsOverlappingTotalOutage) {
  const arch::InterleaveSpec spec;  // 4 controllers
  const auto ok = FaultSchedule::parse(
      "mc0:off@0..100,mc1:off@0..100,mc2:off@0..100").value();
  EXPECT_TRUE(ok.check(spec).ok());
  const auto dead = FaultSchedule::parse(
      "mc0:off@0..100,mc1:off@0..100,mc2:off@0..100,mc3:off@50..80").value();
  const auto status = dead.check(spec);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offline every controller"),
            std::string::npos);
}

TEST(FaultScheduleCheck, RejectsInvertedBoundsAndBadSpecs) {
  const arch::InterleaveSpec spec;
  auto sched = FaultSchedule::parse("mc0:off@500..100").value();
  EXPECT_FALSE(sched.check(spec).ok());
  auto bad_mc = FaultSchedule::parse("mc9:off@0..10").value();
  EXPECT_FALSE(bad_mc.check(spec).ok());
}

TEST(FaultSchedule, ConstantWrapsEveryFaultClass) {
  FaultSpec spec;
  spec.offline_controllers = {1};
  spec.derates.push_back({2, 0.5});
  spec.slow_banks.push_back({3, 10});
  spec.stragglers.push_back({4, 6});
  spec.offline_sockets = {1};
  spec.socket_derates.push_back({0, 0.5});
  spec.link_faults.push_back({0, 1, 1.0, true});
  const FaultSchedule sched = FaultSchedule::constant(spec);
  ASSERT_EQ(sched.intervals.size(), 7u);
  EXPECT_EQ(sched.event_count(), 0u);  // all intervals start at 0, never clear
  const FaultSpec active = sched.active_at(123);
  EXPECT_TRUE(active.is_offline(1));
  EXPECT_DOUBLE_EQ(active.derate_of(2), 0.5);
  EXPECT_EQ(active.bank_extra(3), 10u);
  EXPECT_EQ(active.straggle_of(4), 6u);
  EXPECT_TRUE(active.is_socket_offline(1));
  EXPECT_DOUBLE_EQ(active.socket_derate_of(0), 0.5);
  EXPECT_TRUE(active.is_link_offline(1, 0));
}

// ---------------------------------------------------------------------------
// NUMA fault classes in the schedule grammar (sock<i>, link<i>-<j>).

TEST(FaultScheduleNuma, SocketAndLinkItemsRoundTrip) {
  const auto sched = FaultSchedule::parse(
      "sock0:off@1e6..5e6,link0-1:derate=0.5@25%..75%,sock1:derate=0.25");
  ASSERT_TRUE(sched.has_value()) << sched.error().message;
  const auto& ivs = sched.value().intervals;
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_TRUE(ivs[0].fault.is_socket_offline(0));
  EXPECT_EQ(ivs[0].begin, 1000000u);
  EXPECT_EQ(ivs[0].end, 5000000u);
  EXPECT_TRUE(ivs[1].relative);
  EXPECT_DOUBLE_EQ(ivs[1].begin_frac, 0.25);
  EXPECT_DOUBLE_EQ(ivs[1].fault.link_derate_of(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ivs[2].fault.socket_derate_of(1), 0.25);
  EXPECT_EQ(ivs[2].end, FaultSchedule::kNever);
  const auto reparsed = FaultSchedule::parse(sched.value().describe());
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().describe(), sched.value().describe());
}

TEST(FaultScheduleNuma, MixedChipAndSocketTimelineRoundTripsAndMerges) {
  // One timeline carrying both hierarchy levels: a controller outage inside a
  // socket derate window, with percent stamps on the socket item.
  const auto sched = FaultSchedule::parse(
      "mc1:off@100..300,sock1:derate=0.5@10%..90%,link0-1:off@200");
  ASSERT_TRUE(sched.has_value()) << sched.error().message;
  const std::string text = sched.value().describe();
  const auto reparsed = FaultSchedule::parse(text);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().describe(), text);

  const FaultSchedule resolved = sched.value().resolved(1000);
  const FaultSpec at250 = resolved.active_at(250);
  EXPECT_TRUE(at250.is_offline(1));
  EXPECT_DOUBLE_EQ(at250.socket_derate_of(1), 0.5);
  EXPECT_TRUE(at250.is_link_offline(0, 1));
  const FaultSpec at950 = resolved.active_at(950);
  EXPECT_FALSE(at950.is_offline(1));
  EXPECT_DOUBLE_EQ(at950.socket_derate_of(1), 1.0);  // cleared at 90%
  EXPECT_TRUE(at950.is_link_offline(0, 1));          // never clears
}

TEST(FaultScheduleNuma, ShiftedPreservesSocketAndLinkFaults) {
  const auto sched = FaultSchedule::parse(
      "sock0:off@100..300,link0-1:derate=0.5@500..700,sock1:derate=0.5@600")
      .value();
  const FaultSchedule mid = sched.shifted(400);
  ASSERT_EQ(mid.intervals.size(), 2u);  // sock0 outage already cleared
  EXPECT_DOUBLE_EQ(mid.intervals[0].fault.link_derate_of(0, 1), 0.5);
  EXPECT_EQ(mid.intervals[0].begin, 100u);
  EXPECT_EQ(mid.intervals[0].end, 300u);
  EXPECT_DOUBLE_EQ(mid.intervals[1].fault.socket_derate_of(1), 0.5);
  EXPECT_EQ(mid.intervals[1].begin, 200u);
  EXPECT_EQ(mid.intervals[1].end, FaultSchedule::kNever);

  const FaultSchedule inside = sched.shifted(650);
  ASSERT_EQ(inside.intervals.size(), 2u);
  EXPECT_EQ(inside.intervals[0].begin, 0u);  // clamped: already active
  EXPECT_EQ(inside.intervals[0].end, 50u);
}

TEST(FaultScheduleNuma, CheckRejectsSocketFaultsOnSingleSocketConfig) {
  const arch::InterleaveSpec spec;
  const auto sched = FaultSchedule::parse("sock0:off@100..200").value();
  EXPECT_FALSE(sched.check(spec).ok());      // default num_sockets = 1
  EXPECT_TRUE(sched.check(spec, 2).ok());
}

TEST(FaultScheduleNuma, CheckRejectsOverlappingTotalSocketOutage) {
  const arch::InterleaveSpec spec;
  const auto ok =
      FaultSchedule::parse("sock0:off@0..100,sock1:off@200..300").value();
  EXPECT_TRUE(ok.check(spec, 2).ok());
  const auto dead =
      FaultSchedule::parse("sock0:off@0..100,sock1:off@50..80").value();
  const auto status = dead.check(spec, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offline every socket"),
            std::string::npos);
}

TEST(FaultScheduleNuma, ParseLimitsRejectOutOfRangeSockets) {
  FaultLimits limits;
  limits.num_controllers = 4;
  limits.num_sockets = 2;
  EXPECT_TRUE(FaultSchedule::parse("sock1:off@50%..75%", limits).has_value());
  const auto bad = FaultSchedule::parse("sock2:off@50%..75%", limits);
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("sock2"), std::string::npos);
  EXPECT_FALSE(FaultSchedule::parse("link0-2:off@10", limits).has_value());
  EXPECT_FALSE(FaultSchedule::parse("mc4:off@10", limits).has_value());
}

// ---------------------------------------------------------------------------
// Flap sugar (sock<i>:flap=<period>).

TEST(FaultScheduleFlap, DescribeRoundTripsThroughParse) {
  const auto sched = FaultSchedule::parse("sock1:flap=400000@20%..80%");
  ASSERT_TRUE(sched.has_value()) << sched.error().message;
  ASSERT_TRUE(sched.value().has_flap());
  ASSERT_EQ(sched.value().intervals.size(), 1u);
  EXPECT_EQ(sched.value().intervals[0].flap_period, 400000u);
  EXPECT_TRUE(sched.value().intervals[0].fault.is_socket_offline(1));
  const auto again = FaultSchedule::parse(sched.value().describe());
  ASSERT_TRUE(again.has_value()) << again.error().message;
  EXPECT_EQ(again.value().describe(), sched.value().describe());
}

TEST(FaultScheduleFlap, ResolvedExpandsIntoAlternatingOffIntervals) {
  // Period 1000 over [0, 2500): dead the first half of each period, so the
  // expansion is sock1:off@0..500, @1000..1500, @2000..2500 — and the
  // expanded schedule carries no flap sugar (the chip never sees it).
  auto sched = FaultSchedule::parse("sock1:flap=1000@0..2500").value();
  const FaultSchedule resolved = sched.resolved(10000);
  EXPECT_FALSE(resolved.has_flap());
  ASSERT_EQ(resolved.intervals.size(), 3u);
  const arch::Cycles begins[] = {0, 1000, 2000};
  const arch::Cycles ends[] = {500, 1500, 2500};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resolved.intervals[i].begin, begins[i]);
    EXPECT_EQ(resolved.intervals[i].end, ends[i]);
    EXPECT_TRUE(resolved.intervals[i].fault.is_socket_offline(1));
  }
  // event_count sees the real transition timeline: 2 arrivals (begin = 0 is
  // the initial state, not a transition) + 3 clears.
  EXPECT_EQ(resolved.event_count(), 5u);
}

TEST(FaultScheduleFlap, PercentStampsResolveBeforeExpansion) {
  auto sched = FaultSchedule::parse("sock1:flap=250@25%..75%").value();
  const FaultSchedule resolved = sched.resolved(1000);
  EXPECT_FALSE(resolved.has_flap());
  ASSERT_FALSE(resolved.intervals.empty());
  EXPECT_EQ(resolved.intervals.front().begin, 250u);
  EXPECT_LE(resolved.intervals.back().end, 750u);
}

TEST(FaultScheduleFlap, CheckRejectsDegenerateFlaps) {
  const arch::InterleaveSpec spec;
  // Unbounded end: the flap never resolves to a timeline.
  const auto unbounded = FaultSchedule::parse("sock1:flap=1000").value();
  ASSERT_FALSE(unbounded.check(spec, 2).ok());
  EXPECT_NE(unbounded.check(spec, 2).error().message.find("bounded end"),
            std::string::npos);
  // A flap needs somewhere for traffic to go while the socket is dead.
  const auto single = FaultSchedule::parse("sock0:flap=1000@0..4000").value();
  ASSERT_FALSE(single.check(spec, 1).ok());
  EXPECT_NE(single.check(spec, 1).error().message.find("multi-socket"),
            std::string::npos);
}

TEST(FaultScheduleFlap, ParseRejectsNonSocketAndBadPeriods) {
  // Flap is schedule-level, socket-only grammar.
  EXPECT_FALSE(FaultSchedule::parse("mc1:flap=1000@0..4000").has_value());
  EXPECT_FALSE(FaultSchedule::parse("sock:flap=1000@0..4000").has_value());
  // Percent periods and zero periods are meaningless.
  EXPECT_FALSE(FaultSchedule::parse("sock1:flap=10%@0..4000").has_value());
  EXPECT_FALSE(FaultSchedule::parse("sock1:flap=0@0..4000").has_value());
}

// ---------------------------------------------------------------------------
// Chip-level behavior.

sim::SimResult run_triad(const sim::SimConfig& cfg, std::size_t n,
                         unsigned threads, unsigned sweeps = 1) {
  trace::VirtualArena arena;
  const arch::AddressMap map(cfg.interleave);
  const auto bases = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, n, map, 128);
  auto wl = kernels::make_triad_workload(bases, n, threads,
                                         sched::Schedule::static_block(), sweeps);
  sim::Chip chip(cfg, arch::equidistant_placement(threads, cfg.topology));
  return chip.run(wl);
}

TEST(ChipSchedule, MidRunOutageProducesEpochBreakdown) {
  constexpr std::size_t kN = 8192;
  constexpr unsigned kThreads = 64;  // enough concurrency to be service-bound

  sim::SimConfig healthy;
  const sim::SimResult base = run_triad(healthy, kN, kThreads);
  ASSERT_TRUE(base.epochs.empty());  // no schedule -> no breakdown
  const arch::Cycles third = base.total_cycles / 3;

  sim::SimConfig cfg;
  cfg.fault_schedule = sim::FaultSchedule::parse(
      "mc1:off@" + std::to_string(third) + ".." + std::to_string(2 * third))
      .value();
  ASSERT_TRUE(cfg.check().ok());
  const sim::SimResult res = run_triad(cfg, kN, kThreads);

  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.epochs.size(), 3u);
  EXPECT_EQ(res.epochs[0].begin, 0u);
  EXPECT_EQ(res.epochs[0].end, third);
  EXPECT_EQ(res.epochs[1].faults, "mc1:off");
  EXPECT_EQ(res.epochs[2].end, res.total_cycles);

  // The dead controller serves (nearly) nothing during its outage epoch but
  // works on both sides of it.
  EXPECT_GT(res.epochs[0].mc_utilization[1], 0.1);
  EXPECT_LT(res.epochs[1].mc_utilization[1],
            0.25 * res.epochs[0].mc_utilization[1]);
  EXPECT_GT(res.epochs[2].mc_utilization[1], 0.1);

  // Outage epoch moves traffic strictly slower than the healthy first epoch.
  EXPECT_LT(res.epochs[1].bandwidth, res.epochs[0].bandwidth);

  // Epoch traffic sums to the whole run's traffic.
  std::uint64_t bytes = 0;
  for (const auto& e : res.epochs) bytes += e.mem_read_bytes + e.mem_write_bytes;
  EXPECT_EQ(bytes, res.mem_read_bytes + res.mem_write_bytes);

  // A transient outage costs time, but less than a permanent one.
  sim::SimConfig always;
  always.faults.offline_controllers = {1};
  const sim::SimResult forever = run_triad(always, kN, kThreads);
  EXPECT_GT(res.total_cycles, base.total_cycles);
  EXPECT_LT(res.total_cycles, forever.total_cycles);
}

TEST(ChipSchedule, ScheduledRunsAreDeterministic) {
  sim::SimConfig cfg;
  cfg.fault_schedule =
      sim::FaultSchedule::parse("mc2:derate=0.25@5000..40000").value();
  const sim::SimResult a = run_triad(cfg, 4096, 8);
  const sim::SimResult b = run_triad(cfg, 4096, 8);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t k = 0; k < a.epochs.size(); ++k)
    EXPECT_EQ(a.epochs[k].mem_read_bytes, b.epochs[k].mem_read_bytes);
}

TEST(ChipSchedule, ConfigRejectsUnresolvedPercentSchedule) {
  sim::SimConfig cfg;
  cfg.fault_schedule = sim::FaultSchedule::parse("mc1:off@25%..75%").value();
  const auto status = cfg.check();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("unresolved percent"),
            std::string::npos);
}

TEST(ChipSchedule, ConfigRejectsBaselinePlusScheduleTotalOutage) {
  sim::SimConfig cfg;
  cfg.faults.offline_controllers = {0, 1, 2};
  cfg.fault_schedule = sim::FaultSchedule::parse("mc3:off@100..200").value();
  const auto status = cfg.check();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("offline every controller"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Analytic composition.

TEST(ScheduledAnalytic, ConstantScheduleMatchesPlainEstimate) {
  const arch::AddressMap map;
  const arch::Calibration cal;
  std::vector<sim::AnalyticStream> logical = {
      {0, true}, {128, false}, {256, false}, {384, false}};
  const auto physical = sim::expand_rfo(logical);

  FaultSpec faults;
  faults.offline_controllers = {1};
  const auto plain =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2, faults);
  const auto composed = sim::estimate_bandwidth_scheduled(
      physical, 32, cal, map, 1.2, faults, FaultSchedule{}, 100000);
  ASSERT_EQ(composed.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(composed.whole.bandwidth, plain.bandwidth);
  EXPECT_DOUBLE_EQ(composed.whole.balance, plain.balance);
}

TEST(ScheduledAnalytic, CompositionIsEpochLengthWeighted) {
  const arch::AddressMap map;
  const arch::Calibration cal;
  std::vector<sim::AnalyticStream> logical = {
      {0, true}, {128, false}, {256, false}, {384, false}};
  const auto physical = sim::expand_rfo(logical);

  const double healthy =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2).bandwidth;
  FaultSpec off1;
  off1.offline_controllers = {1};
  const double degraded =
      sim::estimate_bandwidth(physical, 32, cal, map, 1.2, off1).bandwidth;
  ASSERT_LT(degraded, healthy);

  // Outage covering the middle half of the run: expect 1/2 healthy + 1/2
  // degraded exactly (the model is linear in the weights).
  const auto sched = FaultSchedule::parse("mc1:off@25%..75%").value();
  const auto composed = sim::estimate_bandwidth_scheduled(
      physical, 32, cal, map, 1.2, {}, sched.resolved(100000), 100000);
  ASSERT_EQ(composed.epochs.size(), 3u);
  EXPECT_NEAR(composed.whole.bandwidth, 0.5 * healthy + 0.5 * degraded,
              1e-6 * healthy);
  EXPECT_LT(composed.whole.bandwidth, healthy);
  EXPECT_GT(composed.whole.bandwidth, degraded);
}

}  // namespace
}  // namespace mcopt
