#include "arch/topology.h"

namespace mcopt::arch {
namespace {

constexpr bool is_pow2(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void CacheGeometry::validate() const {
  if (size_bytes == 0 || line_bytes == 0 || associativity == 0)
    throw std::invalid_argument("CacheGeometry: zero field");
  if (!is_pow2(size_bytes) || !is_pow2(line_bytes) || !is_pow2(associativity))
    throw std::invalid_argument("CacheGeometry: fields must be powers of two");
  if (size_bytes % (line_bytes * associativity) != 0)
    throw std::invalid_argument("CacheGeometry: size not divisible by way size");
  if (num_sets() == 0)
    throw std::invalid_argument("CacheGeometry: zero sets");
}

void ChipTopology::validate() const {
  if (num_cores == 0 || threads_per_core == 0 || thread_groups_per_core == 0)
    throw std::invalid_argument("ChipTopology: zero field");
  if (threads_per_core % thread_groups_per_core != 0)
    throw std::invalid_argument("ChipTopology: groups must divide threads/core");
  if (ls_pipes_per_core == 0 || fp_pipes_per_core == 0)
    throw std::invalid_argument("ChipTopology: zero pipes");
  if (clock_ghz <= 0.0)
    throw std::invalid_argument("ChipTopology: non-positive clock");
  l1d.validate();
  l2.validate();
}

Placement equidistant_placement(unsigned num_threads, const ChipTopology& topo) {
  if (num_threads == 0 || num_threads > topo.max_threads())
    throw std::invalid_argument("equidistant_placement: bad thread count");
  Placement p;
  p.hw_strand.resize(num_threads);
  // Distribute threads over cores round-robin so each core receives
  // ceil/floor(num_threads / num_cores) strands, filled in strand order.
  std::vector<unsigned> next_strand(topo.num_cores, 0);
  for (unsigned t = 0; t < num_threads; ++t) {
    const unsigned core = t % topo.num_cores;
    const unsigned strand = next_strand[core]++;
    p.hw_strand[t] = core * topo.threads_per_core + strand;
  }
  return p;
}

Placement packed_placement(unsigned num_threads, const ChipTopology& topo) {
  if (num_threads == 0 || num_threads > topo.max_threads())
    throw std::invalid_argument("packed_placement: bad thread count");
  Placement p;
  p.hw_strand.resize(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) p.hw_strand[t] = t;
  return p;
}

}  // namespace mcopt::arch
