#!/usr/bin/env python3
"""Validate the observability artifacts a bench run emits.

Checks (stdlib only, no third-party deps):
  --trace     Chrome trace_event JSON: parses, events carry ph/name/ts,
              timestamps are non-decreasing, every B has a matching E per
              (pid, tid), and the footer accounting is present.
  --metrics   Prometheus text exposition: expected metric families exist,
              histogram buckets are cumulative and end with +Inf == _count.
  --timeline  Per-controller timeline CSV: header shape, rows march forward
              without overlap per series, utilization stays in [0, 1].

Exit code 0 when every provided artifact passes; 1 with a message per
failure otherwise.
"""

import argparse
import csv
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def check_trace(path, expect_events):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
        return
    if expect_events and not events:
        fail(f"{path}: traceEvents is empty (was tracing enabled?)")
        return
    prev_ts = -1.0
    opens = {}
    for i, ev in enumerate(events):
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} lacks '{key}': {ev}")
                return
        ts = float(ev["ts"])
        if ts < prev_ts:
            fail(f"{path}: event {i} ts {ts} < previous {prev_ts}")
            return
        prev_ts = ts
        lane = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            opens.setdefault(lane, []).append(ev["name"])
        elif ev["ph"] == "E":
            if not opens.get(lane):
                fail(f"{path}: event {i} is an E with no open B on {lane}")
                return
            opens[lane].pop()
    for lane, stack in opens.items():
        if stack:
            fail(f"{path}: unclosed spans {stack} on {lane}")
            return
    other = doc.get("otherData", {})
    for key in ("recorded", "dropped"):
        if key not in other:
            fail(f"{path}: otherData lacks '{key}'")
            return
    print(f"ok: {path}: {len(events)} events, "
          f"recorded={other['recorded']} dropped={other['dropped']}")


def check_metrics(path, families):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"{path}: {e}")
        return
    for family in families:
        if family not in text:
            fail(f"{path}: expected metric family '{family}' is absent")
    # Histogram sanity: cumulative buckets, +Inf bucket equals _count.
    buckets = {}  # name -> list of counts in order of appearance
    counts = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if "_bucket{le=" in name:
            base = name.split("_bucket{le=")[0]
            buckets.setdefault(base, []).append(float(value))
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = float(value)
    for base, series in buckets.items():
        if any(b > a for a, b in zip(series[1:], series)):
            fail(f"{path}: histogram '{base}' buckets are not cumulative: "
                 f"{series}")
        if base in counts and series and series[-1] != counts[base]:
            fail(f"{path}: histogram '{base}' +Inf bucket {series[-1]} != "
                 f"_count {counts[base]}")
    print(f"ok: {path}: {len(buckets)} histogram families, "
          f"{len(text.splitlines())} lines")


CSV_SCHEMA_VERSION = "mcopt-csv v2"


def check_timeline(path):
    try:
        with open(path, newline="", encoding="utf-8") as f:
            lines = f.read().splitlines(keepends=True)
    except OSError as e:
        fail(f"{path}: {e}")
        return
    if not lines:
        fail(f"{path}: empty timeline CSV")
        return
    # Line 1 must carry the writer's schema stamp: a file written under a
    # different column convention is rejected up front instead of misread.
    if not lines[0].startswith(f"# {CSV_SCHEMA_VERSION}"):
        fail(f"{path}: missing '# {CSV_SCHEMA_VERSION}' schema header "
             f"(got: {lines[0].strip()!r})")
        return
    rows = list(csv.reader(lines[1:]))
    if not rows:
        fail(f"{path}: schema header but no CSV header row")
        return
    header = rows[0]
    if header[:4] != ["label", "sample", "begin_cycle", "end_cycle"]:
        fail(f"{path}: unexpected header {header[:4]}")
        return
    mc_cols = [c for c in header[4:] if c.startswith("mc")]
    if not mc_cols or len(mc_cols) != len(header) - 4:
        fail(f"{path}: controller columns malformed: {header[4:]}")
        return
    if len(rows) < 2:
        fail(f"{path}: header but no samples (cadence too coarse?)")
        return
    prev_end = {}
    for i, row in enumerate(rows[1:], start=2):
        label, _, begin, end = row[0], row[1], int(row[2]), int(row[3])
        if end <= begin:
            fail(f"{path}:{i}: empty interval [{begin}, {end})")
            return
        # Rows must march forward without overlapping; gaps are legal (a
        # supervised loop charges migration/scrub cycles between simulated
        # slices, so stitched timelines skip those stretches).
        if label in prev_end and begin < prev_end[label]:
            fail(f"{path}:{i}: series '{label}' overlaps: row starts at "
                 f"{begin} before previous end {prev_end[label]}")
            return
        prev_end[label] = end
        for col, cell in zip(mc_cols, row[4:]):
            if cell == "":  # padding for narrower series
                continue
            util = float(cell)
            if not 0.0 <= util <= 1.0 + 1e-9:
                fail(f"{path}:{i}: {col} utilization {util} outside [0, 1]")
                return
    print(f"ok: {path}: {len(rows) - 1} samples, "
          f"{len(mc_cols)} controllers, {len(prev_end)} series")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--metrics", help="Prometheus text exposition to validate")
    ap.add_argument("--timeline", help="per-controller timeline CSV to validate")
    ap.add_argument("--expect-family", action="append", default=[],
                    help="metric family that must appear (repeatable)")
    ap.add_argument("--allow-empty-trace", action="store_true",
                    help="do not fail on a trace with zero events")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.timeline):
        ap.error("nothing to check: pass --trace, --metrics, or --timeline")
    if args.trace:
        check_trace(args.trace, expect_events=not args.allow_empty_trace)
    if args.metrics:
        families = args.expect_family or ["mcopt_bench_sim_runs_total"]
        check_metrics(args.metrics, families)
    if args.timeline:
        check_timeline(args.timeline)
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
