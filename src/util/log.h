#pragma once
// Minimal leveled logging to stderr. Benches use it for progress lines that
// must not pollute the stdout result tables.

#include <optional>
#include <string>

namespace mcopt::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses a log-level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive, or the numeric values 0-3). Returns nullopt on anything
/// else — callers decide whether that is fatal.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& text);

/// Global threshold; messages below it are dropped. Default: kInfo, or the
/// MCOPT_LOG_LEVEL environment variable when set to a parseable level at
/// startup (an unparseable value is ignored with a warning).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace mcopt::util
