// Unit tests for the SLO error-budget monitor: burn math, window aging on
// the service timeline, the multi-window edge-triggered alert rule, and the
// JSON export obs_query --burn-report reads.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcopt::obs {
namespace {

/// Small windows so a test can age buckets out with tiny cycle counts:
/// fast = 100 cycles / 4 buckets (25 cycles each), slow = 400 / 4.
SloBurnConfig tiny_config() {
  SloBurnConfig cfg;
  cfg.target = 0.9;  // 10% error budget => burn = miss_fraction * 10
  cfg.fast_window = 100;
  cfg.slow_window = 400;
  cfg.buckets = 4;
  cfg.fast_alert = 5.0;
  cfg.slow_alert = 2.0;
  return cfg;
}

TEST(SloBurnConfig, CheckRefusesNonsense) {
  SloBurnConfig cfg = tiny_config();
  EXPECT_TRUE(cfg.check().ok());
  cfg.target = 1.0;
  EXPECT_FALSE(cfg.check().ok());
  cfg = tiny_config();
  cfg.fast_window = cfg.slow_window;  // fast must be strictly shorter
  EXPECT_FALSE(cfg.check().ok());
  cfg = tiny_config();
  cfg.buckets = 1;
  EXPECT_FALSE(cfg.check().ok());
  cfg = tiny_config();
  cfg.fast_alert = 0.0;
  EXPECT_FALSE(cfg.check().ok());
  cfg = tiny_config();
  cfg.slow_window = 0;
  EXPECT_FALSE(cfg.check().ok());
}

TEST(SloMonitor, ConstructorThrowsOnBadConfig) {
  SloBurnConfig cfg = tiny_config();
  cfg.target = -1.0;
  EXPECT_THROW(SloMonitor{cfg}, std::invalid_argument);
}

TEST(SloMonitor, BurnRateIsMissFractionOverBudget) {
  SloBurnConfig cfg = tiny_config();
  // Burn caps at 1/budget = 10 here; unreachable thresholds keep this test
  // about the math, not the alert rule.
  cfg.fast_alert = 50.0;
  cfg.slow_alert = 50.0;
  SloMonitor mon(cfg);
  // 1 miss in 4 outcomes = 25% miss fraction; budget is 10% => burn 2.5.
  mon.record(1, 0, true, 10);
  mon.record(1, 0, false, 11);
  mon.record(1, 0, false, 12);
  mon.record(1, 0, false, 13);
  const auto burns = mon.burns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].tenant, 1u);
  EXPECT_EQ(burns[0].total, 4u);
  EXPECT_EQ(burns[0].missed, 1u);
  EXPECT_DOUBLE_EQ(burns[0].fast_burn, 2.5);
  EXPECT_DOUBLE_EQ(burns[0].slow_burn, 2.5);
  EXPECT_EQ(burns[0].alerts, 0u);
}

TEST(SloMonitor, FastWindowAgesOutMissesTheSlowWindowStillHolds) {
  SloMonitor mon(tiny_config());
  mon.record(1, 0, true, 10);  // fast bucket 0 (25-cycle buckets)
  // Jump far enough that the miss left the 100-cycle fast window but is
  // still inside the 400-cycle slow window (100-cycle buckets).
  mon.record(1, 0, false, 210);
  const auto burns = mon.burns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_DOUBLE_EQ(burns[0].fast_burn, 0.0);   // miss aged out of fast
  EXPECT_DOUBLE_EQ(burns[0].slow_burn, 5.0);   // 1/2 missed over 10% budget
  // Lifetime tallies never age.
  EXPECT_EQ(burns[0].total, 2u);
  EXPECT_EQ(burns[0].missed, 1u);
}

TEST(SloMonitor, OutcomesOlderThanTheWindowAreIgnored) {
  SloMonitor mon(tiny_config());
  mon.record(1, 0, false, 1000);
  mon.record(1, 0, true, 0);  // far older than both windows: no burn impact
  const auto burns = mon.burns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_DOUBLE_EQ(burns[0].fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(burns[0].slow_burn, 0.0);
  EXPECT_EQ(burns[0].missed, 1u);  // still counted in the lifetime tally
}

TEST(SloMonitor, AlertNeedsBothWindowsBurningAndFiresOnlyOnMisses) {
  SloMonitor mon(tiny_config());
  // All-miss traffic: fast burn = slow burn = 10 >= both thresholds, and
  // every recorded miss re-fires (edge-triggered per miss).
  mon.record(2, 1, true, 10);
  mon.record(2, 1, true, 11);
  EXPECT_EQ(mon.alerts_fired(), 2u);
  // A served job while both windows still burn must NOT alert.
  mon.record(2, 1, false, 12);
  EXPECT_EQ(mon.alerts_fired(), 2u);
  const auto alerts = mon.drain_alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].tenant, 2u);
  EXPECT_EQ(alerts[0].slo_class, 1u);
  EXPECT_EQ(alerts[0].at, 10u);
  EXPECT_GE(alerts[0].fast_burn, 5.0);
  EXPECT_GE(alerts[0].slow_burn, 2.0);
  // Drain empties the queue; the lifetime count survives.
  EXPECT_TRUE(mon.drain_alerts().empty());
  EXPECT_EQ(mon.alerts_fired(), 2u);
}

TEST(SloMonitor, NoAlertWhenOnlyTheFastWindowBurns) {
  SloBurnConfig cfg = tiny_config();
  cfg.slow_alert = 9.0;  // slow window must be nearly all-miss to confirm
  SloMonitor mon(cfg);
  // Dilute the slow window with 8 served outcomes spread across it, then
  // miss twice in one fast bucket: fast burns hot, slow stays below 9.
  for (std::uint64_t c = 0; c < 8; ++c) mon.record(1, 0, false, c * 50);
  mon.record(1, 0, true, 401);
  mon.record(1, 0, true, 402);
  EXPECT_EQ(mon.alerts_fired(), 0u);
  const auto burns = mon.burns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_GE(burns[0].fast_burn, cfg.fast_alert);
  EXPECT_LT(burns[0].slow_burn, cfg.slow_alert);
}

TEST(SloMonitor, TracksTenantClassPairsIndependently) {
  SloMonitor mon(tiny_config());
  mon.record(1, 0, true, 10);
  mon.record(1, 1, false, 10);
  mon.record(2, 0, false, 10);
  const auto burns = mon.burns();
  ASSERT_EQ(burns.size(), 3u);  // (1,0), (1,1), (2,0)
  EXPECT_EQ(burns[0].missed, 1u);
  EXPECT_EQ(burns[1].missed, 0u);
  EXPECT_EQ(burns[2].missed, 0u);
}

TEST(SloMonitor, JsonCarriesConfigAndEntries) {
  SloMonitor mon(tiny_config());
  mon.record(3, 2, true, 10);
  const std::string doc = mon.json();
  EXPECT_NE(doc.find("\"target\":0.900000"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"fast_window\":100"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"slow_window\":400"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"tenant\":3,\"slo_class\":2,\"total\":1,"
                     "\"missed\":1"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"alerts\":1"), std::string::npos) << doc;
}

TEST(SloMonitor, ResetDropsEntriesAlertsAndPending) {
  SloMonitor mon(tiny_config());
  mon.record(1, 0, true, 10);
  ASSERT_EQ(mon.alerts_fired(), 1u);
  mon.reset();
  EXPECT_TRUE(mon.burns().empty());
  EXPECT_TRUE(mon.drain_alerts().empty());
  EXPECT_EQ(mon.alerts_fired(), 0u);
}

}  // namespace
}  // namespace mcopt::obs
