#pragma once
// NUMA route resolution: which socket serves each home domain, and at what
// cost, under an active fault set.
//
// The per-socket Chip DES never sees other chips directly; it sees a routing
// table derived from the node topology and the active faults. For socket
// `self` the table answers, per home domain h:
//
//   * serving socket  — h itself when healthy, or the survivor its addresses
//     fail over to (FaultSpec::socket_remap), re-homed to the nearest
//     *reachable* survivor when link faults partition the interconnect;
//   * path latency    — summed per-hop extra fill latency self -> serving;
//   * path line cost  — summed per-hop cycles per 64 B line, each hop scaled
//     by its link derate, the whole path scaled by the serving socket's
//     memory derate (a slow socket serves remote fills slowly too).
//
// Routes are shortest paths by line cost (bandwidth is the binding NUMA
// constraint; latency breaks ties) over the surviving links — Floyd-Warshall
// on a <= 8-socket matrix, recomputed at every fault-schedule transition.

#include <vector>

#include "arch/calibration.h"
#include "arch/numa.h"
#include "sim/faults.h"
#include "util/expected.h"

namespace mcopt::sim {

/// Resolved routing table for one observer socket under one fault set.
struct NumaRoutes {
  /// Entry h: socket whose memory serves home domain h (self included).
  std::vector<unsigned> home_serving;
  /// Entry t: summed extra fill latency of the surviving path self -> t
  /// (0 for t == self; unspecified when !reachable[t]).
  std::vector<arch::Cycles> latency;
  /// Entry t: effective cycles per line of the surviving path self -> t,
  /// link derates and t's socket derate applied (0 for t == self).
  std::vector<arch::Cycles> line_cycles;
  /// Entry t: true when a surviving path self -> t exists.
  std::vector<bool> reachable;
};

/// Resolves the routing table of socket `self` under `active`. Requires
/// active.check(..., node.num_sockets) clean and
/// check_numa_connectivity(node, active) clean; under those preconditions
/// every home domain resolves to a reachable surviving socket.
[[nodiscard]] NumaRoutes resolve_numa_routes(const arch::NodeTopology& node,
                                             const FaultSpec& active,
                                             unsigned self);

/// Connectivity validation: under `active`, every socket must reach at least
/// one surviving memory domain over surviving links (a compute socket cut
/// off from all live memory cannot make progress, and silently serving it
/// locally would fake resilience). Reports every violation at once.
[[nodiscard]] util::Status check_numa_connectivity(
    const arch::NodeTopology& node, const FaultSpec& active);

}  // namespace mcopt::sim
