#pragma once
// Minimal RFC-4180-ish CSV writer so bench harnesses can dump machine-readable
// results next to the human-readable tables (use --csv <path>).

#include <fstream>
#include <string>
#include <vector>

namespace mcopt::util {

/// Streaming CSV writer. Quotes cells containing separators/quotes/newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row. Throws std::runtime_error if the underlying stream
  /// failed (disk full, path removed) — results must never be lost silently.
  void add_row(const std::vector<std::string>& cells);

  /// Flushes buffered rows to disk; throws std::runtime_error on I/O failure.
  void flush();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Escape a single cell per RFC 4180 (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace mcopt::util
