// Chaos soak: seeded fuzzing of transient-fault schedules against the
// self-healing supervisor's invariants.
//
// Every seed deterministically generates a random FaultSchedule (1-3 timed
// intervals drawn from all four fault classes), runs the supervised vector
// triad against it, and checks four invariants:
//
//   I1  supervision never loses: supervised bandwidth >= unsupervised
//       bandwidth * (1 - eps) under the same schedule and starting layout;
//   I2  replans are sound: after every committed migration the stream bases
//       land on planned-set controllers, spread as evenly as the pigeonhole
//       principle allows (pairwise distinct when streams <= survivors);
//   I3  the DES and the analytic model agree per epoch (fixed planned
//       layout, no supervision) within a bounded ratio;
//   I4  runs end un-degraded: schedules clear by 85% of the horizon, so the
//       final diagnosis must be healthy and the replan count bounded by the
//       schedule's transition count (+2 for the initial layout heal and one
//       backoff retry).
//
// The seed of every run is printed; any failure is replayable with --seed N
// (and appended to --fail-log for CI artifact upload). --reference runs the
// fixed reference schedule (mc1:off@25%..75%) and writes the supervised vs
// unsupervised triad comparison to BENCH_supervisor.json. --sockets N (>= 2)
// switches to socket-granular NUMA chaos: seeded sock/link fault schedules
// against the supervised node loop's failover invariants (N1-N3 below).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common.h"
#include "numa_common.h"
#include "overload_common.h"
#include "runtime/checkpoint.h"
#include "runtime/durable/service_handle.h"
#include "runtime/numa_loop.h"
#include "runtime/supervised_loop.h"
#include "seg/integrity.h"
#include "seg/planner.h"
#include "util/backoff.h"
#include "util/crc.h"
#include "util/prng.h"
#include "util/timer.h"

namespace {

using namespace mcopt;

struct SoakParams {
  std::size_t n = 8192;
  unsigned threads = 32;
  unsigned slices = 10;
  /// Fail-back tuning for the supervised modes (--flap, --sockets N),
  /// parsed and check()-validated from the shared recovery flags.
  runtime::RecoveryConfig recovery{};
};

/// Draws a 1-3 interval schedule over percent-relative bounds. Intervals
/// begin in [10%, 50%] of the run and always clear by 85%, so every run has
/// a healthy tail (invariant I4's precondition).
sim::FaultSchedule random_schedule(util::Xoshiro256& rng,
                                   const SoakParams& params,
                                   const arch::InterleaveSpec& spec) {
  sim::FaultSchedule sched;
  const unsigned intervals = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < intervals; ++i) {
    sim::FaultSchedule::Interval iv;
    iv.relative = true;
    iv.begin_frac = rng.uniform(0.10, 0.50);
    iv.end_frac = iv.begin_frac + rng.uniform(0.10, 0.85 - iv.begin_frac);
    switch (rng.below(4)) {
      case 0:
        iv.fault.offline_controllers.push_back(
            static_cast<unsigned>(rng.below(spec.num_controllers())));
        break;
      case 1:
        iv.fault.derates.push_back(
            {static_cast<unsigned>(rng.below(spec.num_controllers())),
             rng.uniform(0.25, 0.75)});
        break;
      case 2:
        iv.fault.slow_banks.push_back(
            {static_cast<unsigned>(rng.below(spec.num_banks())),
             8 + rng.below(33)});
        break;
      default:
        iv.fault.stragglers.push_back(
            {static_cast<unsigned>(rng.below(params.threads)),
             4 + rng.below(29)});
        break;
    }
    sched.intervals.push_back(std::move(iv));
  }
  return sched;
}

/// Horizon estimate for resolving percent bounds: one unsupervised planned
/// sweep, scaled to the slice count.
arch::Cycles estimate_horizon(const SoakParams& params,
                              const runtime::LoopConfig& base) {
  trace::VirtualArena arena;
  const arch::AddressMap map(base.sim.interleave);
  const auto planned = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  runtime::LoopConfig probe = base;
  probe.slices = 1;
  probe.supervise = false;
  probe.sim.fault_schedule = {};
  const auto one = runtime::run_supervised_triad(arena, planned, params.n, probe);
  return one.total_cycles * base.slices;
}

struct SeedOutcome {
  bool pass = true;
  std::vector<std::string> failures;

  void fail(const std::string& what) {
    pass = false;
    failures.push_back(what);
  }
};

/// I2: committed migrations place the four stream bases on planned-set
/// controllers, as spread out as the pigeonhole principle allows.
void check_replan_soundness(const runtime::LoopResult& sup,
                            const arch::AddressMap& map, SeedOutcome& out) {
  for (const auto& replan : sup.replan_log) {
    std::vector<unsigned> count(map.spec().num_controllers(), 0);
    for (const arch::Addr base : replan.bases) {
      const unsigned c = map.controller_of(base);
      bool in_set = false;
      for (const unsigned s : replan.plan_set) in_set |= (s == c);
      if (!in_set)
        out.fail("I2: stream base on controller " + std::to_string(c) +
                 " outside planned set");
      ++count[c];
    }
    const auto streams = static_cast<unsigned>(replan.bases.size());
    const auto survivors = static_cast<unsigned>(replan.plan_set.size());
    const unsigned limit =
        survivors == 0 ? 0 : (streams + survivors - 1) / survivors;
    for (unsigned c = 0; c < count.size(); ++c)
      if (count[c] > limit)
        out.fail("I2: controller " + std::to_string(c) + " carries " +
                 std::to_string(count[c]) + " streams (pigeonhole limit " +
                 std::to_string(limit) + ")");
  }
}

/// I3: per-epoch DES bandwidth vs the analytic model, fixed planned layout.
void check_epoch_model(const SoakParams& params,
                       const runtime::LoopConfig& base,
                       const sim::FaultSchedule& resolved, SeedOutcome& out) {
  trace::VirtualArena arena;
  const arch::AddressMap map(base.sim.interleave);
  const auto bases = kernels::triad_layout_bases(
      arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  sim::SimConfig cfg = base.sim;
  cfg.fault_schedule = resolved;
  auto wl = kernels::make_triad_workload(bases, params.n, params.threads,
                                         sched::Schedule::static_block(),
                                         base.slices);
  sim::Chip chip(cfg, arch::equidistant_placement(params.threads, cfg.topology));
  const sim::SimResult res = chip.run(wl);

  const std::vector<sim::AnalyticStream> logical = {
      {bases[0], true}, {bases[1], false}, {bases[2], false}, {bases[3], false}};
  const auto physical = sim::expand_rfo(logical);
  const auto est = sim::estimate_bandwidth_scheduled(
      physical, params.threads, cfg.calibration, map, cfg.topology.clock_ghz,
      cfg.faults, resolved, res.total_cycles);

  for (std::size_t k = 0; k < res.epochs.size() && k < est.epochs.size(); ++k) {
    const auto& epoch = res.epochs[k];
    if (epoch.length() < res.total_cycles / 20) continue;  // too short to judge
    const double model = est.epochs[k].estimate.bandwidth;
    if (model <= 0.0 || epoch.bandwidth <= 0.0) continue;
    const double ratio = epoch.bandwidth / model;
    if (ratio < 1.0 / 3.0 || ratio > 3.0)
      out.fail("I3: epoch " + std::to_string(k) + " (" + epoch.faults +
               ") DES/analytic ratio " + std::to_string(ratio) +
               " outside [1/3, 3]");
  }
}

SeedOutcome run_seed(std::uint64_t seed, const SoakParams& params,
                     bench::ObsGuard& obs) {
  SeedOutcome out;
  util::Xoshiro256 rng(seed);
  runtime::LoopConfig base;
  base.threads = params.threads;
  base.slices = params.slices;
  base.seed = seed;
  obs.apply(base.sim);

  const sim::FaultSchedule raw =
      random_schedule(rng, params, base.sim.interleave);
  const arch::Cycles horizon = estimate_horizon(params, base);
  const sim::FaultSchedule resolved = raw.resolved(horizon);
  const auto status = resolved.check(base.sim.interleave);
  if (!status.ok()) {
    // The generator never offlines every controller (<=3 intervals, 4
    // controllers), so a reject here is a generator bug, not a skip.
    out.fail("generator produced invalid schedule: " + status.error().message);
    return out;
  }
  std::printf("seed %" PRIu64 ": schedule %s\n", seed,
              resolved.describe().c_str());

  const arch::AddressMap map(base.sim.interleave);
  base.sim.fault_schedule = resolved;

  // Both contenders start from the pathological aliased layout; the
  // supervised one must detect and heal it, faults or not.
  trace::VirtualArena sup_arena;
  const auto sup_bases = kernels::triad_layout_bases(
      sup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig sup_cfg = base;
  sup_cfg.supervise = true;
  const auto sup =
      runtime::run_supervised_triad(sup_arena, sup_bases, params.n, sup_cfg);
  obs.add_timeline("seed=" + std::to_string(seed), sup.mc_timeline);

  trace::VirtualArena unsup_arena;
  const auto unsup_bases = kernels::triad_layout_bases(
      unsup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig unsup_cfg = base;
  unsup_cfg.supervise = false;
  const auto unsup = runtime::run_supervised_triad(unsup_arena, unsup_bases,
                                                   params.n, unsup_cfg);

  // I1: supervision never loses.
  if (sup.bandwidth < unsup.bandwidth * 0.98)
    out.fail("I1: supervised " + std::to_string(sup.bandwidth / 1e9) +
             " GB/s < unsupervised " + std::to_string(unsup.bandwidth / 1e9) +
             " GB/s");

  check_replan_soundness(sup, map, out);
  check_epoch_model(params, base, resolved, out);

  // I4: the schedule cleared by 85% of the horizon, so the run must end
  // believed-healthy with a bounded replan count (no thrash).
  if (sup.final_diagnosis.any())
    out.fail("I4: final diagnosis not healthy: " +
             sup.final_diagnosis.describe());
  const unsigned replan_budget =
      static_cast<unsigned>(resolved.event_count()) + 2;
  if (sup.replans > replan_budget)
    out.fail("I4: " + std::to_string(sup.replans) + " replans exceed budget " +
             std::to_string(replan_budget) + " (thrash)");

  std::printf("  supervised %.2f GB/s (replans=%u suppressed=%u declined=%u) "
              "unsupervised %.2f GB/s -> %s\n",
              sup.bandwidth / 1e9, sup.replans, sup.suppressed, sup.declined,
              unsup.bandwidth / 1e9, out.pass ? "PASS" : "FAIL");
  for (const auto& f : out.failures) std::printf("    %s\n", f.c_str());
  return out;
}

int run_reference(const SoakParams& params, const std::string& json_path,
                  bench::ObsGuard& obs) {
  runtime::LoopConfig base;
  base.threads = params.threads;
  base.slices = params.slices;
  obs.apply(base.sim);

  const arch::Cycles horizon = estimate_horizon(params, base);
  base.sim.fault_schedule = bench::parse_schedule_knob(
      "mc1:off@25%..75%", base.sim, horizon);
  const arch::AddressMap map(base.sim.interleave);

  trace::VirtualArena sup_arena;
  const auto sup_bases = kernels::triad_layout_bases(
      sup_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig sup_cfg = base;
  sup_cfg.supervise = true;
  const auto sup =
      runtime::run_supervised_triad(sup_arena, sup_bases, params.n, sup_cfg);
  obs.add_timeline("reference", sup.mc_timeline);

  trace::VirtualArena aliased_arena;
  const auto aliased_bases = kernels::triad_layout_bases(
      aliased_arena, kernels::TriadLayout::kAligned8k, params.n, map);
  runtime::LoopConfig unsup_cfg = base;
  unsup_cfg.supervise = false;
  const auto aliased = runtime::run_supervised_triad(
      aliased_arena, aliased_bases, params.n, unsup_cfg);

  trace::VirtualArena planned_arena;
  const auto planned_bases = kernels::triad_layout_bases(
      planned_arena, kernels::TriadLayout::kPlannedOffsets, params.n, map);
  const auto planned = runtime::run_supervised_triad(
      planned_arena, planned_bases, params.n, unsup_cfg);

  const double recovery = bench::checked_rate(
      sup.bandwidth / aliased.bandwidth, "recovery ratio");
  std::printf(
      "# reference schedule mc1:off@25%%..75%%, triad n=%zu, %u threads, "
      "%u sweeps\n"
      "supervised (aliased start)    %.3f GB/s (replans=%u suppressed=%u "
      "declined=%u)\n"
      "unsupervised aliased          %.3f GB/s\n"
      "unsupervised planned          %.3f GB/s\n"
      "recovery ratio                %.3fx (acceptance: >= 1.3x)\n",
      params.n, params.threads, params.slices, sup.bandwidth / 1e9,
      sup.replans, sup.suppressed, sup.declined, aliased.bandwidth / 1e9,
      planned.bandwidth / 1e9, recovery);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("chaos_soak: cannot write " + json_path);
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"supervised_triad_reference\",\n"
        "  \"schedule\": \"mc1:off@25%%..75%%\",\n"
        "  \"n\": %zu,\n"
        "  \"threads\": %u,\n"
        "  \"sweeps\": %u,\n"
        "  \"supervised_gbs\": %.4f,\n"
        "  \"unsupervised_aliased_gbs\": %.4f,\n"
        "  \"unsupervised_planned_gbs\": %.4f,\n"
        "  \"recovery_ratio\": %.4f,\n"
        "  \"replans\": %u,\n"
        "  \"suppressed\": %u,\n"
        "  \"declined\": %u,\n"
        "  \"migration_cycle_share\": %.6f,\n"
        "  \"metrics\": %s\n"
        "}\n",
        params.n, params.threads, params.slices, sup.bandwidth / 1e9,
        aliased.bandwidth / 1e9, planned.bandwidth / 1e9, recovery,
        sup.replans, sup.suppressed, sup.declined,
        static_cast<double>(sup.migration_cycles) /
            static_cast<double>(sup.total_cycles),
        obs::MetricsRegistry::instance().json().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return recovery >= 1.3 ? 0 : 1;
}

// --- data-integrity chaos: --flips and --kill-resume ----------------------

std::uint32_t field_crc(const seg::seg_array<double>& g) {
  util::Crc32c crc;
  for (std::size_t i = 0; i < g.num_segments(); ++i)
    crc.update(g.segment(i).begin(), g.segment(i).size() * sizeof(double));
  return crc.value();
}

/// --flips mode: native Jacobi with CRC-guarded segments under seeded
/// bit-flip injection at a sweep of per-word rates. For every rate the run
/// must detect EVERY injected corruption (CRC32C catches any single-bit
/// error by construction), rebuild the damaged rows from the previous
/// field, and finish bitwise-identical to an uninjected shadow run. The
/// healthy-path (rate 0) pass reports the CRC seal+verify overhead; only
/// soundness — zero undetected corruptions, bitwise recovery — affects the
/// exit code.
int run_flip_sweep(std::size_t n, unsigned sweeps, std::uint64_t seed) {
  const auto schedule = sched::Schedule::static_block();
  const double rates[] = {0.0, 1e-6, 1e-5, 1e-4, 1e-3};
  bool pass = true;

  std::printf("# flip-rate sweep: native Jacobi %zux%zu, %u sweeps, "
              "CRC32C-guarded rows, seed %" PRIu64 "\n\n",
              n, n, sweeps, seed);
  std::printf("%-10s %-10s %-10s %-12s %-10s %s\n", "rate", "injected",
              "detected", "undetected", "rebuilt", "recovered");

  double plain_seconds = 0.0;
  double guarded_seconds = 0.0;
  for (const double rate : rates) {
    util::Xoshiro256 rng(seed);
    auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto sa = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto sb = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    kernels::init_jacobi(a);
    kernels::init_jacobi(b);
    kernels::init_jacobi(sa);
    kernels::init_jacobi(sb);
    seg::SegmentGuard<double> ga(a), gb(b);
    struct Half {
      seg::seg_array<double>* grid;
      seg::SegmentGuard<double>* guard;
    };
    Half cur{&a, &ga}, next{&b, &gb};
    seg::seg_array<double>* shadow_cur = &sa;
    seg::seg_array<double>* shadow_next = &sb;

    std::uint64_t injected = 0, detected = 0, undetected = 0, rebuilt = 0;
    util::Timer timer;
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
      kernels::jacobi_sweep_seconds(*cur.grid, *next.grid, schedule);
      next.guard->seal();
      std::swap(cur, next);
      kernels::jacobi_sweep_seconds(*shadow_cur, *shadow_next, schedule);
      std::swap(shadow_cur, shadow_next);

      // Inject: each word of the current field flips one random bit with
      // probability `rate` (counter-mode draws; seeded, replayable).
      std::vector<bool> hit(n, false);
      for (std::size_t s = 0; s < n; ++s)
        for (std::size_t j = 0; j < n; ++j)
          if (rng.uniform() < rate) {
            auto& word = cur.grid->segment(s)[j];
            std::uint64_t bits;
            __builtin_memcpy(&bits, &word, 8);
            bits ^= std::uint64_t{1} << rng.below(64);
            __builtin_memcpy(&word, &bits, 8);
            hit[s] = true;
            ++injected;
          }

      const auto flagged = cur.guard->corrupted();
      std::vector<bool> caught(n, false);
      for (const std::size_t s : flagged) caught[s] = true;
      for (std::size_t s = 0; s < n; ++s)
        if (hit[s] && !caught[s]) ++undetected;
      detected += flagged.size();

      if (!flagged.empty()) {
        const auto report = cur.guard->scrub([&](std::size_t s) {
          kernels::jacobi_rebuild_row(*cur.grid, *next.grid, s);
          return true;
        });
        rebuilt += report.rebuilt.size();
      }
    }
    const double seconds = timer.seconds();
    if (rate == 0.0) guarded_seconds = seconds;

    const bool recovered = field_crc(*cur.grid) == field_crc(*shadow_cur);
    if (undetected != 0 || !recovered) pass = false;
    std::printf("%-10.0e %-10" PRIu64 " %-10" PRIu64 " %-12" PRIu64
                " %-10" PRIu64 " %s\n",
                rate, injected, detected, undetected, rebuilt,
                recovered ? "bitwise" : "MISMATCH");
  }

  // Healthy-path overhead: the same run without any guard.
  {
    auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    kernels::init_jacobi(a);
    kernels::init_jacobi(b);
    util::Timer timer;
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
      kernels::jacobi_sweep_seconds(a, b, schedule);
      std::swap(a, b);
    }
    plain_seconds = timer.seconds();
  }
  if (plain_seconds > 0.0)
    std::printf("\nhealthy-path CRC overhead: %.2f%% (guarded %.4fs vs plain "
                "%.4fs; informational, not asserted)\n",
                100.0 * (guarded_seconds - plain_seconds) / plain_seconds,
                guarded_seconds, plain_seconds);
  std::printf("flip sweep: %s\n", pass ? "PASS (zero undetected corruptions)"
                                       : "FAIL");
  return pass ? 0 : 1;
}

#ifndef _WIN32
/// Child body for --kill-resume: a checkpointing native Jacobi solve that
/// the parent SIGKILLs at a random point.
[[noreturn]] void kill_resume_child(std::size_t n, unsigned sweeps,
                                    unsigned every, const std::string& ck) {
  auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
  kernels::init_jacobi(a);
  kernels::init_jacobi(b);
  seg::seg_array<double>* cur = &a;
  seg::seg_array<double>* next = &b;
  for (unsigned done = 0; done < sweeps;) {
    kernels::jacobi_sweep_seconds(*cur, *next, sched::Schedule::static_block());
    std::swap(cur, next);
    ++done;
    if (done % every == 0 || done == sweeps)
      if (!runtime::save_jacobi_checkpoint(ck, *cur, done).ok()) _exit(3);
  }
  _exit(0);
}

/// --kill-resume mode: fork the checkpointing solve, SIGKILL it at a seeded
/// random moment (possibly mid-checkpoint-write — the atomic-rename
/// protocol must leave a loadable file or none), resume from whatever
/// survives, and require the final field to be bitwise identical to an
/// uninterrupted run.
int run_kill_resume(std::size_t n, unsigned sweeps, unsigned every,
                    const std::vector<std::uint64_t>& seeds) {
  // Uninterrupted reference (also calibrates the kill window).
  std::uint32_t ref_crc;
  double ref_seconds;
  {
    auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    kernels::init_jacobi(a);
    kernels::init_jacobi(b);
    seg::seg_array<double>* cur = &a;
    seg::seg_array<double>* next = &b;
    util::Timer timer;
    for (unsigned done = 0; done < sweeps; ++done) {
      kernels::jacobi_sweep_seconds(*cur, *next,
                                    sched::Schedule::static_block());
      std::swap(cur, next);
    }
    ref_seconds = timer.seconds();
    ref_crc = field_crc(*cur);
  }
  std::printf("# kill-and-resume: Jacobi %zux%zu, %u sweeps, checkpoint "
              "every %u; reference FIELD_CRC=0x%08x (%.3fs)\n\n",
              n, n, sweeps, every, ref_crc, ref_seconds);

  unsigned failures = 0;
  for (const std::uint64_t seed : seeds) {
    util::Xoshiro256 rng(seed);
    const std::string ck =
        "chaos_kill_" + std::to_string(seed) + ".ckpt";
    std::remove(ck.c_str());
    std::remove((ck + ".tmp").c_str());

    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "chaos_soak: fork failed\n");
      return 2;
    }
    if (pid == 0) kill_resume_child(n, sweeps, every, ck);

    // The child also pays fork/init and one fsync per checkpoint, so its
    // wall time exceeds the reference's; a window of several multiples
    // lands kills before the first checkpoint, mid-run, and near the end.
    const double kill_after =
        rng.uniform(0.0, ref_seconds * 4.0 + 0.02 * static_cast<double>(
                                                        sweeps / every));
    usleep(static_cast<useconds_t>(kill_after * 1e6));
    kill(pid, SIGKILL);
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);

    // Resume from whatever the dead child left behind. A missing file means
    // it died before the first checkpoint: start over. A present file MUST
    // load — a refusal here would mean the atomic-rename protocol tore.
    auto a = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    auto b = kernels::make_jacobi_grid(n, kernels::jacobi_plain_spec());
    kernels::init_jacobi(a);
    kernels::init_jacobi(b);
    seg::seg_array<double>* cur = &a;
    seg::seg_array<double>* next = &b;
    unsigned done = 0;
    std::string note = "no checkpoint yet";
    auto state = runtime::load_jacobi_checkpoint(ck);
    if (state) {
      if (!runtime::apply_jacobi_state(state.value(), *cur).ok()) {
        std::printf("seed %" PRIu64 ": FAIL (checkpoint state rejected)\n",
                    seed);
        ++failures;
        continue;
      }
      done = static_cast<unsigned>(state.value().sweeps);
      note = "resumed at sweep " + std::to_string(done);
    } else if (state.error().message.find("cannot open") == std::string::npos) {
      // File exists but refused to load: torn write escaped the protocol.
      std::printf("seed %" PRIu64 ": FAIL (%s)\n", seed,
                  state.error().message.c_str());
      ++failures;
      continue;
    }
    for (; done < sweeps; ++done) {
      kernels::jacobi_sweep_seconds(*cur, *next,
                                    sched::Schedule::static_block());
      std::swap(cur, next);
    }
    const std::uint32_t crc = field_crc(*cur);
    const bool ok = crc == ref_crc;
    std::printf("seed %" PRIu64 ": killed at %.3fs, %s -> FIELD_CRC=0x%08x "
                "%s\n",
                seed, kill_after, note.c_str(), crc, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
    std::remove(ck.c_str());
    std::remove((ck + ".tmp").c_str());
  }
  std::printf("\nkill-and-resume: %zu seeds, %u failing\n", seeds.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

// --- durable-service kill chaos: --kill-service ---------------------------

/// Two-tenant accounting-mode durable service; tenant 2's tight byte quota
/// makes door sheds part of the reconciled history (same shape as the
/// tier-1 DurabilityRegression, seed-perturbed job sizes).
runtime::durable::DurableConfig kill_service_config(const std::string& dir) {
  runtime::durable::DurableConfig cfg;
  cfg.dir = dir;
  cfg.service.executor.num_workers = 2;
  cfg.service.executor.run_kernels = false;
  cfg.service.executor.lane_capacity = {4096, 4096, 4096};
  cfg.service.executor.seed = 99;
  cfg.tenants.push_back({.name = "steady",
                         .weight = 2.0,
                         .slo = runtime::service::SloClass::kBatch});
  cfg.tenants.push_back({.name = "capped",
                         .weight = 1.0,
                         .quota_bytes_per_s = 250000.0,
                         .burst_seconds = 1.0,
                         .slo = runtime::service::SloClass::kBatch,
                         .breaker_trip_threshold = 6});
  return cfg;
}

constexpr std::uint64_t kKillServiceJobs = 48;
constexpr std::uint64_t kKillServiceBatch = 8;

runtime::exec::JobSpec kill_service_job(std::uint64_t seed, std::uint64_t id) {
  runtime::exec::JobSpec spec;
  spec.kind = runtime::exec::JobKind::kTriad;
  spec.n = 2048 + 128 * ((id + seed) % 5);
  spec.iterations = 1 + static_cast<unsigned>(id % 3);
  spec.arrival = id * 20000;
  return spec;
}

runtime::service::TenantId kill_service_tenant(std::uint64_t id) {
  return 1 + static_cast<runtime::service::TenantId>(id % 2);
}

/// Records "every id <= max_id is acked" — written only AFTER flush()
/// returned and fsync'd before the rename, so the marker never overstates
/// what the journal committed.
void write_service_ack(const std::string& dir, std::uint64_t max_id) {
  const std::string tmp = dir + "/acked.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%llu\n", static_cast<unsigned long long>(max_id));
  std::fflush(f);
  fsync(fileno(f));
  std::fclose(f);
  std::rename(tmp.c_str(), (dir + "/acked.txt").c_str());
}

std::uint64_t read_service_ack(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/acked.txt").c_str(), "rb");
  if (f == nullptr) return 0;
  unsigned long long v = 0;
  const int got = std::fscanf(f, "%llu", &v);
  std::fclose(f);
  return got == 1 ? v : 0;
}

/// The child's serving loop: batch submissions, group-commit (ack) each
/// batch, pump outcomes, checkpoint occasionally, sleep between batches so
/// the parent's SIGKILL lands mid-stream.
bool kill_service_workload(const std::string& dir, std::uint64_t seed,
                           unsigned inter_batch_us) {
  auto handle =
      runtime::durable::ServiceHandle::open(kill_service_config(dir));
  if (!handle) return false;
  runtime::durable::ServiceHandle& h = *handle.value();
  for (std::uint64_t first = 1; first <= kKillServiceJobs;
       first += kKillServiceBatch) {
    const std::uint64_t last =
        std::min(kKillServiceJobs, first + kKillServiceBatch - 1);
    for (std::uint64_t id = first; id <= last; ++id)
      (void)h.submit(kill_service_tenant(id), id, kill_service_job(seed, id));
    if (!h.flush().ok()) return false;
    write_service_ack(dir, last);
    (void)h.pump();
    if (((first / kKillServiceBatch) % 3) == 2 && !h.checkpoint().ok())
      return false;
    if (inter_batch_us > 0) usleep(inter_batch_us);
  }
  return h.drain(nullptr).ok();
}

/// --kill-service mode: fork the durable serving loop, SIGKILL it at a
/// seeded random instant (possibly mid-journal-write), restart on the same
/// directory, and hold the crash-consistency invariants:
///
///   K1  recovery always succeeds — a torn tail is truncated and reported,
///       never refused;
///   K2  zero acknowledged-submission loss: every id at or below the
///       child's last durable ack marker is known after restart;
///   K3  byte-exact ledger reconciliation: after the client retries the
///       whole stream (duplicates dedupe) and drains, per-tenant completed
///       counts, served bytes, and typed sheds equal an uninterrupted
///       reference run's — no loss AND no double execution;
///   K4  replay idempotence: a further restart is sealed, re-tears nothing,
///       and reports the same ledger.
int run_kill_service(const std::vector<std::uint64_t>& seeds,
                     const std::string& fail_path) {
  namespace fs = std::filesystem;
  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const std::uint64_t seed : seeds) {
    util::Xoshiro256 rng(seed);
    const fs::path root =
        fs::temp_directory_path() / ("chaos_killsvc_" + std::to_string(seed));
    std::error_code ec;
    fs::remove_all(root, ec);
    fs::create_directories(root / "ref");
    fs::create_directories(root / "kill");
    const std::string ref_dir = (root / "ref").string();
    const std::string kill_dir = (root / "kill").string();
    std::vector<std::string> fails;

    // Uninterrupted reference: the ledger the killed run must reconcile to.
    std::vector<runtime::durable::TenantLedger> want;
    if (!kill_service_workload(ref_dir, seed, 0)) {
      fails.emplace_back("reference run failed");
    } else {
      auto ref = runtime::durable::ServiceHandle::open(
          kill_service_config(ref_dir));
      if (!ref)
        fails.emplace_back("reference reopen refused: " + ref.error().message);
      else
        want = ref.value()->ledger();
    }

    const unsigned kill_after_us =
        fails.empty() ? 500 + static_cast<unsigned>(rng() % 30000) : 0;
    if (fails.empty()) {
      const pid_t pid = fork();
      if (pid < 0) {
        std::fprintf(stderr, "chaos_soak: fork failed\n");
        return 2;
      }
      if (pid == 0) {
        const bool ok = kill_service_workload(kill_dir, seed, 3000);
        _exit(ok ? 0 : 42);
      }
      usleep(kill_after_us);
      kill(pid, SIGKILL);
      int wstatus = 0;
      waitpid(pid, &wstatus, 0);
      if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0)
        fails.emplace_back("child failed before the kill landed");
    }

    if (fails.empty()) {
      const std::uint64_t acked = read_service_ack(kill_dir);
      auto handle = runtime::durable::ServiceHandle::open(
          kill_service_config(kill_dir));
      if (!handle) {
        // K1: refusal after SIGKILL means recovery broke.
        fails.emplace_back("recovery refused: " + handle.error().message);
      } else {
        runtime::durable::ServiceHandle& h = *handle.value();
        for (std::uint64_t id = 1; id <= acked; ++id)
          if (h.poll(id).state ==
              runtime::durable::SubmissionState::kUnknown) {
            fails.emplace_back("acked id " + std::to_string(id) +
                               " lost (K2)");
            break;
          }
        for (std::uint64_t id = 1; id <= kKillServiceJobs; ++id)
          (void)h.submit(kill_service_tenant(id), id,
                         kill_service_job(seed, id));
        if (!h.flush().ok() || !h.drain(nullptr).ok()) {
          fails.emplace_back("recovery drain failed");
        } else {
          const auto got = h.ledger();
          if (got.size() != want.size()) {
            fails.emplace_back("ledger width diverged");
          } else {
            for (std::size_t i = 0; i < want.size(); ++i)
              if (got[i].completed != want[i].completed ||
                  got[i].served_bytes != want[i].served_bytes ||
                  got[i].sheds != want[i].sheds)
                fails.emplace_back(
                    "tenant " + std::to_string(i + 1) +
                    " ledger diverged (K3): completed " +
                    std::to_string(got[i].completed) + "/" +
                    std::to_string(want[i].completed) + " bytes " +
                    std::to_string(got[i].served_bytes) + "/" +
                    std::to_string(want[i].served_bytes) + " sheds " +
                    std::to_string(got[i].sheds) + "/" +
                    std::to_string(want[i].sheds));
          }
        }
      }
      // K4: the post-recovery state reopens sealed with the same ledger.
      if (fails.empty()) {
        auto again = runtime::durable::ServiceHandle::open(
            kill_service_config(kill_dir));
        if (!again) {
          fails.emplace_back("post-drain reopen refused: " +
                             again.error().message);
        } else {
          const auto& info = again.value()->recovery_info();
          if (!info.was_sealed)
            fails.emplace_back("post-drain journal not sealed (K4)");
          if (info.dropped_bytes != 0)
            fails.emplace_back("post-drain reopen re-tore the tail (K4)");
          const auto still = again.value()->ledger();
          for (std::size_t i = 0; i < want.size() && i < still.size(); ++i)
            if (still[i].served_bytes != want[i].served_bytes)
              fails.emplace_back("sealed ledger diverged (K4), tenant " +
                                 std::to_string(i + 1));
        }
      }
    }

    std::printf("seed %" PRIu64 ": kill@%uus -> %s\n", seed, kill_after_us,
                fails.empty() ? "PASS" : "FAIL");
    if (!fails.empty()) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr)
        std::fprintf(fail_log, "kill-service seed %" PRIu64 "\n", seed);
      for (const auto& f : fails) {
        std::printf("  %s\n", f.c_str());
        if (fail_log != nullptr) std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
    fs::remove_all(root, ec);
  }
  if (fail_log != nullptr) std::fclose(fail_log);
  std::printf("\nkill-service: %zu seeds, %u failing\n", seeds.size(),
              failures);
  if (failures != 0) {
    bench::attach_failure_artifacts(fail_path);
    std::printf("replay any failure with: chaos_soak --kill-service "
                "--seed <N>\n");
  }
  return failures == 0 ? 0 : 1;
}
#endif  // !_WIN32

// --- overload chaos: --overload -------------------------------------------

/// --overload mode: the open-loop overload generator composed with random
/// mid-run fault schedules (bench::overload_chaos_params — the schedule
/// draw lives in overload_common.h so the regression tier replays seeds
/// bit-for-bit). Degraded-mode invariants (conservation, typed sheds,
/// per-job shed-lag, goodput capped at the completed jobs' analytic rate)
/// must hold for every seed; goodput may sag, jobs may shed, but nothing
/// deadlocks or goes missing.
int run_overload_chaos(const std::vector<std::uint64_t>& seeds, unsigned jobs,
                       unsigned workers, double ratio,
                       const std::string& fail_path) {
  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const std::uint64_t seed : seeds) {
    const bench::OverloadParams params =
        bench::overload_chaos_params(seed, jobs, workers, ratio);
    const auto res = bench::run_overload(params);
    const auto fails = bench::check_overload_invariants(params, res, false);
    std::printf("seed %" PRIu64 ": goodput %.3f GB/s, %" PRIu64
                " completed, %" PRIu64 " replans, %s\n",
                seed, res.goodput_gbs, res.stats.completed,
                res.stats.replans, fails.empty() ? "PASS" : "FAIL");
    if (!fails.empty()) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr)
        std::fprintf(fail_log, "overload seed %" PRIu64 "\n", seed);
      for (const auto& f : fails) {
        std::printf("  %s\n", f.c_str());
        if (fail_log != nullptr) std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);
  std::printf("\noverload chaos: %zu seeds, %u failing\n", seeds.size(),
              failures);
  if (failures != 0) {
    bench::attach_failure_artifacts(fail_path);
    std::printf("replay any failure with: chaos_soak --overload --seed <N>\n");
  }
  return failures == 0 ? 0 : 1;
}

// --- NUMA socket chaos: --sockets N ---------------------------------------

/// --sockets N (N >= 2) mode: seeded socket-granular fault schedules
/// (sock:off, sock:derate, link derate/off — bench::numa_chaos_schedule, so
/// the regression tier replays seeds bit-for-bit) against the supervised
/// node loop. Invariants:
///
///   N1  cross-socket supervision never loses: supervised node bandwidth
///       >= unsupervised * (1 - eps) under the same schedule and the same
///       local starting placement;
///   N2  failover is sound: after every committed migration each job's
///       compute and home socket lie inside that replan's healthy set;
///   N3  no thrash: committed replans <= schedule transitions + 1.
int run_numa_chaos(const std::vector<std::uint64_t>& seeds, unsigned sockets,
                   const SoakParams& params, const std::string& fail_path,
                   bench::ObsGuard& obs) {
  runtime::NodeLoopConfig base;
  base.node.node.num_sockets = sockets;
  base.detector.recovery = params.recovery;
  base.node.validate();
  obs.apply(base.node.sim);
  // Worst-case failover packs every job onto one chip.
  base.threads = std::min(
      params.threads, base.node.sim.topology.max_threads() / sockets);
  // De-resonate the static-block partition: a chunk that is a whole number
  // of interleave periods marches every strand through the same controller
  // sequence in lockstep (convoy), which the analytic model deliberately
  // does not capture — and an over-predicted packed placement would make
  // the migration gate commit losing moves.
  const std::size_t period =
      arch::AddressMap(base.node.sim.interleave).spec().period_bytes();
  const auto chunk_bytes = [&](unsigned t) {
    return ((params.n + t - 1) / t) * sizeof(double);
  };
  while (base.threads > 2 && chunk_bytes(base.threads) % period == 0)
    --base.threads;
  base.slices = params.slices;

  // One healthy probe resolves every seed's percent-relative stamps.
  runtime::NodeLoopConfig probe = base;
  probe.supervise = false;
  probe.node.sim.mc_sample_cadence = 0;
  const arch::Cycles horizon =
      runtime::run_supervised_node_triad(params.n, probe).total_cycles;

  std::printf("# NUMA chaos: %u sockets, triad n=%zu, %u strands/job, %u "
              "slices, horizon %" PRIu64 "\n",
              sockets, params.n, base.threads, base.slices,
              static_cast<std::uint64_t>(horizon));

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const std::uint64_t seed : seeds) {
    SeedOutcome out;
    util::Xoshiro256 rng(seed);
    const sim::FaultSchedule resolved =
        bench::numa_chaos_schedule(rng, sockets).resolved(horizon);
    const auto status = resolved.check(base.node.sim.interleave, sockets);
    if (!status.ok()) {
      out.fail("generator produced invalid schedule: " +
               status.error().message);
    } else {
      std::printf("seed %" PRIu64 ": schedule %s\n", seed,
                  resolved.describe().c_str());
      runtime::NodeLoopConfig cfg = base;
      cfg.seed = seed;
      cfg.node.sim.fault_schedule = resolved;
      cfg.supervise = true;
      const auto sup = runtime::run_supervised_node_triad(params.n, cfg);
      for (unsigned s = 0; s < sup.socket_timelines.size(); ++s)
        if (!sup.socket_timelines[s].empty())
          obs.add_timeline("seed=" + std::to_string(seed) + ".sock" +
                               std::to_string(s),
                           sup.socket_timelines[s]);
      cfg.supervise = false;
      const auto unsup = runtime::run_supervised_node_triad(params.n, cfg);

      if (sup.bandwidth < unsup.bandwidth * 0.98)
        out.fail("N1: supervised " + std::to_string(sup.bandwidth / 1e9) +
                 " GB/s < unsupervised " +
                 std::to_string(unsup.bandwidth / 1e9) + " GB/s");
      for (const runtime::NodeReplanRecord& replan : sup.replan_log)
        for (const runtime::NodeJob& job : replan.jobs) {
          bool compute_ok = false;
          bool home_ok = false;
          for (const unsigned h : replan.healthy_sockets) {
            compute_ok |= (job.compute_socket == h);
            home_ok |= (job.home_socket == h);
          }
          if (!compute_ok || !home_ok)
            out.fail("N2: job on socket " +
                     std::to_string(job.compute_socket) + " homed " +
                     std::to_string(job.home_socket) +
                     " outside the replan's healthy set");
        }
      const unsigned replan_budget =
          static_cast<unsigned>(resolved.event_count()) + 1;
      if (sup.replans > replan_budget)
        out.fail("N3: " + std::to_string(sup.replans) +
                 " replans exceed budget " + std::to_string(replan_budget) +
                 " (thrash)");

      std::printf("  supervised %.2f GB/s (replans=%u suppressed=%u "
                  "declined=%u) unsupervised %.2f GB/s -> %s\n",
                  sup.bandwidth / 1e9, sup.replans, sup.suppressed,
                  sup.declined, unsup.bandwidth / 1e9,
                  out.pass ? "PASS" : "FAIL");
    }
    for (const auto& f : out.failures) std::printf("    %s\n", f.c_str());
    if (!out.pass) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr) {
        std::fprintf(fail_log, "numa seed %" PRIu64 "\n", seed);
        for (const auto& f : out.failures)
          std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);

  std::printf("\nNUMA chaos: %zu seeds, %u failing\n", seeds.size(), failures);
  if (failures != 0) {
    bench::attach_failure_artifacts(fail_path);
    std::printf("replay any failure with: chaos_soak --sockets %u --seed <N>\n",
                sockets);
  }
  return failures == 0 ? 0 : 1;
}

// --- recovery chaos: --flap -----------------------------------------------

/// --flap mode: seeded outage-and-return / flapping-socket schedules
/// (bench::numa_recovery_schedule — every fault CLEARS mid-run) against the
/// supervised node loop's fail-back path. Invariants:
///
///   R1  placements are sound: after every committed migration each shard's
///       compute and home socket lie inside that replan's believed-healthy
///       set, and every moved range came through CRC-verified (the loop
///       aborts on mismatch; the per-replan counts must reconcile);
///   R2  no thrash: committed replans <= schedule events + completed
///       readmission ramps + 1 — the breaker's geometric escalation is what
///       holds this under a flapping socket;
///   R3  the prober is live: any run that quarantined a socket must have
///       issued at least one canary probe, and every confirmed recovery
///       implies a probe;
///   R4  recovery roughly pays: supervised bandwidth >= unsupervised *0.90
///       under the same schedule (the break-even gate prices migrations
///       against a fault that may clear early, so a thin loss is tolerated;
///       a deep one means the gate or the ramp broke).
int run_recovery_chaos(const std::vector<std::uint64_t>& seeds,
                       unsigned sockets, const SoakParams& params,
                       const std::string& fail_path, bench::ObsGuard& obs) {
  runtime::NodeLoopConfig base;
  base.node.node.num_sockets = sockets;
  base.detector.recovery = params.recovery;
  base.node.validate();
  obs.apply(base.node.sim);
  base.threads = std::min(
      params.threads, base.node.sim.topology.max_threads() / sockets);
  const arch::AddressMap map(base.node.sim.interleave);
  while (base.threads > 2 &&
         bench::convoy_resonant(params.n, base.threads, map))
    --base.threads;
  bench::warn_if_convoy_resonant("chaos_soak --flap", params.n, base.threads,
                                 map);
  base.slices = params.slices;

  runtime::NodeLoopConfig probe = base;
  probe.supervise = false;
  probe.node.sim.mc_sample_cadence = 0;
  const arch::Cycles horizon =
      runtime::run_supervised_node_triad(params.n, probe).total_cycles;

  std::printf("# recovery chaos: %u sockets, triad n=%zu, %u strands/job, %u "
              "slices, horizon %" PRIu64 " (every fault clears mid-run)\n",
              sockets, params.n, base.threads, base.slices,
              static_cast<std::uint64_t>(horizon));

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  for (const std::uint64_t seed : seeds) {
    SeedOutcome out;
    util::Xoshiro256 rng(seed);
    const sim::FaultSchedule resolved =
        bench::numa_recovery_schedule(rng, sockets, horizon);
    const auto status = resolved.check(base.node.sim.interleave, sockets);
    if (!status.ok()) {
      out.fail("generator produced invalid schedule: " +
               status.error().message);
    } else {
      std::printf("seed %" PRIu64 ": schedule %s\n", seed,
                  resolved.describe().c_str());
      runtime::NodeLoopConfig cfg = base;
      cfg.seed = seed;
      cfg.node.sim.fault_schedule = resolved;
      cfg.supervise = true;
      const auto sup = runtime::run_supervised_node_triad(params.n, cfg);
      cfg.supervise = false;
      const auto unsup = runtime::run_supervised_node_triad(params.n, cfg);

      // R1: sound, CRC-verified placements.
      unsigned crc_total = 0;
      bool quarantined = false;
      for (const runtime::NodeReplanRecord& replan : sup.replan_log) {
        quarantined |= replan.healthy_sockets.size() < sockets;
        crc_total += replan.crc_ranges_verified;
        if (replan.moved_bytes > 0 && replan.crc_ranges_verified == 0)
          out.fail("R1: migration moved " +
                   std::to_string(replan.moved_bytes) +
                   " bytes with zero CRC-verified ranges");
        for (const runtime::NodeJob& job : replan.jobs) {
          bool compute_ok = false;
          bool home_ok = false;
          for (const unsigned h : replan.healthy_sockets) {
            compute_ok |= (job.compute_socket == h);
            home_ok |= (job.home_socket == h);
          }
          if (!compute_ok || !home_ok)
            out.fail("R1: shard on socket " +
                     std::to_string(job.compute_socket) + " homed " +
                     std::to_string(job.home_socket) +
                     " outside the replan's believed-healthy set");
        }
      }
      if (crc_total != sup.crc_ranges_verified)
        out.fail("R1: per-replan CRC counts (" + std::to_string(crc_total) +
                 ") do not reconcile with the run total (" +
                 std::to_string(sup.crc_ranges_verified) + ")");

      // R2: bounded replans.
      const unsigned replan_budget =
          static_cast<unsigned>(resolved.event_count()) + sup.readmissions + 1;
      if (sup.replans > replan_budget)
        out.fail("R2: " + std::to_string(sup.replans) +
                 " replans exceed budget " + std::to_string(replan_budget) +
                 " (thrash under a clearing fault)");

      // R3: prober liveness.
      if (quarantined && sup.probes == 0)
        out.fail("R3: socket quarantined but no canary probe issued");
      if (sup.recoveries > 0 && sup.probes == 0)
        out.fail("R3: recovery confirmed without a probe");

      // R4: recovery roughly pays.
      if (sup.bandwidth < unsup.bandwidth * 0.90)
        out.fail("R4: supervised " + std::to_string(sup.bandwidth / 1e9) +
                 " GB/s < 0.90x unsupervised " +
                 std::to_string(unsup.bandwidth / 1e9) + " GB/s");

      std::printf("  supervised %.2f GB/s (replans=%u probes=%u recoveries=%u "
                  "readmissions=%u) unsupervised %.2f GB/s -> %s\n",
                  sup.bandwidth / 1e9, sup.replans, sup.probes, sup.recoveries,
                  sup.readmissions, unsup.bandwidth / 1e9,
                  out.pass ? "PASS" : "FAIL");
    }
    for (const auto& f : out.failures) std::printf("    %s\n", f.c_str());
    if (!out.pass) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr) {
        std::fprintf(fail_log, "flap seed %" PRIu64 "\n", seed);
        for (const auto& f : out.failures)
          std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);

  std::printf("\nrecovery chaos: %zu seeds, %u failing\n", seeds.size(),
              failures);
  if (failures != 0) {
    bench::attach_failure_artifacts(fail_path);
    std::printf("replay any failure with: chaos_soak --flap --seed <N>\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("Chaos soak: fuzz transient-fault schedules against the "
                "supervisor's invariants (replay any failure with --seed)");
  cli.option_int("seeds", 32, "number of seeds to soak (1..seeds)")
      .option_int("seed", 0, "run exactly this seed (0 = soak 1..seeds)")
      .option_int("n", 8192, "triad array elements")
      .option_int("threads", 32, "software threads")
      .option_int("sweeps", 10, "triad sweeps (= supervision slices)")
      .option_str("fail-log", "", "append failing seeds + schedules here")
      .flag("reference", "run the fixed reference schedule and write JSON")
      .flag("flips", "flip-rate sweep: CRC-guarded native Jacobi must "
                     "detect and repair every injected bit flip")
      .flag("kill-resume", "SIGKILL a checkpointing native Jacobi solve at "
                           "random points; resumes must finish bitwise-"
                           "identical to an uninterrupted run")
      .flag("kill-service", "SIGKILL the durable service runtime at seeded "
                            "random instants; restarts must lose no acked "
                            "submission, run nothing twice, and reconcile "
                            "the per-tenant ledger byte-exactly")
      .flag("overload", "compose the executor overload generator with "
                        "random fault schedules; degraded invariants must "
                        "hold for every seed")
      .option_int("sockets", 1,
                  "fuzz socket/link faults on an N-socket node instead of "
                  "single-chip faults (>= 2 enables NUMA chaos)")
      .flag("flap", "recovery chaos: seeded outage-and-return / flapping-"
                    "socket schedules against the fail-back invariants "
                    "(probe liveness, CRC-verified rebalancing, bounded "
                    "replans); --sockets picks the node width (default 2)")
      .option_int("jobs", 240, "jobs per seed for --overload")
      .option_int("workers", 4, "executor worker threads for --overload")
      .option_double("ratio", 2.0,
                     "offered load (x capacity) for --overload")
      .option_int("grid", 384, "Jacobi grid size for --flips/--kill-resume")
      .option_int("grid-sweeps", 64,
                  "Jacobi sweeps for --flips/--kill-resume")
      .option_int("every", 4, "checkpoint interval for --kill-resume")
      .option_str("json", "BENCH_supervisor.json",
                  "reference-mode output path");
  bench::add_recovery_options(cli);
  bench::add_obs_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsGuard obs(cli);

  SoakParams params;
  params.n = static_cast<std::size_t>(cli.get_int("n"));
  params.threads = static_cast<unsigned>(cli.get_int("threads"));
  params.slices = static_cast<unsigned>(cli.get_int("sweeps"));
  if (const auto st = bench::apply_recovery_options(cli, params.recovery);
      !st.ok()) {
    std::fprintf(stderr, "chaos_soak: %s\n", st.error().message.c_str());
    return 2;
  }

  if (cli.get_flag("reference")) {
    params.threads = 64;
    return run_reference(params, cli.get_str("json"), obs);
  }

  const auto single = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::vector<std::uint64_t> seeds;
  if (single != 0) {
    seeds.push_back(single);
  } else {
    const auto count = static_cast<std::uint64_t>(cli.get_int("seeds"));
    for (std::uint64_t s = 1; s <= count; ++s) seeds.push_back(s);
  }

  if (cli.get_flag("flap"))
    return run_recovery_chaos(
        seeds,
        std::max(2u, static_cast<unsigned>(cli.get_int("sockets"))), params,
        cli.get_str("fail-log"), obs);
  if (cli.get_int("sockets") > 1)
    return run_numa_chaos(seeds, static_cast<unsigned>(cli.get_int("sockets")),
                          params, cli.get_str("fail-log"), obs);
  if (cli.get_flag("overload"))
    return run_overload_chaos(seeds, static_cast<unsigned>(cli.get_int("jobs")),
                              static_cast<unsigned>(cli.get_int("workers")),
                              cli.get_double("ratio"),
                              cli.get_str("fail-log"));
  if (cli.get_flag("flips"))
    return run_flip_sweep(static_cast<std::size_t>(cli.get_int("grid")),
                          static_cast<unsigned>(cli.get_int("grid-sweeps")),
                          seeds.front());
  if (cli.get_flag("kill-resume")) {
#ifndef _WIN32
    return run_kill_resume(static_cast<std::size_t>(cli.get_int("grid")),
                           static_cast<unsigned>(cli.get_int("grid-sweeps")),
                           static_cast<unsigned>(cli.get_int("every")), seeds);
#else
    std::fprintf(stderr, "chaos_soak: --kill-resume needs fork(); POSIX only\n");
    return 2;
#endif
  }
  if (cli.get_flag("kill-service")) {
#ifndef _WIN32
    return run_kill_service(seeds, cli.get_str("fail-log"));
#else
    std::fprintf(stderr,
                 "chaos_soak: --kill-service needs fork(); POSIX only\n");
    return 2;
#endif
  }

  unsigned failures = 0;
  std::FILE* fail_log = nullptr;
  const std::string fail_path = cli.get_str("fail-log");
  for (const std::uint64_t seed : seeds) {
    const SeedOutcome outcome = run_seed(seed, params, obs);
    if (!outcome.pass) {
      ++failures;
      if (fail_log == nullptr && !fail_path.empty())
        fail_log = std::fopen(fail_path.c_str(), "a");
      if (fail_log != nullptr) {
        std::fprintf(fail_log, "seed %" PRIu64 "\n", seed);
        for (const auto& f : outcome.failures)
          std::fprintf(fail_log, "  %s\n", f.c_str());
      }
    }
  }
  if (fail_log != nullptr) std::fclose(fail_log);

  std::printf("\nchaos soak: %zu seeds, %u failing\n", seeds.size(), failures);
  if (failures != 0) {
    bench::attach_failure_artifacts(fail_path);
    std::printf("replay any failure with: chaos_soak --seed <N>\n");
  }
  return failures == 0 ? 0 : 1;
}
