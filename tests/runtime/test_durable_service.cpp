// Durable service runtime: the persistent submission API, quiesce/drain,
// and the crash-consistent restart contract — journaled completions are
// never re-run, duplicates dedupe by submission id, door verdicts replay
// bit-identically, tenant ledgers and NodeSupervisor beliefs survive the
// snapshot, and every corruption shape is a typed refusal, never a silently
// wrong restart. In-process "crashes" destroy the handle without drain()
// (the destructor deliberately skips commit/seal); the true SIGKILL path is
// tests/integration/test_durability_regression.cpp.

#include "runtime/durable/service_handle.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/attribution.h"
#include "runtime/checkpoint.h"
#include "runtime/durable/state.h"
#include "runtime/supervisor.h"
#include "util/backoff.h"
#include "util/prng.h"

namespace mcopt::runtime::durable {
namespace {

namespace fs = std::filesystem;

using exec::JobKind;
using exec::JobSpec;
using exec::ShedReason;

class DurableServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcopt_dur_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

/// Accounting-mode config: one worker, roomy lanes, no kernel bodies, batch
/// SLO (no deadlines) — every accepted job completes with a deterministic
/// quote, which is what makes ledgers byte-exactly reconcilable.
DurableConfig base_config(const std::string& dir) {
  DurableConfig cfg;
  cfg.dir = dir;
  cfg.service.executor.num_workers = 1;
  cfg.service.executor.run_kernels = false;
  cfg.service.executor.lane_capacity = {4096, 4096, 4096};
  cfg.service.executor.seed = 42;
  cfg.tenants.push_back(
      {.name = "alpha", .weight = 2.0, .slo = service::SloClass::kBatch});
  cfg.tenants.push_back(
      {.name = "beta", .weight = 1.0, .slo = service::SloClass::kBatch});
  return cfg;
}

JobSpec triad(std::size_t n, arch::Cycles arrival) {
  JobSpec spec;
  spec.kind = JobKind::kTriad;
  spec.n = n;
  spec.iterations = 1;
  spec.arrival = arrival;
  return spec;
}

/// Submits ids [first, last] alternating tenants, flushing once at the end
/// (one group commit = one ack covering the batch).
void submit_range(ServiceHandle& h, std::uint64_t first, std::uint64_t last) {
  for (std::uint64_t id = first; id <= last; ++id) {
    const service::TenantId tenant = 1 + static_cast<unsigned>(id % 2);
    (void)h.submit(tenant, id, triad(2048 + 64 * (id % 7), id * 10000));
  }
  ASSERT_TRUE(h.flush().ok());
}

std::uint64_t total_completed(const std::vector<TenantLedger>& ledger) {
  std::uint64_t n = 0;
  for (const TenantLedger& l : ledger) n += l.completed;
  return n;
}

std::uint64_t total_bytes(const std::vector<TenantLedger>& ledger) {
  std::uint64_t n = 0;
  for (const TenantLedger& l : ledger) n += l.served_bytes;
  return n;
}

void expect_ledgers_equal(const std::vector<TenantLedger>& a,
                          const std::vector<TenantLedger>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed) << what << " tenant " << i + 1;
    EXPECT_EQ(a[i].served_bytes, b[i].served_bytes)
        << what << " tenant " << i + 1;
    EXPECT_EQ(a[i].sheds, b[i].sheds) << what << " tenant " << i + 1;
  }
}

// --- lifecycle -------------------------------------------------------------

TEST_F(DurableServiceTest, ConfigCheckRejectsDegenerateShapes) {
  EXPECT_FALSE(DurableConfig{}.check().ok());
  DurableConfig no_tenants;
  no_tenants.dir = subdir("x");
  EXPECT_FALSE(no_tenants.check().ok());
  DurableConfig bad_weight = base_config(subdir("y"));
  bad_weight.tenants[1].weight = 0.0;
  EXPECT_FALSE(bad_weight.check().ok());
  EXPECT_FALSE(ServiceHandle::open(DurableConfig{}).has_value());
}

TEST_F(DurableServiceTest, SubmitFlushPumpDrainAndPoll) {
  auto handle = ServiceHandle::open(base_config(subdir("svc")));
  ASSERT_TRUE(handle.has_value()) << handle.error().message;
  ServiceHandle& h = *handle.value();
  EXPECT_FALSE(h.recovery_info().restarted);

  submit_range(h, 1, 20);
  const SubmitAck dup = h.submit(1, 7, triad(2048, 999));
  EXPECT_TRUE(dup.duplicate);

  DrainReport dr;
  ASSERT_TRUE(h.drain(&dr).ok());
  EXPECT_FALSE(dr.escalated);

  const std::vector<TenantLedger> ledger = h.ledger();
  EXPECT_EQ(total_completed(ledger), 20u);
  EXPECT_GT(total_bytes(ledger), 0u);

  const PollResult done = h.poll(3);
  EXPECT_EQ(done.state, SubmissionState::kCompleted);
  EXPECT_TRUE(done.acked);
  EXPECT_GT(done.served_bytes, 0u);
  EXPECT_EQ(h.poll(999).state, SubmissionState::kUnknown);
  EXPECT_TRUE(h.draining());
  EXPECT_FALSE(h.submit(1, 21, triad(2048, 0)).accepted);
}

TEST_F(DurableServiceTest, CleanShutdownRestartsSealed) {
  const std::string d = subdir("svc");
  std::vector<TenantLedger> before;
  {
    auto handle = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(handle.has_value());
    submit_range(*handle.value(), 1, 12);
    ASSERT_TRUE(handle.value()->drain(nullptr).ok());
    before = handle.value()->ledger();
  }
  auto handle = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(handle.has_value()) << handle.error().message;
  const RecoveryInfo& info = handle.value()->recovery_info();
  EXPECT_TRUE(info.restarted);
  EXPECT_TRUE(info.was_sealed);
  EXPECT_TRUE(info.snapshot_loaded);
  // drain() snapshots before sealing, so nothing needs replaying.
  EXPECT_EQ(info.replayed_submissions, 0u);
  EXPECT_EQ(info.dropped_bytes, 0u);
  expect_ledgers_equal(handle.value()->ledger(), before, "sealed restart");
  EXPECT_EQ(handle.value()->max_submission_id(), 12u);
}

// --- crash / replay --------------------------------------------------------

TEST_F(DurableServiceTest, CrashReplayMatchesUninterruptedRun) {
  // Reference: uninterrupted run of ids 1..30.
  auto ref = ServiceHandle::open(base_config(subdir("ref")));
  ASSERT_TRUE(ref.has_value());
  submit_range(*ref.value(), 1, 30);
  ASSERT_TRUE(ref.value()->drain(nullptr).ok());
  const std::vector<TenantLedger> want = ref.value()->ledger();

  // Crash run: same stream, handle destroyed right after the ack — no pump,
  // no drain. Every outcome is unjournaled; the restart must re-run all 30.
  const std::string d = subdir("crash");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 30);
  }
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  const RecoveryInfo& info = h.value()->recovery_info();
  EXPECT_TRUE(info.restarted);
  EXPECT_FALSE(info.was_sealed);
  EXPECT_EQ(info.replayed_submissions, 30u);
  EXPECT_EQ(info.resubmitted + info.completed_skipped + info.sheds_replayed,
            30u);
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  expect_ledgers_equal(h.value()->ledger(), want, "crash replay");
}

TEST_F(DurableServiceTest, JournaledCompletionsAreNotReRun) {
  const std::string d = subdir("svc");
  std::uint64_t done_before_crash = 0;
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 10);
    // Journal the outcomes that already finalized, then "crash". The pump
    // loop carries a real time budget: on a loaded machine the workers can
    // be starved long enough that a fixed spin count journals nothing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (done_before_crash < 10 &&
           std::chrono::steady_clock::now() < deadline) {
      (void)h.value()->pump();
      done_before_crash = total_completed(h.value()->ledger());
      if (done_before_crash < 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(h.value()->flush().ok());
    EXPECT_GT(done_before_crash, 0u);
  }
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  const RecoveryInfo& info = h.value()->recovery_info();
  EXPECT_EQ(info.completed_skipped, done_before_crash);
  EXPECT_EQ(info.resubmitted, 10u - done_before_crash);
  // The executor of the new incarnation only ever sees the resubmitted part.
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  EXPECT_EQ(h.value()->service().executor().stats().submitted,
            10u - done_before_crash);
  EXPECT_EQ(total_completed(h.value()->ledger()), 10u);
}

TEST_F(DurableServiceTest, ReplayIsIdempotent) {
  // Open/close without new traffic is a read-only operation: any number of
  // successive recoveries sees the same journal and reports the same replay.
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 16);
  }
  RecoveryInfo first;
  for (int round = 0; round < 3; ++round) {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value()) << "round " << round << ": "
                               << h.error().message;
    const RecoveryInfo& info = h.value()->recovery_info();
    if (round == 0) {
      first = info;
    } else {
      EXPECT_EQ(info.journal_records, first.journal_records) << round;
      EXPECT_EQ(info.replayed_submissions, first.replayed_submissions);
      EXPECT_EQ(info.resubmitted, first.resubmitted);
      EXPECT_EQ(info.completed_skipped, first.completed_skipped);
      EXPECT_EQ(info.sheds_replayed, first.sheds_replayed);
    }
    expect_ledgers_equal(h.value()->ledger(), std::vector<TenantLedger>(2),
                         "no outcomes journaled yet");
  }
}

TEST_F(DurableServiceTest, DoorVerdictsReplayBitIdentically) {
  // A tightly quota'd tenant alongside an open one: door sheds are part of
  // the journaled history and must reproduce exactly on replay.
  auto quota_config = [&](const std::string& d) {
    DurableConfig cfg = base_config(d);
    cfg.tenants[1].quota_bytes_per_s = 60000.0;
    cfg.tenants[1].burst_seconds = 1.0;
    cfg.tenants[1].breaker_trip_threshold = 4;
    return cfg;
  };
  auto ref = ServiceHandle::open(quota_config(subdir("ref")));
  ASSERT_TRUE(ref.has_value());
  submit_range(*ref.value(), 1, 40);
  ASSERT_TRUE(ref.value()->drain(nullptr).ok());
  const std::vector<TenantLedger> want = ref.value()->ledger();
  ASSERT_GT(want[1].sheds, 0u) << "quota never tripped — test is vacuous";

  const std::string d = subdir("crash");
  {
    auto h = ServiceHandle::open(quota_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 40);
  }
  auto h = ServiceHandle::open(quota_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  expect_ledgers_equal(h.value()->ledger(), want, "door replay");

  const service::TenantSnapshot beta_got = h.value()->service().tenant(2);
  const service::TenantSnapshot beta_want = ref.value()->service().tenant(2);
  EXPECT_EQ(beta_got.counters.throttled, beta_want.counters.throttled);
  EXPECT_EQ(beta_got.counters.breaker_rejected,
            beta_want.counters.breaker_rejected);
  EXPECT_EQ(beta_got.counters.forwarded, beta_want.counters.forwarded);
  EXPECT_EQ(beta_got.counters.accepted, beta_want.counters.accepted);
}

// --- dedup -----------------------------------------------------------------

TEST_F(DurableServiceTest, DuplicateSubmissionsDedupeByIdAcrossRestart) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 8);
  }
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value());
  // The client never saw acks (it crashed too, say) and retries everything:
  // every id is already journaled, nothing double-runs.
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const SubmitAck ack =
        h.value()->submit(1 + static_cast<unsigned>(id % 2), id,
                          triad(2048 + 64 * (id % 7), id * 10000));
    EXPECT_TRUE(ack.duplicate) << "id " << id;
  }
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  EXPECT_EQ(total_completed(h.value()->ledger()), 8u);
}

TEST_F(DurableServiceTest, SnapshotWatermarkAnswersCompactedHistory) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 6);
    ASSERT_TRUE(h.value()->checkpoint().ok());
    // Post-checkpoint the detailed entries are compacted away but the
    // watermark still answers duplicates in-process...
    const SubmitAck dup = h.value()->submit(1, 4, triad(2048, 0));
    EXPECT_TRUE(dup.duplicate);
    EXPECT_TRUE(dup.accepted);
  }
  // ...and across a restart.
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h.value()->recovery_info().snapshot_loaded);
  EXPECT_EQ(h.value()->recovery_info().replayed_submissions, 0u);
  const SubmitAck dup = h.value()->submit(1, 4, triad(2048, 0));
  EXPECT_TRUE(dup.duplicate);
  EXPECT_EQ(h.value()->poll(4).state, SubmissionState::kAckedHistory);
  // Fresh traffic continues above the watermark.
  const SubmitAck fresh = h.value()->submit(1, 7, triad(2048, 70000));
  EXPECT_FALSE(fresh.duplicate);
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  EXPECT_EQ(total_completed(h.value()->ledger()), 7u);
}

// --- checkpoint ------------------------------------------------------------

TEST_F(DurableServiceTest, CheckpointCompactsTheReplayPrefix) {
  const std::string d = subdir("svc");
  std::vector<TenantLedger> at_checkpoint;
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 10);
    ASSERT_TRUE(h.value()->checkpoint().ok());
    at_checkpoint = h.value()->ledger();
    EXPECT_EQ(total_completed(at_checkpoint), 10u);
    submit_range(*h.value(), 11, 14);
  }
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  const RecoveryInfo& info = h.value()->recovery_info();
  EXPECT_TRUE(info.snapshot_loaded);
  // Only the post-snapshot suffix replays.
  EXPECT_EQ(info.replayed_submissions, 4u);
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  EXPECT_EQ(total_completed(h.value()->ledger()), 14u);
  EXPECT_GE(total_bytes(h.value()->ledger()), total_bytes(at_checkpoint));
}

// --- typed refusals --------------------------------------------------------

TEST_F(DurableServiceTest, TenantCountMismatchIsATypedRefusal) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 4);
  }
  DurableConfig one_tenant = base_config(d);
  one_tenant.tenants.pop_back();
  auto h = ServiceHandle::open(one_tenant);
  ASSERT_FALSE(h.has_value());
  EXPECT_NE(h.error().message.find("tenant"), std::string::npos);
}

TEST_F(DurableServiceTest, StateWithoutJournalIsATypedRefusal) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 4);
    ASSERT_TRUE(h.value()->checkpoint().ok());
  }
  fs::remove(fs::path(d) / "journal.mjnl");
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_FALSE(h.has_value());
  EXPECT_NE(h.error().message.find("journal"), std::string::npos);
}

TEST_F(DurableServiceTest, CorruptSnapshotIsATypedRefusal) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 4);
    ASSERT_TRUE(h.value()->checkpoint().ok());
  }
  const std::string state = (fs::path(d) / "state.mcpt").string();
  std::fstream f(state, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(70);
  const char orig = static_cast<char>(f.get());
  f.seekp(70);
  f.put(static_cast<char>(orig ^ 0x40));
  f.close();
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_FALSE(h.has_value());
}

TEST_F(DurableServiceTest, TornJournalTailIsTruncatedAndReported) {
  const std::string d = subdir("svc");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 6);
  }
  // The crash landed mid-append: lop 5 bytes off the journal.
  const std::string journal = (fs::path(d) / "journal.mjnl").string();
  const auto size = fs::file_size(journal);
  fs::resize_file(journal, size - 5);

  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  const RecoveryInfo& info = h.value()->recovery_info();
  EXPECT_GT(info.dropped_bytes, 0u);
  EXPECT_FALSE(info.tail_note.empty());
  EXPECT_EQ(info.replayed_submissions, 5u);  // the 6th record was the torn one
  // The tail is physically gone: the journal accepts appends again and a
  // re-restart is clean.
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  auto again = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(again.has_value()) << again.error().message;
  EXPECT_EQ(again.value()->recovery_info().dropped_bytes, 0u);
  EXPECT_TRUE(again.value()->recovery_info().was_sealed);
}

// --- drain / quiesce -------------------------------------------------------

TEST_F(DurableServiceTest, DrainWatchdogEscalatesAndShedsTyped) {
  DurableConfig cfg = base_config(subdir("svc"));
  cfg.drain_budget_ms = 50;
  auto handle = ServiceHandle::open(cfg);
  ASSERT_TRUE(handle.has_value());
  ServiceHandle& h = *handle.value();

  // Freeze dequeue so the backlog cannot empty within the budget.
  h.service().executor().hold_dequeue();
  submit_range(h, 1, 25);
  DrainReport dr;
  ASSERT_TRUE(h.drain(&dr).ok());
  EXPECT_TRUE(dr.escalated);
  EXPECT_GT(dr.shed_on_drain, 0u);

  // Every shed is typed (kShutdown) and journaled; nothing is silent.
  std::uint64_t sheds = 0, completed = 0;
  for (const TenantLedger& l : h.ledger()) {
    sheds += l.sheds;
    completed += l.completed;
  }
  EXPECT_EQ(sheds, dr.shed_on_drain);
  EXPECT_EQ(sheds + completed, 25u);
  for (std::uint64_t id = 1; id <= 25; ++id) {
    const PollResult p = h.poll(id);
    EXPECT_TRUE(p.state == SubmissionState::kCompleted ||
                (p.state == SubmissionState::kShed &&
                 p.reason == ShedReason::kShutdown))
        << "id " << id;
  }
}

TEST_F(DurableServiceTest, ShedsOnDrainAreFinalHistoryAfterRestart) {
  const std::string d = subdir("svc");
  std::vector<TenantLedger> before;
  {
    DurableConfig cfg = base_config(d);
    cfg.drain_budget_ms = 50;
    auto h = ServiceHandle::open(cfg);
    ASSERT_TRUE(h.has_value());
    h.value()->service().executor().hold_dequeue();
    submit_range(*h.value(), 1, 25);
    ASSERT_TRUE(h.value()->drain(nullptr).ok());
    before = h.value()->ledger();
  }
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  // A shed journaled as final history is not retried by the restart.
  EXPECT_EQ(h.value()->recovery_info().resubmitted, 0u);
  expect_ledgers_equal(h.value()->ledger(), before, "sheds are final");
}

TEST_F(DurableServiceTest, SigtermLatchesTheQuiesceFlag) {
  ServiceHandle::clear_quiesce_request();
  ServiceHandle::install_quiesce_signal_handler();
  EXPECT_FALSE(ServiceHandle::quiesce_requested());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(ServiceHandle::quiesce_requested());
  ServiceHandle::clear_quiesce_request();
  EXPECT_FALSE(ServiceHandle::quiesce_requested());
  (void)std::signal(SIGTERM, SIG_DFL);
}

// --- NodeSupervisor beliefs ride the snapshot ------------------------------

arch::NodeTopology two_sockets() { return arch::NodeTopology{}; }

NodeSample dead_socket_sample(unsigned dead, unsigned serving) {
  NodeSample s;
  s.begin = 0;
  s.end = 1000000;
  s.socket_utilization = {0.6, 0.6};
  s.socket_utilization[dead] = 0.01;
  s.link_utilization.assign(2, std::vector<double>(2, 0.0));
  s.link_line_cost.assign(2, std::vector<double>(2, 0.0));
  s.link_utilization[dead][serving] = 0.8;
  s.link_line_cost[dead][serving] = 16.0;
  return s;
}

TEST_F(DurableServiceTest, NodeSupervisorBeliefsSurviveRestart) {
  const std::string d = subdir("svc");
  NodeDetectorConfig det;
  det.stable_window = 2;
  {
    NodeSupervisor sup(det, two_sockets(), 7);
    (void)sup.observe(dead_socket_sample(1, 0));
    const NodeDecision dec = sup.observe(dead_socket_sample(1, 0));
    ASSERT_EQ(dec.action, Action::kReplan);
    sup.commit(2000000);
    ASSERT_TRUE(sup.planned_against().is_socket_offline(1));

    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    ASSERT_TRUE(h.value()->attach_node_supervisor(&sup).ok());
    submit_range(*h.value(), 1, 4);
    ASSERT_TRUE(h.value()->checkpoint().ok());
  }
  // Restart: a freshly constructed supervisor (same config/topology/seed)
  // inherits the quarantine instead of relearning it.
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  NodeSupervisor fresh(det, two_sockets(), 7);
  EXPECT_FALSE(fresh.planned_against().is_socket_offline(1));
  ASSERT_TRUE(h.value()->attach_node_supervisor(&fresh).ok());
  EXPECT_TRUE(fresh.planned_against().is_socket_offline(1));
  EXPECT_EQ(fresh.replans(), 1u);
}

// --- state image primitives ------------------------------------------------

TEST_F(DurableServiceTest, StateImageRoundTripsBitExactly) {
  StateImage im;
  im.snapshot_id = 3;
  im.covered_sequence = 99;
  im.max_submission_id = 1234;
  im.door.door_clock = 777777;
  service::DoorTenantState t;
  t.counters.submitted = 10;
  t.counters.forwarded = 8;
  t.counters.offered_bytes = 123456789;
  t.quota_level_bytes = 0.1 + 0.2;  // not exactly representable: bit test
  t.last_refill = 55555;
  t.breaker.consecutive_failures = 3;
  t.breaker.backoff.current = 1.7;
  t.breaker.backoff.retries = 2;
  t.breaker.backoff.ready_at = 424242;
  util::Xoshiro256 rng(99);
  t.breaker.backoff.rng = rng.state();
  im.door.tenants = {t, service::DoorTenantState{}};
  im.clocks.arrival = 1;
  im.clocks.service_tail = 2;
  im.clocks.admit_tail = 3;
  im.ledger = {TenantLedger{5, 500, 1}, TenantLedger{2, 200, 0}};

  const std::string p = subdir("state.mcpt");
  ASSERT_TRUE(save_state(p, im).ok());
  auto back = load_state(p);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  const StateImage& got = back.value();
  EXPECT_EQ(got.snapshot_id, 3u);
  EXPECT_EQ(got.covered_sequence, 99u);
  EXPECT_EQ(got.max_submission_id, 1234u);
  EXPECT_EQ(got.door.door_clock, 777777u);
  ASSERT_EQ(got.door.tenants.size(), 2u);
  EXPECT_EQ(got.door.tenants[0].counters.submitted, 10u);
  EXPECT_EQ(got.door.tenants[0].quota_level_bytes, 0.1 + 0.2);  // bit-exact
  EXPECT_EQ(got.door.tenants[0].breaker.backoff.rng, rng.state());
  EXPECT_EQ(got.clocks.admit_tail, 3u);
  EXPECT_EQ(got.ledger[0].served_bytes, 500u);
  EXPECT_FALSE(got.has_node_supervisor);
}

TEST_F(DurableServiceTest, StateImageCarriesTheAttributionSection) {
  obs::Attribution::instance().reset();
  obs::Attribution::instance().charge(1, 2, obs::Charge::kServed, 0, 4096);
  obs::Attribution::instance().charge(2, -1, obs::Charge::kShed, 3, 512, 2);

  StateImage im;
  im.snapshot_id = 1;
  im.door.tenants.resize(2);
  im.ledger.resize(2);
  im.has_attribution = true;
  im.attribution = obs::Attribution::instance().encode();

  const std::string p = subdir("attr_state.mcpt");
  ASSERT_TRUE(save_state(p, im).ok());
  auto back = load_state(p);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  ASSERT_TRUE(back.value().has_attribution);
  EXPECT_EQ(back.value().attribution, im.attribution);

  // The loaded blob restores the ledger exactly (a fresh "process").
  obs::Attribution::instance().reset();
  ASSERT_TRUE(obs::Attribution::instance().restore(back.value().attribution)
                  .ok());
  EXPECT_EQ(obs::Attribution::instance().tenant_bytes(1, obs::Charge::kServed),
            4096u);
  EXPECT_EQ(obs::Attribution::instance().tenant_count(2, obs::Charge::kShed),
            2u);
  obs::Attribution::instance().reset();
}

TEST_F(DurableServiceTest, UnknownStateSectionFlagsAreATypedRefusal) {
  StateImage im;
  im.snapshot_id = 1;
  const std::string p = subdir("flags.mcpt");
  ASSERT_TRUE(save_state(p, im).ok());

  // A future writer sets a section flag this build does not know. Loading
  // must refuse — skipping an unknown section would drop state silently.
  auto ckpt = load_checkpoint(p);
  ASSERT_TRUE(ckpt.has_value());
  Checkpoint doctored = ckpt.value();
  doctored.user[1] |= std::uint64_t{1} << 7;
  ASSERT_TRUE(save_checkpoint(p, doctored).ok());
  auto refused = load_state(p);
  ASSERT_FALSE(refused.has_value());
  EXPECT_NE(refused.error().message.find("unknown section flags"),
            std::string::npos)
      << refused.error().message;
}

TEST_F(DurableServiceTest, V1StateImagesStillLoad) {
  // A v1 image is a v2 image without the new sections and with the version
  // word dialed back — exactly what a pre-attribution build wrote.
  StateImage im;
  im.snapshot_id = 4;
  im.max_submission_id = 55;
  im.door.tenants.resize(1);
  im.ledger = {TenantLedger{3, 300, 1}};
  const std::string p = subdir("v1.mcpt");
  ASSERT_TRUE(save_state(p, im).ok());
  auto ckpt = load_checkpoint(p);
  ASSERT_TRUE(ckpt.has_value());
  Checkpoint old = ckpt.value();
  old.user[0] = 1;  // kStateImageMinVersion
  ASSERT_TRUE(save_checkpoint(p, old).ok());

  auto back = load_state(p);
  ASSERT_TRUE(back.has_value()) << back.error().message;
  EXPECT_EQ(back.value().max_submission_id, 55u);
  EXPECT_EQ(back.value().ledger[0].served_bytes, 300u);
  EXPECT_FALSE(back.value().has_attribution);
}

TEST_F(DurableServiceTest, AttributionReconcilesWithLedgerAcrossCrashReplay) {
  // The in-process mirror of the bench/durability contract: after a crash
  // (no drain, outcomes unjournaled) and a replayed restart, the attribution
  // ledger's per-tenant served bytes and shed events equal the service
  // ledger exactly.
  obs::Attribution::instance().reset();
  const std::string d = subdir("attr");
  {
    auto h = ServiceHandle::open(base_config(d));
    ASSERT_TRUE(h.has_value());
    submit_range(*h.value(), 1, 24);
    for (int i = 0; i < 50; ++i) (void)h.value()->pump();
    ASSERT_TRUE(h.value()->flush().ok());
  }
  obs::Attribution::instance().reset();  // the restart is a fresh process
  auto h = ServiceHandle::open(base_config(d));
  ASSERT_TRUE(h.has_value()) << h.error().message;
  ASSERT_TRUE(h.value()->drain(nullptr).ok());
  const std::vector<TenantLedger> ledger = h.value()->ledger();
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    const auto tenant = static_cast<std::uint32_t>(i + 1);
    EXPECT_EQ(
        obs::Attribution::instance().tenant_bytes(tenant, obs::Charge::kServed),
        ledger[i].served_bytes)
        << "tenant " << tenant;
    EXPECT_EQ(
        obs::Attribution::instance().tenant_count(tenant, obs::Charge::kShed),
        ledger[i].sheds)
        << "tenant " << tenant;
  }
  obs::Attribution::instance().reset();
}

TEST_F(DurableServiceTest, BreakerAndBackoffSnapshotsRestoreBehavior) {
  const util::BackoffConfig bcfg{.initial = 100, .multiplier = 2.0,
                                 .cap = 10000, .jitter = 0.2};
  util::CircuitBreaker a(bcfg, 2, 77);
  a.record_failure(1000);  // 1 of 2
  const util::CircuitBreaker::Snapshot snap = a.snapshot();

  util::CircuitBreaker b(bcfg, 2, 0);  // different seed: rng comes from snap
  b.restore(snap);
  // Both now one failure from tripping; the hold they compute next draws
  // from identical rng state, so their futures are bit-identical.
  a.record_failure(2000);
  b.record_failure(2000);
  EXPECT_EQ(a.state(), util::CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.state(), util::CircuitBreaker::State::kOpen);
  EXPECT_EQ(a.allow(3000), b.allow(3000));
  EXPECT_EQ(a.allow(999999999), b.allow(999999999));
}

}  // namespace
}  // namespace mcopt::runtime::durable
