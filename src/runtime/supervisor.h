#pragma once
// Online self-healing supervisor for degraded-chip runs.
//
// The paper's planner is purely analytic ("no trial and error is required"):
// given the address map and the surviving-controller set, it derives the
// layout directly. What it cannot do is *know* the surviving set at run
// time. The supervisor closes that loop: it watches a sliding window of
// per-controller utilization samples coming out of the simulator, diagnoses
// which controllers are dead (near-zero busy fraction) or derated
// (saturated far above the median), and — when the diagnosis is stable and
// differs from what the current layout was planned against — proposes a
// replan over the observed healthy set. A jittered-exponential backoff
// (util::Backoff, in simulated cycles) keeps a flapping controller from
// triggering a replan storm, and every decision is logged through util::log
// in a structured one-line format.
//
// A second, orthogonal channel watches data *integrity*: when a sample
// reports corrupted reads (the simulator's silent-bit-flip counter, or a
// native kernel's CRC verify), the supervisor orders a scrub — checksum
// re-verification plus rebuild of the damaged segments — instead of a
// replan. Scrubs bypass the debounce and the backoff: a replan is a
// performance decision that can wait, a flipped payload is a correctness
// event that cannot.
//
// The supervisor proposes; the supervised loop (supervised_loop.h) disposes:
// it computes the candidate layout with seg::plan_* and a migration
// break-even estimate from the analytic model, then either commit()s the
// replan (migration performed, backoff armed) or abort()s it (not worth the
// copy; backoff armed so the proposal is not re-made every slice).
//
// THREADING CONTRACT — single consumer. The supervisor is deliberately not
// internally synchronized: observe()/commit()/abort() mutate the debounce
// and backoff state and must be called from exactly one logical consumer at
// a time. Since the executor (runtime/executor/) introduced worker threads,
// samples produced on workers are NOT allowed to call observe() directly —
// they go through the executor's ingestion queue and are drained by its
// control step, which serializes the calls. The contract is enforced, not
// just documented: concurrent or re-entrant entry throws std::logic_error
// ("feed samples through the executor's ingestion queue") before any state
// is touched, and tests/runtime/test_executor.cpp exercises the path under
// ThreadSanitizer.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.h"
#include "arch/numa.h"
#include "sim/faults.h"
#include "util/backoff.h"
#include "util/expected.h"

namespace mcopt::runtime {

/// Detector thresholds. Defaults are calibrated for the triad/Jacobi
/// supervised loops (slice-grained samples, 4 controllers).
struct DetectorConfig {
  /// A diagnosis must repeat over this many consecutive samples before the
  /// supervisor acts on it (debounces boundary slices that straddle a fault
  /// transition).
  unsigned stable_window = 2;
  /// Dead detection: utilization below this fraction of the busiest
  /// controller's.
  double offline_threshold = 0.12;
  /// Derate detection: utilization above this multiple of the median of the
  /// non-dead controllers (a slow DIMM saturates while its peers idle).
  double derate_threshold = 1.6;
  /// Samples whose busiest controller sits below this are ignored (the
  /// machine is idle; utilization carries no diagnostic signal).
  double min_signal = 0.02;
  /// Layout replans (fault state unchanged, current layout analytically
  /// inferior) trigger only when candidate/current bandwidth exceeds this.
  double replan_gain = 1.15;
  /// Replan backoff, in simulated cycles.
  util::BackoffConfig backoff{.initial = 50000, .multiplier = 2.0,
                              .cap = 3200000, .jitter = 0.1};
  /// Consecutive no-action samples after which the backoff resets.
  unsigned quiet_reset = 4;

  /// Non-throwing validation; reports every violation at once.
  [[nodiscard]] util::Status check() const;
};

/// One observation window: per-controller busy fractions over
/// [begin, end) of the *global* (supervised-loop) cycle timeline.
struct Sample {
  arch::Cycles begin = 0;
  arch::Cycles end = 0;
  std::vector<double> mc_utilization;
  /// Integrity channel: reads the memory system served with flipped payloads
  /// during the window (sim::SimResult::corrupted_reads for the slice).
  std::uint64_t corrupted_reads = 0;
};

enum class Action {
  kKeep,       ///< nothing to do (healthy, unstable, idle, or already planned)
  kReplan,     ///< diagnosis or layout deficit warrants a replan now
  kSuppressed, ///< replan warranted but inside the backoff window
  kScrub,      ///< corrupted reads observed: verify checksums and rebuild
  kProbe       ///< run a canary against a quarantined socket (fail-back path)
};

/// The supervisor's verdict for one sample.
struct Decision {
  Action action = Action::kKeep;
  /// Current believed fault state (dead + derated controllers).
  sim::FaultSpec diagnosis;
  /// Controllers a replan should lay streams out over (the non-dead set;
  /// derated controllers stay in — their addresses cannot be avoided, only
  /// rephased, which the analytic gate evaluates).
  std::vector<unsigned> plan_set;
  std::string reason;
  arch::Cycles at = 0;
};

/// Trace-event name ("supervisor.action.keep" etc.) the observe() wrapper
/// emits for each decision; exposed so tests and trace consumers share one
/// spelling. Returns a string literal (the trace recorder stores pointers).
[[nodiscard]] const char* action_event_name(Action a) noexcept;

class Supervisor {
 public:
  /// `seed` feeds the backoff jitter; equal seeds replay exactly.
  Supervisor(DetectorConfig cfg, const arch::InterleaveSpec& interleave,
             std::uint64_t seed = 0);

  /// Feeds one utilization sample. `layout_gain` is the caller's analytic
  /// estimate of candidate/current bandwidth under the currently believed
  /// fault state (1.0 = current layout already optimal); it lets the
  /// supervisor propose replans for layout deficits (e.g. an aliased
  /// starting layout) even when the fault diagnosis is unchanged.
  ///
  /// Single consumer only (see the threading contract above): concurrent or
  /// re-entrant calls throw std::logic_error without touching any state.
  /// Worker threads must enqueue samples on the executor's ingestion queue
  /// instead of calling this directly.
  [[nodiscard]] Decision observe(const Sample& sample,
                                 double layout_gain = 1.0);

  /// The loop migrated per the last kReplan decision: records the diagnosis
  /// as planned-against and arms the backoff.
  void commit(arch::Cycles now);

  /// The loop declined the last kReplan decision (migration not worth it):
  /// arms the backoff so the same proposal is not re-made every sample, but
  /// keeps the planned-against state (conditions may still change).
  void abort(arch::Cycles now);

  /// Fault state the current layout was planned against.
  [[nodiscard]] const sim::FaultSpec& planned_against() const noexcept {
    return planned_against_;
  }
  /// Committed replans / backoff-suppressed proposals / scrub orders so far.
  [[nodiscard]] unsigned replans() const noexcept { return replans_; }
  [[nodiscard]] unsigned suppressed() const noexcept { return suppressed_; }
  [[nodiscard]] unsigned scrubs() const noexcept { return scrubs_; }
  [[nodiscard]] const util::Backoff& backoff() const noexcept { return backoff_; }

  /// Pure detector: classifies one utilization vector into a FaultSpec
  /// (exposed for tests).
  [[nodiscard]] sim::FaultSpec diagnose(
      const std::vector<double>& mc_utilization) const;

 private:
  [[nodiscard]] std::vector<unsigned> non_dead(const sim::FaultSpec& d) const;

  /// observe() body; the public wrapper adds the single-consumer guard plus
  /// the "supervisor.observe" trace span enclosing the decision instant.
  [[nodiscard]] Decision observe_impl(const Sample& sample, double layout_gain);

  /// RAII guard enforcing the single-consumer contract: throws
  /// std::logic_error when a second thread (or a re-entrant call) enters a
  /// mutating member while one is in flight. The acquire/release flag also
  /// publishes the state between properly serialized alternating callers.
  class ScopedEntry {
   public:
    explicit ScopedEntry(std::atomic_flag& flag);
    ~ScopedEntry();
    ScopedEntry(const ScopedEntry&) = delete;
    ScopedEntry& operator=(const ScopedEntry&) = delete;

   private:
    std::atomic_flag& flag_;
  };

  DetectorConfig cfg_;
  unsigned num_controllers_;
  util::Backoff backoff_;

  sim::FaultSpec planned_against_{};  // healthy at start
  sim::FaultSpec pending_diag_{};
  std::string pending_descr_;
  unsigned pending_count_ = 0;
  unsigned quiet_count_ = 0;
  std::atomic_flag entered_ = ATOMIC_FLAG_INIT;
  unsigned replans_ = 0;
  unsigned suppressed_ = 0;
  unsigned scrubs_ = 0;
};

// ---------------------------------------------------------------------------
// Node-level supervision: socket and link fault domains.
//
// At multi-chip scale the degradation unit is a whole socket's memory domain
// or an inter-socket link, and the signal changes shape: a socket whose
// memory died does NOT go quiet — its controllers idle while its *outbound
// link ports saturate*, because every fill it used to serve locally now
// limps across the interconnect at remap cost. The node detector keys on
// exactly that signature (utilization collapse + link saturation) so a
// merely idle socket is never mistaken for a dead one. Link derates are
// read off the observed per-line transfer cost: the DES charges
// raw_cycles / derate per line, so cost inflation over the topology's
// healthy figure is the derate, directly.
//
// Evidence rule: a socket showing neither memory traffic nor link traffic
// contributes NO evidence, and the detector carries the prior belief for it
// forward. This is what keeps failover stable — after jobs migrate off a
// dead socket it goes silent, and a naive detector would flip it back to
// healthy and thrash the replan loop.

/// Fail-back probing and staged re-admission (DESIGN.md §4k). The no-traffic
/// evidence rule above is deliberately one-way: once jobs migrate off a dead
/// socket it goes silent, so passive observation can never rediscover it.
/// The prober closes that loop with the service layer's breaker state
/// machine at socket granularity: a diagnosed-dead socket trips a per-socket
/// util::CircuitBreaker (closed -> open); when the hold expires the next
/// observe() admits exactly one canary probe (half-open); a probe that finds
/// the domain serving again readmits the socket through a derate ramp
/// (staged re-admission), while a failed probe reopens the breaker with a
/// geometrically longer hold. Only a *completed* ramp forgives the
/// escalation, so a flapping socket pays ever-longer quarantines instead of
/// thrashing the replan loop.
struct RecoveryConfig {
  /// Master switch; false restores the PR-7 behavior (belief carries
  /// forward for good — the survivor-model plateau baseline).
  bool enabled = true;
  /// Probe cadence per quarantined socket, in simulated cycles: the breaker
  /// hold between canaries, escalating geometrically on probe failure.
  util::BackoffConfig probe_backoff{.initial = 400000, .multiplier = 2.0,
                                    .cap = 25600000, .jitter = 0.1};
  /// Observation windows a readmitted socket takes to ramp from
  /// `ramp_initial` capacity belief to full weight.
  unsigned ramp_windows = 3;
  /// Capacity belief of a just-readmitted socket (stepped toward 1.0 over
  /// ramp_windows; the hysteresis half of the ramp — a relapse during the
  /// ramp re-quarantines with escalated hold).
  double ramp_initial = 0.5;
  /// Canary probe job size (triad elements) and strands. Small on purpose:
  /// the probe is charged cycles like a scrub, so it must cost a fraction of
  /// a slice.
  std::size_t probe_elements = 4096;
  unsigned probe_threads = 4;
  /// Probe verdict threshold: the probed socket's mean controller
  /// utilization must exceed this for the domain to count as serving again.
  /// A still-dead domain remaps every canary line to survivors, so it reads
  /// exactly 0; a recovered domain serves the (latency-bound) canary locally
  /// at a few percent — the threshold sits between, not near 50%.
  double probe_util_threshold = 0.01;

  [[nodiscard]] util::Status check() const;
};

/// Node detector thresholds. Defaults calibrated for slice-grained samples
/// from sim::Node runs.
struct NodeDetectorConfig {
  /// Consecutive identical diagnoses required before acting.
  unsigned stable_window = 2;
  /// Dead-socket detection: socket utilization below this fraction of the
  /// busiest socket's...
  double offline_threshold = 0.12;
  /// ...while its busiest outbound link exceeds this busy fraction.
  double link_saturation = 0.5;
  /// Link-derate detection: observed per-line cost above this multiple of
  /// the topology's healthy cost.
  double derate_threshold = 1.6;
  /// Samples whose busiest socket sits below this carry no signal.
  double min_signal = 0.02;
  /// Placement replans (diagnosis unchanged) trigger only when
  /// candidate/current bandwidth exceeds this.
  double replan_gain = 1.15;
  /// Replan backoff, in simulated cycles.
  util::BackoffConfig backoff{.initial = 50000, .multiplier = 2.0,
                              .cap = 3200000, .jitter = 0.1};
  /// Consecutive no-action samples after which the backoff resets.
  unsigned quiet_reset = 4;
  /// Fail-back probing and staged re-admission.
  RecoveryConfig recovery{};

  /// Non-throwing validation; reports every violation at once.
  [[nodiscard]] util::Status check() const;
};

/// One node observation window over [begin, end) of the loop timeline.
struct NodeSample {
  arch::Cycles begin = 0;
  arch::Cycles end = 0;
  /// Mean controller busy fraction of each socket over the window.
  std::vector<double> socket_utilization;
  /// Busy fraction of socket s's link port toward peer t (entry [s][t];
  /// diagonal 0). Empty rows allowed for idle sockets.
  std::vector<std::vector<double>> link_utilization;
  /// Observed cycles per 64 B line on socket s's port toward t (busy cycles
  /// over line transfers; 0 = no traffic, i.e. no evidence).
  std::vector<std::vector<double>> link_line_cost;
};

/// The node supervisor's verdict for one sample.
struct NodeDecision {
  Action action = Action::kKeep;
  /// Believed socket/link fault state.
  sim::FaultSpec diagnosis;
  /// Sockets a replan may place compute and memory on (the non-dead set).
  std::vector<unsigned> healthy_sockets;
  /// Target of a kProbe action: the quarantined socket to canary.
  unsigned probe_socket = 0;
  std::string reason;
  arch::Cycles at = 0;
};

/// Socket/link-domain supervisor: same propose/commit/abort protocol and
/// debounce+backoff discipline as Supervisor, over NodeSample evidence.
/// Single consumer, not internally synchronized (the node loop is the only
/// caller; cross-thread use needs external serialization).
class NodeSupervisor {
 public:
  NodeSupervisor(NodeDetectorConfig cfg, const arch::NodeTopology& node,
                 std::uint64_t seed = 0);

  /// Feeds one node sample. `layout_gain` is the caller's analytic estimate
  /// of candidate/current node bandwidth under the current belief (placement
  /// channel, exactly as Supervisor::observe's layout_gain).
  [[nodiscard]] NodeDecision observe(const NodeSample& sample,
                                     double layout_gain = 1.0);

  /// The loop migrated per the last kReplan decision.
  void commit(arch::Cycles now);
  /// The loop declined the last kReplan decision.
  void abort(arch::Cycles now);

  /// The loop ran the canary ordered by a kProbe decision; `probe` is the
  /// canary run's sample. Returns true when the probe confirms the domain is
  /// serving again — the socket is readmitted into the belief through the
  /// re-admission ramp (breaker closes without forgiving escalation). On
  /// false the breaker reopens with a geometrically longer hold.
  bool report_probe(unsigned socket, const NodeSample& probe, arch::Cycles now);

  [[nodiscard]] const sim::FaultSpec& planned_against() const noexcept {
    return planned_against_;
  }
  /// Effective fault belief for pricing and placement: planned_against()
  /// plus the staged re-admission derate of each ramping socket. This is
  /// what the loop's analytic gates must price against — a just-readmitted
  /// socket is believed alive but not yet at full weight.
  [[nodiscard]] sim::FaultSpec belief() const;
  [[nodiscard]] unsigned replans() const noexcept { return replans_; }
  [[nodiscard]] unsigned suppressed() const noexcept { return suppressed_; }
  /// Probes launched / probes that came back dead / probe-confirmed
  /// recoveries / ramps completed to full weight.
  [[nodiscard]] unsigned probes() const noexcept { return probes_; }
  [[nodiscard]] unsigned probe_failures() const noexcept {
    return probe_failures_;
  }
  [[nodiscard]] unsigned recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] unsigned readmissions() const noexcept { return readmissions_; }
  [[nodiscard]] const util::Backoff& backoff() const noexcept {
    return backoff_;
  }
  /// Per-socket probe breaker (exposed for tests: half-open semantics and
  /// reopen escalation at socket granularity).
  [[nodiscard]] const util::CircuitBreaker& probe_gate(unsigned socket) const {
    return gates_.at(socket);
  }

  /// Pure detector (exposed for tests): classifies one sample into a
  /// socket/link FaultSpec, carrying `prior` forward for evidence-free
  /// sockets. observe() passes planned_against() as the prior.
  [[nodiscard]] sim::FaultSpec diagnose(const NodeSample& sample,
                                        const sim::FaultSpec& prior) const;

  /// Complete mutable state — quarantine beliefs, probe-gate breakers,
  /// re-admission ramps, debounce, backoff, counters — for durable
  /// snapshots. A restarted process restores this into a NodeSupervisor
  /// constructed with the same config/topology/seed and continues the
  /// probe-and-ramp schedule instead of relearning socket health from
  /// scratch.
  struct Snapshot {
    sim::FaultSpec planned_against;
    sim::FaultSpec pending_diag;
    std::string pending_descr;
    unsigned pending_count = 0;
    unsigned quiet_count = 0;
    unsigned replans = 0;
    unsigned suppressed = 0;
    util::Backoff::Snapshot backoff;
    std::vector<util::CircuitBreaker::Snapshot> gates;
    std::vector<unsigned> ramp_left;
    std::vector<double> ramp_factor;
    unsigned probes = 0;
    unsigned probe_failures = 0;
    unsigned recoveries = 0;
    unsigned readmissions = 0;
  };

  [[nodiscard]] Snapshot snapshot() const;
  /// Restores a snapshot(); fails when the snapshot's socket count does not
  /// match this supervisor's topology.
  [[nodiscard]] util::Status restore(const Snapshot& snap);

 private:
  [[nodiscard]] std::vector<unsigned> non_dead(const sim::FaultSpec& d) const;
  /// Steps every active re-admission ramp one window (unless `diag` flags
  /// the socket dead again) and completes ramps that reach full weight.
  void advance_ramps(const sim::FaultSpec& diag, arch::Cycles now);

  NodeDetectorConfig cfg_;
  arch::NodeTopology node_;
  util::Backoff backoff_;

  sim::FaultSpec planned_against_{};
  sim::FaultSpec pending_diag_{};
  std::string pending_descr_;
  unsigned pending_count_ = 0;
  unsigned quiet_count_ = 0;
  unsigned replans_ = 0;
  unsigned suppressed_ = 0;

  /// Recovery state: one probe breaker per socket, plus the ramp position of
  /// each readmitted socket (0 = not ramping).
  std::vector<util::CircuitBreaker> gates_;
  std::vector<unsigned> ramp_left_;
  std::vector<double> ramp_factor_;
  unsigned probes_ = 0;
  unsigned probe_failures_ = 0;
  unsigned recoveries_ = 0;
  unsigned readmissions_ = 0;
};

}  // namespace mcopt::runtime
